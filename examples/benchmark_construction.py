#!/usr/bin/env python3
"""Benchmark construction walk-through (Section III / Figure 4).

Shows the three-stage sampling procedure step by step — relation refinement,
head entity filtering, tail entity sampling — and writes the resulting
train/dev/test TSV files to ``./openbg_benchmark_output/`` in the layout the
public OpenBG release uses.

Run with::

    python examples/benchmark_construction.py
"""

from __future__ import annotations

from pathlib import Path

from repro import BenchmarkBuilder, OpenBGBuilder, SyntheticCatalogConfig
from repro.benchmark.distribution import long_tail_metrics, relation_distribution
from repro.benchmark.sampling import SamplingConfig


def main() -> None:
    result = OpenBGBuilder(SyntheticCatalogConfig(num_products=250, seed=3),
                           seed=3).build(run_validation=False)
    builder = BenchmarkBuilder(result.graph, seed=3)

    config = SamplingConfig(name="OpenBG-IMG", num_relations=10, head_sampling_rate=0.8,
                            tail_sampling_rate=0.4, triple_sampling_rate=0.5,
                            require_images=True, dev_fraction=0.05, test_fraction=0.15,
                            seed=3)
    dataset, stages = builder.build(config)

    print("Three-stage sampling (Figure 4):")
    for stage_name, before, after in stages.reduction_table():
        print(f"  {stage_name:<24} {before:>8} -> {after:>8}")

    print("\nResulting dataset (Table II row):")
    print("  " + " | ".join(dataset.summary().as_row()))

    print("\nRelation distribution (Figure 5):")
    for relation, count in relation_distribution(dataset.all_triples()):
        print(f"  {relation:<20} {count}")
    print(f"  long-tail metrics: {long_tail_metrics(dataset.all_triples())}")

    output_dir = Path("openbg_benchmark_output")
    dataset.save(output_dir)
    print(f"\nWrote train/dev/test TSV files to {output_dir.resolve()}/")


if __name__ == "__main__":
    main()
