#!/usr/bin/env python3
"""KG-enhanced pre-training and downstream category prediction (Section IV).

Builds the synthetic OpenBG, pre-trains the mPLUG-style model with and
without KG enhancement, and compares downstream category-prediction accuracy
(full-data and 1-shot), reproducing the qualitative finding of Tables V/VI:
KG enhancement helps, and helps most when data is scarce.

Run with::

    python examples/kg_enhanced_pretraining.py
"""

from __future__ import annotations

from repro import OpenBGBuilder, SyntheticCatalogConfig
from repro.pretrain import MPlugConfig, Pretrainer, PretrainingConfig
from repro.tasks import CategoryPredictionTask, build_backbone
from repro.tasks.encoders import BackboneSpec


def pretrain_backbone(catalog, graph, use_kg: bool, steps: int = 20):
    """Pre-train one backbone (optionally KG-enhanced) and wrap it for tasks."""
    name = "mPLUG-base+KG" if use_kg else "mPLUG-base"
    spec = BackboneSpec(name, pretrained=True, use_kg=use_kg, size="base",
                        pretrain_steps=steps, seed=1)
    pretrainer = Pretrainer(
        catalog, graph,
        model_config=MPlugConfig(dim=32, num_heads=4, num_text_layers=1,
                                 num_visual_layers=1, num_decoder_layers=1),
        config=PretrainingConfig(steps=steps, use_kg=use_kg, seed=1,
                                 max_examples=150, batch_size=8))
    report = pretrainer.pretrain()
    print(f"  {name}: total pre-training loss "
          f"{report.first('total'):.2f} -> {report.final('total'):.2f}")
    return build_backbone(spec, catalog, graph, pretrainer=pretrainer)


def main() -> None:
    result = OpenBGBuilder(SyntheticCatalogConfig(num_products=250, seed=1),
                           seed=1).build(run_validation=False)
    catalog, graph = result.catalog, result.graph
    print("Pre-training backbones (this takes a minute)...")
    baseline = build_backbone(BackboneSpec("RoBERTa (general-domain)", pretrained=False,
                                           use_kg=False, seed=1), catalog, graph)
    mplug = pretrain_backbone(catalog, graph, use_kg=False)
    mplug_kg = pretrain_backbone(catalog, graph, use_kg=True)

    task = CategoryPredictionTask(catalog, seed=1)
    print(f"\nCategory prediction over {len(task.dataset.label_names)} leaf categories")
    print(f"{'backbone':<28} {'full-data':>10} {'1-shot':>10}")
    for backbone in (baseline, mplug, mplug_kg):
        full = task.evaluate(backbone, probe_epochs=120)["accuracy"]
        one_shot = task.evaluate(backbone, shots=1, probe_epochs=120)["accuracy"]
        print(f"{backbone.name:<28} {full:>10.3f} {one_shot:>10.3f}")

    print("\nExpected shape: the KG-enhanced pre-trained backbone is best, and "
          "its advantage is largest in the 1-shot setting.")


if __name__ == "__main__":
    main()
