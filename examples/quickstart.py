#!/usr/bin/env python3
"""Quickstart: build a synthetic OpenBG, sample a benchmark, train TransE.

This is the 2-minute tour of the library:

1. generate a synthetic e-commerce catalog (the stand-in for Alibaba raw data),
2. run the OpenBG construction pipeline (ontology + taxonomies + multimodal
   product instances + validation),
3. sample the OpenBG-IMG / OpenBG500 / OpenBG500-L benchmark analogues,
4. train a TransE model on OpenBG500 and evaluate link prediction.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BenchmarkBuilder, OpenBGBuilder, SyntheticCatalogConfig, TransE
from repro.embedding import KGETrainer, LinkPredictionEvaluator, TrainingConfig
from repro.embedding.evaluation import format_results_table


def main() -> None:
    # 1-2. Build the synthetic OpenBG.
    config = SyntheticCatalogConfig(num_products=250, seed=42)
    result = OpenBGBuilder(config, seed=42).build()
    print("Constructed synthetic OpenBG:")
    for key, value in result.summary().items():
        print(f"  {key:<22} {value}")
    print(f"  validation errors      {len(result.validation.errors)}")
    print(f"  validation warnings    {len(result.validation.warnings)}")

    # 3. Sample the benchmark suite (Table II analogue).
    suite = BenchmarkBuilder(result.graph, seed=42).build_suite()
    print("\nBenchmark suite (Table II analogue):")
    for summary in suite.summaries():
        print("  " + " | ".join(summary.as_row()))

    # 4. Train and evaluate TransE on the OpenBG500 analogue.
    dataset = suite["OpenBG500"]
    encoded = dataset.encoded_splits()
    model = TransE(len(dataset.entity_vocab), len(dataset.relation_vocab),
                   dim=32, seed=42)
    history = KGETrainer(model, TrainingConfig(epochs=25, batch_size=256,
                                               learning_rate=0.08, seed=42)) \
        .fit(encoded["train"])
    print(f"\nTransE training loss: {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")

    evaluator = LinkPredictionEvaluator(encoded["train"], encoded["dev"], encoded["test"])
    metrics = evaluator.evaluate(model, encoded["test"])
    print("\n" + format_results_table({"TransE": metrics},
                                      title="Link prediction on OpenBG500 analogue"))


if __name__ == "__main__":
    main()
