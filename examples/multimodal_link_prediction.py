#!/usr/bin/env python3
"""Multimodal link prediction on the OpenBG-IMG analogue (Table III scenario).

Compares a structural model (TransE), a text-enhanced model (KG-BERT
analogue) and two multimodal models (TransAE, RSME) on the image-bearing
benchmark, illustrating how image features enter the scoring functions.

Run with::

    python examples/multimodal_link_prediction.py
"""

from __future__ import annotations

from repro import BenchmarkBuilder, OpenBGBuilder, SyntheticCatalogConfig
from repro.embedding import (
    KGBertSim,
    KGETrainer,
    LinkPredictionEvaluator,
    RSME,
    TrainingConfig,
    TransAE,
    TransE,
)
from repro.embedding.evaluation import format_results_table
from repro.embedding.features import entity_text_matrix


def main() -> None:
    result = OpenBGBuilder(SyntheticCatalogConfig(num_products=250, image_fraction=0.6,
                                                  seed=7), seed=7).build(run_validation=False)
    suite = BenchmarkBuilder(result.graph, seed=7).build_suite()
    dataset = suite["OpenBG-IMG"]
    print(f"OpenBG-IMG analogue: {len(dataset.entity_vocab)} entities, "
          f"{len(dataset.images)} with images, {len(dataset.train)} training triples")

    encoded = dataset.encoded_splits()
    num_entities = len(dataset.entity_vocab)
    num_relations = len(dataset.relation_vocab)
    image_features = dataset.image_matrix()
    text_features = entity_text_matrix(dataset.entity_vocab.symbols(), dataset.labels,
                                       dataset.descriptions, dim=48)

    models = [
        TransE(num_entities, num_relations, dim=32, seed=7),
        KGBertSim(num_entities, num_relations, text_features=text_features, dim=32, seed=7),
        TransAE(num_entities, num_relations, image_features=image_features, dim=32, seed=7),
        RSME(num_entities, num_relations, image_features=image_features, dim=32, seed=7),
    ]

    evaluator = LinkPredictionEvaluator(encoded["train"], encoded["dev"], encoded["test"])
    results = {}
    for model in models:
        config = TrainingConfig(epochs=25, batch_size=128, learning_rate=0.08, seed=7,
                                normalize_entities=model.name.startswith("Trans"))
        KGETrainer(model, config).fit(encoded["train"])
        results[model.name] = evaluator.evaluate(model, encoded["test"])
        print(f"trained {model.name:<10} ({model.num_parameters()} parameters)")

    print("\n" + format_results_table(results, title="Multimodal link prediction"))


if __name__ == "__main__":
    main()
