#!/usr/bin/env python3
"""Online-application demo: the Figure-7 shopping guide plus all four uplifts.

Builds the synthetic OpenBG, renders a "Taobao Foodies"-style module of
KG-enriched item cards, and runs all four online-application simulators
(item alignment, shopping guide, QA recommendation, product release),
printing the simulated uplift next to the number the paper reports.

Run with::

    python examples/shopping_guide_demo.py
"""

from __future__ import annotations

from repro import OpenBGBuilder, SyntheticCatalogConfig
from repro.applications import (
    ItemAlignmentSimulator,
    ProductReleaseSimulator,
    QaRecommendationSimulator,
    ShoppingGuideSimulator,
)

PAPER_NUMBERS = {
    "GMV": "+45%",
    "CPM": "+28.1%",
    "CTR": "+11%",
    "release_duration_minutes": "-30% duration",
}


def main() -> None:
    result = OpenBGBuilder(SyntheticCatalogConfig(num_products=250, seed=5),
                           seed=5).build(run_validation=False)
    catalog, graph = result.catalog, result.graph

    guide = ShoppingGuideSimulator(catalog, graph, seed=5)
    print('Channel of "Taobao Foodies" — Module "Meals without Cooking" (synthetic):')
    for row in guide.showcase(num_items=6):
        print(f"  • {row['item']}")
        print(f"      slogan: {row['slogan']}")
        if row["tags"]:
            print(f"      tags:   {row['tags']}")

    print("\nOnline business-metric uplifts (simulated vs paper):")
    reports = [
        ItemAlignmentSimulator(catalog, graph, seed=5).run(),
        guide.run(num_impressions=2000),
        QaRecommendationSimulator(catalog, graph, seed=5).run(num_sessions=80),
        ProductReleaseSimulator(catalog, graph, seed=5).run(num_cases=80),
    ]
    print(f"{'metric':<28} {'baseline':>12} {'with KG':>12} {'uplift':>10} {'paper':>16}")
    for report in reports:
        print(f"{report.metric:<28} {report.baseline:>12.3f} {report.enhanced:>12.3f} "
              f"{report.uplift * 100:>+9.1f}% {PAPER_NUMBERS[report.metric]:>16}")


if __name__ == "__main__":
    main()
