"""Table III — link prediction on OpenBG-IMG (single-modal + multimodal models).

Trains the eight single-modal baselines (TransE, TransH, TransD, DistMult,
ComplEx, TuckER, KG-BERT, StAR) and the three multimodal models (TransAE,
RSME, MKGformer) on the OpenBG-IMG analogue and reports Hits@1/3/10, MR and
MRR with the filtered protocol, checking the qualitative findings of the
paper's Table III.
"""

from __future__ import annotations

import numpy as np

from repro.embedding import (
    ComplEx,
    DistMult,
    KGBertSim,
    KGETrainer,
    LinkPredictionEvaluator,
    MKGformerLite,
    RSME,
    StARSim,
    TrainingConfig,
    TransAE,
    TransD,
    TransE,
    TransH,
    TuckER,
)
from repro.embedding.evaluation import format_results_table
from repro.embedding.features import entity_text_matrix

SINGLE_MODAL = ["TransE", "TransH", "TransD", "DistMult", "ComplEx", "TuckER",
                "KG-BERT", "StAR"]
MULTI_MODAL = ["TransAE", "RSME", "MKGformer"]


def _train_and_evaluate(dataset, dim: int = 32, epochs: int = 25, seed: int = 13):
    encoded = dataset.encoded_splits()
    num_entities = len(dataset.entity_vocab)
    num_relations = len(dataset.relation_vocab)
    text_features = entity_text_matrix(dataset.entity_vocab.symbols(), dataset.labels,
                                       dataset.descriptions, dim=48)
    image_features = dataset.image_matrix()

    models = [
        TransE(num_entities, num_relations, dim=dim, seed=seed),
        TransH(num_entities, num_relations, dim=dim, seed=seed),
        TransD(num_entities, num_relations, dim=dim, seed=seed),
        DistMult(num_entities, num_relations, dim=dim, seed=seed),
        ComplEx(num_entities, num_relations, dim=dim, seed=seed),
        TuckER(num_entities, num_relations, dim=dim, seed=seed),
        KGBertSim(num_entities, num_relations, text_features=text_features, dim=dim, seed=seed),
        StARSim(num_entities, num_relations, text_features=text_features, dim=dim, seed=seed),
        TransAE(num_entities, num_relations, image_features=image_features, dim=dim, seed=seed),
        RSME(num_entities, num_relations, image_features=image_features, dim=dim, seed=seed),
        MKGformerLite(num_entities, num_relations, image_features=image_features,
                      dim=dim, seed=seed),
    ]
    evaluator = LinkPredictionEvaluator(encoded["train"], encoded["dev"], encoded["test"])
    # The multiplicative / text models need a gentler learning rate than the
    # translational family (mirroring the paper's per-baseline settings).
    learning_rates = {"TransE": 0.08, "TransH": 0.08, "TransD": 0.08,
                      "TransAE": 0.08, "MKGformer": 0.08}
    results = {}
    for model in models:
        config = TrainingConfig(epochs=epochs, batch_size=128,
                                learning_rate=learning_rates.get(model.name, 0.01),
                                seed=seed,
                                normalize_entities=model.name.startswith("Trans"))
        KGETrainer(model, config).fit(encoded["train"])
        results[model.name] = evaluator.evaluate(model, encoded["test"])
    return results


def test_bench_table3_img_link_prediction(benchmark, benchmark_suite):
    dataset = benchmark_suite["OpenBG-IMG"]
    results = benchmark.pedantic(lambda: _train_and_evaluate(dataset),
                                 rounds=1, iterations=1)

    print("\n" + format_results_table(results, title="Table III — OpenBG-IMG analogue"))

    # Sanity: every metric is in range and every expected model is present.
    assert set(results) == set(SINGLE_MODAL) | set(MULTI_MODAL)
    for metrics in results.values():
        assert 0.0 <= metrics.hits_at_1 <= metrics.hits_at_10 <= 1.0
        assert metrics.mean_rank >= 1.0

    # Qualitative findings of Table III (shape, not absolute values):
    # (1) translational models beat the vanilla bilinear models;
    best_translational = max(results[name].mean_reciprocal_rank
                             for name in ("TransE", "TransH", "TransD"))
    worst_bilinear = min(results[name].mean_reciprocal_rank
                         for name in ("DistMult", "ComplEx"))
    assert best_translational > worst_bilinear

    # (2) the multimodal models are competitive with the best single-modal one;
    best_multimodal = max(results[name].mean_reciprocal_rank for name in MULTI_MODAL)
    best_single = max(results[name].mean_reciprocal_rank for name in SINGLE_MODAL)
    assert best_multimodal >= best_single * 0.75

    # (3) the text-only baselines (KG-BERT, StAR) are not the top performers.
    best_text = max(results[name].mean_reciprocal_rank for name in ("KG-BERT", "StAR"))
    assert best_text <= best_single
