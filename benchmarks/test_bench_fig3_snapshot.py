"""Figure 3 — a snapshot of OpenBG around one product.

The figure shows a rice product with its category chain, brand, place,
scene and market-segment links plus attribute values.  The bench extracts
the same kind of neighbourhood around a synthetic product and checks it
contains every ingredient of the figure: taxonomy edges, object-property
links, data-property values and the multimodal comment/image markers.
"""

from __future__ import annotations

from repro.kg.namespaces import MetaProperty


def _pick_rich_product(graph, catalog):
    """A product with brand, place, concepts, attributes and an image."""
    for product in catalog.products:
        if product.brand and product.place and product.concept_links \
                and product.attributes and product.has_image:
            return product
    # Fall back to any product with a brand.
    return next(product for product in catalog.products if product.brand)


def test_bench_fig3_snapshot(benchmark, graph, catalog):
    product = _pick_rich_product(graph, catalog)

    neighbourhood = benchmark.pedantic(
        lambda: graph.neighbourhood(product.product_id, hops=2),
        rounds=1, iterations=1)

    print(f"\nFigure 3 — snapshot around {graph.label_of(product.product_id)!r} "
          f"({len(neighbourhood)} triples within 2 hops):")
    for triple in neighbourhood[:25]:
        print(f"  ({graph.label_of(triple.head)}, {triple.relation}, "
              f"{graph.label_of(triple.tail)})")

    relations = {triple.relation for triple in neighbourhood}

    # The figure's ingredients: instantiation, taxonomy, brand/place links,
    # at least one concept link, attribute values and the comment marker.
    assert MetaProperty.TYPE.value in relations
    assert MetaProperty.SUBCLASS_OF.value in relations
    assert "brandIs" in relations
    assert "placeOfOrigin" in relations
    concept_relations = {"relatedScene", "forCrowd", "aboutTheme", "appliedTime"} | \
        {rel for rel in relations if rel.startswith("inMarket")}
    assert relations & concept_relations
    assert set(product.attributes) & relations
    assert MetaProperty.COMMENT.value in relations

    # The two-hop neighbourhood reaches the category's parent (taxonomy chain).
    nodes = {triple.tail for triple in neighbourhood} | \
        {triple.head for triple in neighbourhood}
    parent = catalog.category_taxonomy.node(product.category).parent
    assert parent in nodes
