"""Scaling benchmark — 1 vs 2 vs 4 shard-server *processes*.

The coordinator query engine fans each executor round out as one
batched wire call per touched shard, so with N shard-server processes
the per-shard CSR probing, result encoding and request parsing run on N
independent interpreters while the coordinator's scatter threads sit in
socket waits (which release the GIL).  This bench measures that scaling
on the two workloads the ISSUE names, over real ``repro serve``
subprocesses booted from real :func:`~repro.kg.cluster.shard_split`
output directories:

* **batched join** — 2 000 per-product two-pattern joins
  (product → brand → country) executed as one ``execute_many`` batch
  through ``QueryEngine`` over a ``ClusterBackend``: every lockstep
  round is thousands of head-bound probes scattered to their owner
  shards, so the per-request service work lands on the shard servers;
* **point lookups** — one big batch of head-bound id probes routed to
  their owner shards.

Acceptance bar: with >= 4 cores, 4 shard servers beat 1 by >= 1.5x on
both workloads (the assertion message embeds the timing table).  On
smaller machines the processes just time-slice one core, so the bar is
informational there — the table still prints and the numbers still land
in ``BENCH_cluster.json``.  Result identity across shard counts is
asserted unconditionally on every machine.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

from _artifacts import REPO_ROOT, update_artifact
from repro.kg.cluster import ClusterBackend, shard_split
from repro.kg.query import PatternQuery, QueryEngine
from repro.kg.sharded_backend import ShardedBackend
from repro.kg.store import TripleStore
from repro.kg.triple import triples_from_tuples

NUM_PRODUCTS = 12_000
NUM_BRANDS = 24
NUM_PROBES = 2_000
NUM_JOINS = 2_000
REPEATS = 3
SHARD_COUNTS = (1, 2, 4)
SPEEDUP_BAR = 1.5
#: The hard bar only applies where the shard processes can actually run
#: in parallel; below this the measurement is advisory.
MIN_CORES_FOR_BAR = 4


def _workload_rows() -> List[Tuple[str, str, str]]:
    rows: List[Tuple[str, str, str]] = []
    for index in range(NUM_PRODUCTS):
        product = f"product:{index:06d}"
        rows.append((product, "brandIs", f"brand:{index % NUM_BRANDS}"))
        rows.append((product, "placeOfOrigin", f"place:{index % 23}"))
        rows.append((product, "rdf:type", f"category:{index % 111}"))
    for brand in range(NUM_BRANDS):
        rows.append((f"brand:{brand}", "headquartersIn",
                     f"country:{brand % 4}"))
    return rows


def _serve_subprocess(store_dir, shard_index: int,
                      n_shards: int) -> Tuple[subprocess.Popen, str]:
    """Boot ``repro serve`` on an ephemeral port; return (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--store-dir", str(store_dir), "--port", "0",
         "--shard-of", f"{shard_index}/{n_shards}"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(REPO_ROOT))
    line = proc.stdout.readline()
    marker = " on "
    if marker not in line:
        proc.terminate()
        raise AssertionError(f"shard server failed to start: {line!r} "
                             f"{proc.stdout.read()!r}")
    url = line.split(marker, 1)[1].split()[0]
    return proc, url


def _best_of(repeats: int, workload):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = workload()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_cluster_scaling_1_vs_2_vs_4_shard_processes(tmp_path):
    rows = _workload_rows()
    source = TripleStore(triples_from_tuples(rows),
                         backend=ShardedBackend(1))
    source_dir = tmp_path / "source"
    source.save(source_dir)

    # One two-pattern join per probed product, executed as a single
    # batch: the lockstep executor advances all plans together, so each
    # round is one big scattered ``match_ids_many`` of head-bound
    # probes.  The per-probe service handling (request parsing, CSR
    # probe, response encoding) is the dominant cost and runs on the
    # shard servers — exactly the part that spreads over N processes,
    # while the coordinator's per-plan join bookkeeping stays fixed.
    joins = [PatternQuery.from_patterns(
        [(f"product:{(index * 37) % NUM_PRODUCTS:06d}", "brandIs", "?b"),
         ("?b", "headquartersIn", "?c")])
        for index in range(NUM_JOINS)]
    probe_heads = [f"product:{(index * 37) % NUM_PRODUCTS:06d}"
                   for index in range(NUM_PROBES)]

    join_seconds: Dict[int, float] = {}
    probe_seconds: Dict[int, float] = {}
    expected_join: Optional[list] = None
    expected_probe_rows: Optional[int] = None

    for n_shards in SHARD_COUNTS:
        split_dir = tmp_path / f"split-{n_shards}"
        shard_split(source_dir, n_shards, split_dir)
        procs: List[subprocess.Popen] = []
        try:
            urls = []
            for index in range(n_shards):
                proc, url = _serve_subprocess(
                    split_dir / f"shard-{index}", index, n_shards)
                procs.append(proc)
                urls.append(url)
            backend = ClusterBackend.open(split_dir, urls, codec="binary")
            assert backend._fast_id_path(), \
                "raw-id fast path must be on for a fresh split deployment"
            engine = QueryEngine(TripleStore(backend=backend))
            id_probes = [(backend.entity_interner.lookup(head), None, None)
                         for head in probe_heads]

            join_time, join_results = _best_of(
                REPEATS, lambda: engine.execute_many(joins))
            join_rows = [row for rows in join_results for row in rows]
            probe_time, probe_blocks = _best_of(
                REPEATS, lambda: backend.match_ids_many(id_probes))
            # The timings above are only meaningful in steady state: a
            # flaky shard process would hide retry/backoff sleeps (or
            # even a whole leader promotion) inside the measured wall
            # clock, so prove the failover machinery stayed idle.
            totals = backend.cluster_stats(probe_shards=False)["totals"]
            assert totals["failures"] == 0, totals
            assert totals["reroutes"] == 0, totals
            assert totals["promotions"] == 0, totals
            backend.close()
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.wait(timeout=10)

        join_seconds[n_shards] = join_time
        probe_seconds[n_shards] = probe_time
        probe_rows = int(sum(len(block) for block in probe_blocks))
        # Identity across shard counts: the same row multiset.  (Row
        # ORDER legitimately varies with the shard count — a cluster of
        # N is bit-identical to a single-process ShardedBackend(N),
        # which the functional suite pins; N differs across this sweep.)
        canonical = sorted(tuple(sorted(row.items())) for row in join_rows)
        if expected_join is None:
            expected_join, expected_probe_rows = canonical, probe_rows
            assert len(join_rows) == NUM_JOINS
            assert probe_rows == NUM_PROBES * 3
        else:
            assert canonical == expected_join, \
                f"join rows diverge at {n_shards} shard servers"
            assert probe_rows == expected_probe_rows

    def speedup(seconds: Dict[int, float]) -> float:
        return seconds[1] / seconds[SHARD_COUNTS[-1]]

    table = [f"{'workload':<28}" + "".join(
        f" {f'{n} proc':>10}" for n in SHARD_COUNTS) + f" {'4v1':>7}"]
    for label, seconds in (("batched join", join_seconds),
                           ("point lookups", probe_seconds)):
        table.append(f"{label:<28}" + "".join(
            f" {seconds[n]:>9.4f}s" for n in SHARD_COUNTS)
            + f" {speedup(seconds):>6.2f}x")
    report = "\n".join(table)
    cores = os.cpu_count() or 1
    print(f"\ncluster scaling ({len(source)} triples, {NUM_PROBES} probes, "
          f"{NUM_JOINS} batched joins, best of {REPEATS}, {cores} cores, "
          f"real subprocesses on loopback)\n{report}")

    update_artifact("cluster", "shard_process_scaling", {
        "workload": f"{NUM_JOINS} batched two-pattern point joins and "
                    f"{NUM_PROBES} head-bound id probes through a "
                    f"ClusterBackend over 1/2/4 `repro serve` "
                    f"subprocesses (shard-split stores, binary codec, "
                    f"loopback)",
        "backend": "cluster over sharded-1 shard servers",
        "codec": "binary",
        "cores": cores,
        "timings_seconds": {
            "batched_join": {str(n): join_seconds[n] for n in SHARD_COUNTS},
            "point_lookups": {str(n): probe_seconds[n]
                              for n in SHARD_COUNTS},
        },
        "speedups": {
            "batched_join_4v1": speedup(join_seconds),
            "point_lookups_4v1": speedup(probe_seconds),
        },
        "bar": f"4 shard processes >= {SPEEDUP_BAR}x over 1 "
               f"(asserted on >= {MIN_CORES_FOR_BAR} cores)",
    })

    if cores < MIN_CORES_FOR_BAR:
        pytest.skip(f"scaling bar needs >= {MIN_CORES_FOR_BAR} cores to "
                    f"mean anything, this machine has {cores}; measured:\n"
                    f"{report}")
    assert speedup(join_seconds) >= SPEEDUP_BAR, (
        f"4 shard processes do not beat 1 by {SPEEDUP_BAR}x on the "
        f"batched join\n{report}")
    assert speedup(probe_seconds) >= SPEEDUP_BAR, (
        f"4 shard processes do not beat 1 by {SPEEDUP_BAR}x on point "
        f"lookups\n{report}")
