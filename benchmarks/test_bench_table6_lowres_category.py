"""Table VI — low-resource (1-shot / 5-shot) category prediction.

The paper's key finding: KG enhancement helps most when data is scarce
(mPLUG-base+KG gains +11 points over mPLUG-base at 1-shot but only +3 at
5-shot).  This bench evaluates the backbones at 1-shot and 5-shot and checks
that (a) KG-enhanced pre-training beats the baseline in the 1-shot setting,
and (b) the relative advantage shrinks as shots increase.
"""

from __future__ import annotations

from repro.tasks import CategoryPredictionTask


def test_bench_table6_low_resource_category(benchmark, catalog, backbone_baseline,
                                            backbone_mplug_base,
                                            backbone_mplug_base_kg,
                                            backbone_mplug_large_kg):
    task = CategoryPredictionTask(catalog, seed=13)
    backbones = {
        "RoBERTa-large (baseline)": backbone_baseline,
        "mPLUG-base": backbone_mplug_base,
        "mPLUG-base+KG": backbone_mplug_base_kg,
        "mPLUG-large+KG": backbone_mplug_large_kg,
    }

    def run_all():
        return {name: task.evaluate_low_resource(backbone, shot_settings=(1, 5),
                                                 probe_epochs=120)
                for name, backbone in backbones.items()}

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\n{:<26} | {:>8} | {:>8}".format("Model", "1-Shot", "5-Shot"))
    for name, row in table.items():
        print("{:<26} | {:>8.3f} | {:>8.3f}".format(name, row["1-shot"], row["5-shot"]))

    for row in table.values():
        assert 0.0 <= row["1-shot"] <= 1.0
        assert 0.0 <= row["5-shot"] <= 1.0
        # More shots never hurt much (weak monotonicity).
        assert row["5-shot"] >= row["1-shot"] - 0.05

    # KG-enhanced pre-training beats the general-domain baseline at 1-shot
    # (the paper's central low-resource claim) and KG enhancement helps the
    # mPLUG model in both shot settings.
    assert table["mPLUG-base+KG"]["1-shot"] >= table["RoBERTa-large (baseline)"]["1-shot"]
    assert table["mPLUG-base+KG"]["1-shot"] >= table["mPLUG-base"]["1-shot"]
    assert table["mPLUG-base+KG"]["5-shot"] >= table["mPLUG-base"]["5-shot"]

    # The *relative* advantage of KG enhancement is larger (or at least not
    # much smaller) in the 1-shot setting than in the 5-shot setting — the
    # "the more deficient data is, the more advantageous the KG" claim.
    epsilon = 1e-6
    relative_gain_1shot = table["mPLUG-base+KG"]["1-shot"] / \
        max(table["mPLUG-base"]["1-shot"], epsilon)
    relative_gain_5shot = table["mPLUG-base+KG"]["5-shot"] / \
        max(table["mPLUG-base"]["5-shot"], epsilon)
    assert relative_gain_1shot >= relative_gain_5shot - 0.5
