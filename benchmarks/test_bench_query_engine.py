"""Micro-benchmark — symbol backtracking vs ID-space query execution.

Three workloads over one synthetic product graph:

* **join workload** — a mix of conjunctive multi-pattern queries (brand
  membership + origin filters, 2-hop brand→headquarters joins, category
  fan-outs) evaluated per query; the legacy symbol-level backtracking
  executor (one ``iter_match`` store round-trip per binding per
  pattern, ``Triple`` objects and strings all the way) against the
  ID-space executor (constants interned once, pattern blocks fetched
  from the CSR indexes, frontier carried as numpy id columns through
  vectorized hash joins, strings only at projection).  Run on the
  columnar and sharded backends.
* **batched execution** — the same queries through
  ``QueryEngine.execute_many``: one batched ``count_many`` plan round
  plus lockstep ``match_ids_many`` fetches for the whole batch.
* **service throughput** — 8 client threads pushing the workload
  through a :class:`~repro.kg.service.QueryService`, which coalesces
  concurrent requests into the same batched calls; results are
  asserted identical to serial execution.

Acceptance bars (assertion messages embed the full timing table so a
CI failure report prints the numbers, not just the comparison):

* ID-space executor ≥ 5× faster than backtracking on the join workload
  (the PR acceptance bar), with bit-identical binding sets on every
  backend;
* the concurrent service returns results identical to serial execution
  (its throughput line is advisory — thread scheduling on shared CI
  runners is too noisy for a hard bar).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Tuple

from _artifacts import update_artifact
from repro.kg.query import PatternQuery, QueryEngine
from repro.kg.service import QueryService
from repro.kg.sharded_backend import ShardedBackend
from repro.kg.store import TripleStore
from repro.kg.triple import triples_from_tuples

NUM_PRODUCTS = 6000
NUM_BRANDS = 16
NUM_PLACES = 23
NUM_CATEGORIES = 111
NUM_COUNTRIES = 4
REPEATS = 3
SERVICE_THREADS = 8


def _workload_rows() -> List[Tuple[str, str, str]]:
    rows: List[Tuple[str, str, str]] = []
    for index in range(NUM_PRODUCTS):
        product = f"product:{index:06d}"
        rows.append((product, "brandIs", f"brand:{index % NUM_BRANDS}"))
        rows.append((product, "placeOfOrigin", f"place:{index % NUM_PLACES}"))
        rows.append((product, "rdf:type", f"category:{index % NUM_CATEGORIES}"))
        rows.append((product, "relatedScene", f"scene:{index % 41}"))
    for brand in range(NUM_BRANDS):
        rows.append((f"brand:{brand}", "headquartersIn",
                     f"country:{brand % NUM_COUNTRIES}"))
    return rows


def _workload_queries() -> List[PatternQuery]:
    """A paper-shaped query mix: membership joins, 2-hop walks, fan-outs.

    The frontiers are realistic for the shopping-guide / QA-recommender
    workloads — hundreds of products per brand or scene — which is
    exactly where per-binding backtracking melts and vectorized joins
    do not.
    """
    queries: List[PatternQuery] = []
    for brand in range(NUM_BRANDS):
        queries.append(PatternQuery.from_patterns(
            [("?p", "brandIs", f"brand:{brand}"),
             ("?p", "placeOfOrigin", "?place"),
             ("?p", "rdf:type", "?cat")],
            select=["?p", "?place", "?cat"]))
    for country in range(NUM_COUNTRIES):
        queries.append(PatternQuery.from_patterns(
            [("?p", "brandIs", "?b"),
             ("?b", "headquartersIn", f"country:{country}"),
             ("?p", "placeOfOrigin", "place:3")],
            select=["?p", "?b"]))
    for scene in range(0, 41, 8):
        queries.append(PatternQuery.from_patterns(
            [("?p", "relatedScene", f"scene:{scene}"),
             ("?p", "rdf:type", "?cat"),
             ("?p", "brandIs", "?b"),
             ("?b", "headquartersIn", "?c")],
            select=["?p", "?cat", "?b", "?c"]))
    # Whole-graph analytics: every product joined to its brand's country.
    queries.append(PatternQuery.from_patterns(
        [("?p", "brandIs", "?b"), ("?b", "headquartersIn", "?c")],
        select=["?p", "?c"]))
    return queries


def _best_of(repeats: int, workload: Callable[[], object]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def _canonical(results: List[List[dict]]) -> List[List[Tuple[Tuple[str, str], ...]]]:
    return [sorted(tuple(sorted(binding.items())) for binding in rows)
            for rows in results]


def test_id_space_executor_vs_backtracking():
    rows = triples_from_tuples(_workload_rows())
    queries = _workload_queries()
    table: List[str] = [
        f"{'backend':<12} {'strategy':<16} {'seconds':>9} {'rows':>7}"]
    timings = {}
    canonical = {}
    for backend_name, backend in (("columnar", "columnar"),
                                  ("sharded-4", ShardedBackend(n_shards=4))):
        store = TripleStore(rows, backend=backend)
        engine = QueryEngine(store)
        for strategy in ("backtracking", "id", "batched-id"):
            if strategy == "batched-id":
                def workload(engine=engine):
                    return engine.execute_many(queries)
            else:
                def workload(engine=engine, strategy=strategy):
                    return [engine.execute(query, strategy=strategy)
                            for query in queries]
            results = workload()
            elapsed = _best_of(REPEATS, workload)
            timings[(backend_name, strategy)] = elapsed
            canonical[(backend_name, strategy)] = _canonical(results)
            total_rows = sum(len(result) for result in results)
            table.append(f"{backend_name:<12} {strategy:<16} "
                         f"{elapsed:>9.4f} {total_rows:>7d}")
    report = "\n".join(table)
    print(f"\nquery-engine join workload ({len(queries)} queries, "
          f"{len(rows)} triples)\n{report}")
    reference = canonical[("columnar", "backtracking")]
    for key, result in canonical.items():
        assert result == reference, \
            f"binding sets diverge for {key}\n{report}"
    update_artifact("query", "id_space_vs_backtracking", {
        "workload": f"{len(queries)} join queries over {len(rows)} triples",
        "backend": "columnar and sharded-4",
        "codec": "in-process",
        "timings_seconds": {f"{backend}/{strategy}": elapsed
                            for (backend, strategy), elapsed
                            in timings.items()},
        "speedups": {backend: timings[(backend, "backtracking")]
                     / timings[(backend, "id")]
                     for backend in ("columnar", "sharded-4")},
        "bar": "id-space executor >= 5x backtracking",
    })
    for backend_name in ("columnar", "sharded-4"):
        legacy = timings[(backend_name, "backtracking")]
        fast = timings[(backend_name, "id")]
        speedup = legacy / fast
        assert speedup >= 5.0, (
            f"ID-space executor bar missed on {backend_name}: "
            f"{speedup:.1f}x < 5x\n{report}")


def test_query_service_concurrent_throughput():
    rows = triples_from_tuples(_workload_rows())
    store = TripleStore(rows, backend=ShardedBackend(n_shards=4))
    queries = _workload_queries()
    engine = QueryEngine(store)
    serial_results = _canonical([engine.execute(query) for query in queries])
    serial_time = _best_of(REPEATS,
                           lambda: [engine.execute(query) for query in queries])

    outputs: List[object] = [None] * SERVICE_THREADS
    with QueryService(store) as service:
        def run_clients() -> None:
            barrier = threading.Barrier(SERVICE_THREADS)

            def client(slot: int) -> None:
                barrier.wait(timeout=60)
                outputs[slot] = service.execute_batch(queries)

            threads = [threading.Thread(target=client, args=(slot,))
                       for slot in range(SERVICE_THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)

        elapsed = _best_of(1, run_clients)
        total = SERVICE_THREADS * len(queries)
        report = (
            f"service: {total} queries over {SERVICE_THREADS} threads in "
            f"{elapsed:.4f}s ({total / elapsed:,.0f} q/s; serial single-client "
            f"{len(queries) / serial_time:,.0f} q/s; "
            f"{service.batches_dispatched} dispatch batches, largest "
            f"{service.largest_batch})")
        print(f"\n{report}")
        update_artifact("query", "service_concurrency", {
            "workload": f"{total} queries over {SERVICE_THREADS} threads",
            "backend": "sharded-4",
            "codec": "in-process",
            "timings_seconds": {"concurrent_batch": elapsed,
                                "serial_single_client": serial_time},
            "throughput_qps": {"concurrent": total / elapsed,
                               "serial": len(queries) / serial_time},
            "batching": {"dispatched": service.batches_dispatched,
                         "largest": service.largest_batch},
        })
        for slot in range(SERVICE_THREADS):
            assert outputs[slot] is not None, \
                f"client {slot} never finished\n{report}"
            assert _canonical(outputs[slot]) == serial_results, \
                f"concurrent client {slot} diverged from serial results\n{report}"
        assert service.requests_served == total, report
