"""Table IV — link prediction on OpenBG500 and OpenBG500-L analogues.

Trains the single-modal baselines on both datasets (omitting the heaviest
models on the -L variant, as the paper does for TuckER / KG-BERT / GenKGC)
and reports the filtered Hits@K / MR / MRR rows.
"""

from __future__ import annotations

from repro.embedding import (
    ComplEx,
    DistMult,
    GenKGCSim,
    KGBertSim,
    KGETrainer,
    LinkPredictionEvaluator,
    TrainingConfig,
    TransD,
    TransE,
    TransH,
    TuckER,
)
from repro.embedding.evaluation import format_results_table
from repro.embedding.features import entity_text_matrix


def _models_for(dataset, large: bool, dim: int, seed: int):
    num_entities = len(dataset.entity_vocab)
    num_relations = len(dataset.relation_vocab)
    models = [
        TransE(num_entities, num_relations, dim=dim, seed=seed),
        TransH(num_entities, num_relations, dim=dim, seed=seed),
        TransD(num_entities, num_relations, dim=dim, seed=seed),
        DistMult(num_entities, num_relations, dim=dim, seed=seed),
        ComplEx(num_entities, num_relations, dim=dim, seed=seed),
    ]
    if not large:
        text_features = entity_text_matrix(dataset.entity_vocab.symbols(),
                                           dataset.labels, dataset.descriptions, dim=48)
        models.append(TuckER(num_entities, num_relations, dim=dim, seed=seed))
        models.append(KGBertSim(num_entities, num_relations, text_features=text_features,
                                dim=dim, seed=seed))
        models.append(GenKGCSim(num_entities, num_relations, text_features=text_features,
                                dim=dim, seed=seed))
    return models


def _run(dataset, large: bool, dim: int = 32, epochs: int = 20, seed: int = 13):
    encoded = dataset.encoded_splits()
    evaluator = LinkPredictionEvaluator(encoded["train"], encoded["dev"], encoded["test"])
    # Translational models use the larger step size; multiplicative / text
    # models use a gentler one (per-baseline settings as in the paper).
    learning_rates = {"TransE": 0.08, "TransH": 0.08, "TransD": 0.08}
    results = {}
    for model in _models_for(dataset, large, dim, seed):
        config = TrainingConfig(epochs=epochs, batch_size=256,
                                learning_rate=learning_rates.get(model.name, 0.01),
                                seed=seed, normalize_entities=model.name.startswith("Trans"))
        KGETrainer(model, config).fit(encoded["train"])
        results[model.name] = evaluator.evaluate(model, encoded["test"])
    return results


def test_bench_table4_openbg500(benchmark, benchmark_suite):
    dataset = benchmark_suite["OpenBG500"]
    results = benchmark.pedantic(lambda: _run(dataset, large=False), rounds=1, iterations=1)
    print("\n" + format_results_table(results, title="Table IV — OpenBG500 analogue"))

    assert {"TransE", "TransH", "TransD", "DistMult", "ComplEx", "TuckER",
            "KG-BERT", "GenKGC"} == set(results)
    # Translational models beat vanilla bilinear models (paper's finding).
    assert max(results[name].mean_reciprocal_rank for name in ("TransE", "TransH", "TransD")) \
        > min(results[name].mean_reciprocal_rank for name in ("DistMult", "ComplEx"))
    for metrics in results.values():
        assert metrics.num_queries > 0


def test_bench_table4_openbg500_large(benchmark, benchmark_suite):
    dataset = benchmark_suite["OpenBG500-L"]
    results = benchmark.pedantic(lambda: _run(dataset, large=True, epochs=15),
                                 rounds=1, iterations=1)
    print("\n" + format_results_table(results, title="Table IV — OpenBG500-L analogue"))

    # The -L table omits the heavy models, exactly as the paper does.
    assert set(results) == {"TransE", "TransH", "TransD", "DistMult", "ComplEx"}
    # Vanilla TransE remains competitive at larger scale (paper's observation).
    best = max(results.values(), key=lambda metrics: metrics.mean_reciprocal_rank)
    assert results["TransE"].mean_reciprocal_rank >= best.mean_reciprocal_rank * 0.6
