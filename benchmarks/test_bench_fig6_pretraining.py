"""Figure 6 — the KG-enhanced pre-training framework.

The figure shows the mPLUG-style architecture with its four objectives (ITC,
ITM, MLM, PrefixLM) over unified text tokens and visual tokens.  The bench
runs a short pre-training job and checks that every objective is exercised
and that the joint loss decreases, i.e. the framework trains end-to-end.
"""

from __future__ import annotations

import numpy as np

from repro.pretrain.mplug import MPlugConfig
from repro.pretrain.pretrainer import Pretrainer, PretrainingConfig


def test_bench_fig6_pretraining_objectives(benchmark, catalog, graph):
    def run():
        model_config = MPlugConfig(dim=32, num_heads=4, num_text_layers=1,
                                   num_visual_layers=1, num_decoder_layers=1)
        pretrainer = Pretrainer(
            catalog, graph, model_config=model_config,
            config=PretrainingConfig(steps=24, batch_size=8, max_examples=120,
                                     use_kg=True, seed=13))
        report = pretrainer.pretrain()
        return pretrainer, report

    pretrainer, report = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFigure 6 — pre-training loss curves (first -> last):")
    for objective in ("itc", "itm", "mlm", "prefix_lm", "total"):
        series = report.losses[objective]
        print(f"  {objective:<10} {series[0]:8.3f} -> {series[-1]:8.3f}  "
              f"(improved: {report.improved(objective)})")

    # All four objectives were computed at every step.
    for objective in ("itc", "itm", "mlm", "prefix_lm"):
        assert len(report.losses[objective]) == 24
        assert all(np.isfinite(value) for value in report.losses[objective])

    # The joint loss and the generative objectives decrease over pre-training.
    assert report.improved("total")
    assert report.improved("prefix_lm")
    assert report.improved("mlm")

    # The KG-enhanced text encoder consumes unified text tokens: triple
    # renderings make the KG-enhanced input strictly longer than the raw text.
    product = next(p for p in catalog.products if p.concept_links)
    enhanced = pretrainer.data_builder.enhance_with_kg("item title", product.product_id)
    assert len(enhanced.split()) > 2
