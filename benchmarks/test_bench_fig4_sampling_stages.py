"""Figure 4 — the three-stage benchmark building process.

Prints the stage-by-stage reduction (relation refinement → head entity
filtering → tail entity sampling) for each benchmark and checks that every
stage only shrinks its input and that the relation subset relation
R_IMG ⊆ R_500 holds, as drawn in the figure.
"""

from __future__ import annotations

from repro.benchmark.builders import BenchmarkBuilder, default_suite_configs


def test_bench_fig4_sampling_stages(benchmark, graph):
    def build():
        builder = BenchmarkBuilder(graph, seed=13)
        return builder.build_suite(default_suite_configs(seed=13))

    suite = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\nFigure 4 — benchmark building stages (before → after):")
    for name, stages in suite.stages.items():
        print(f"  {name}:")
        for stage_name, before, after in stages.reduction_table():
            print(f"    {stage_name:<24} {before:>8} -> {after:>8}")

    for name, stages in suite.stages.items():
        # Each stage can only reduce (or keep) its candidate set.
        assert stages.refined_relations <= max(stages.candidate_relations, 1)
        assert stages.sampled_head_entities <= stages.candidate_head_entities
        assert stages.sampled_triples <= stages.candidate_triples
        # The final triples are exactly what the dataset splits were built from.
        dataset = suite[name]
        assert len(dataset.all_triples()) == stages.sampled_triples

    # The IMG relation subset is contained in the 500 relation subset
    # (R_136 ⊂ R_500 in the paper).
    img_relations = set(suite.stages["OpenBG-IMG"].relations)
    five_hundred_relations = set(suite.stages["OpenBG500"].relations)
    assert img_relations <= five_hundred_relations
