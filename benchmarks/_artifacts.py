"""Persist benchmark results as ``BENCH_*.json`` artifacts at the repo root.

Every bench module records its measured numbers — workload description,
backend, codec, timings and speedups — so a CI bench job can upload the
artifacts and a reviewer can diff perf across commits without re-running
anything.  One artifact per bench family::

    BENCH_store.json    backend micro-benchmarks (test_bench_store_backends)
    BENCH_query.json    query-engine benchmarks  (test_bench_query_engine)
    BENCH_server.json   network-path benchmarks  (test_bench_server)

Sections merge: a test updates only its own section and leaves sections
written by other tests intact, so running a single bench never clobbers
the rest of the artifact.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

#: The repo root — artifacts land next to ROADMAP.md, not in benchmarks/.
REPO_ROOT = Path(__file__).resolve().parent.parent


def update_artifact(name: str, section: str, payload: dict) -> Path:
    """Merge ``payload`` into the ``section`` of ``BENCH_<name>.json``."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    try:
        document = json.loads(path.read_text())
        if not isinstance(document, dict):
            document = {}
    except (OSError, ValueError):
        document = {}
    document["benchmark"] = name
    document["generated_unix"] = int(time.time())
    document["python"] = platform.python_version()
    document["machine"] = {"platform": platform.platform(),
                           "cpus": os.cpu_count()}
    document.setdefault("sections", {})[section] = payload
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path
