"""Table I — statistics of OpenBG (scaled-down synthetic analogue).

Regenerates the Table I accounting: overall class/concept/relation/product/
triple counts, per-taxonomy level breakdowns, and per-relation triple counts
grouped by property kind.  The benchmark measures the end-to-end
construction time of the synthetic OpenBG.
"""

from __future__ import annotations

from repro.construction.pipeline import OpenBGBuilder
from repro.datagen.catalog import SyntheticCatalogConfig
from repro.kg.statistics import compute_statistics


def test_bench_table1_statistics(benchmark, construction_result):
    statistics = benchmark.pedantic(
        lambda: compute_statistics(construction_result.graph),
        rounds=1, iterations=1)

    print("\n" + statistics.format_table())

    # Shape of Table I: all headline counts are positive and consistent.
    assert statistics.num_core_classes > 100
    assert statistics.num_core_concepts > 50
    assert statistics.num_relation_types > 20
    assert statistics.num_products == construction_result.catalog.config.num_products
    assert statistics.num_triples == len(construction_result.graph)

    # Category / Brand / Place / concept taxonomies all present with leaves.
    for root in ("Category", "Brand", "Place", "Scene", "Crowd", "Theme",
                 "Time", "MarketSegment"):
        assert root in statistics.taxonomy, f"missing taxonomy breakdown for {root}"
        assert statistics.taxonomy[root].total > 0
        assert statistics.taxonomy[root].leaves > 0

    # Like the paper, rdf:type and the inMarket* family dominate relation counts.
    assert statistics.meta_property_counts.get("rdf:type", 0) > 0
    in_market_total = sum(count for rel, count in statistics.object_property_counts.items()
                          if rel.startswith("inMarket"))
    assert in_market_total > 0


def test_bench_table1_construction_scaling(benchmark):
    """Construction throughput: build a smaller OpenBG end-to-end per round."""
    config = SyntheticCatalogConfig(num_products=150, seed=29)

    def build():
        return OpenBGBuilder(config, seed=29).build(run_validation=False)

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    assert result.summary()["triples"] > 1000
