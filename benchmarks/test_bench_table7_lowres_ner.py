"""Table VII — low-resource (1-shot / 5-shot) NER for item titles.

Reproduces the low-resource NER comparison: F1 per backbone at 1 and 5 shots
per entity type, checking that metrics are well-formed, that more shots help,
and that the larger KG-enhanced model is the strongest of the mPLUG variants
at 5-shot (the paper's mPLUG-large+KG row).
"""

from __future__ import annotations

from repro.tasks import TitleNerTask


def test_bench_table7_low_resource_ner(benchmark, catalog, backbone_baseline,
                                       backbone_mplug_base, backbone_mplug_base_kg,
                                       backbone_mplug_large_kg):
    task = TitleNerTask(catalog, max_examples=160, seed=13)
    backbones = {
        "UIE (baseline)": backbone_baseline,
        "mPLUG-base": backbone_mplug_base,
        "mPLUG-base+KG": backbone_mplug_base_kg,
        "mPLUG-large+KG": backbone_mplug_large_kg,
    }

    def run_all():
        return {name: task.evaluate_low_resource(backbone, shot_settings=(1, 5),
                                                 probe_epochs=150)
                for name, backbone in backbones.items()}

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\n{:<26} | {:>8} | {:>8}".format("Model", "1-Shot", "5-Shot"))
    for name, row in table.items():
        print("{:<26} | {:>8.3f} | {:>8.3f}".format(name, row["1-shot"], row["5-shot"]))

    for row in table.values():
        assert 0.0 <= row["1-shot"] <= 1.0
        assert 0.0 <= row["5-shot"] <= 1.0
        # More supervision does not make things substantially worse.
        assert row["5-shot"] >= row["1-shot"] - 0.1

    # Among the mPLUG variants, the large KG-enhanced model is not the worst
    # at 5-shot (the paper reports it as the best row).
    mplug_scores = {name: row["5-shot"] for name, row in table.items()
                    if name.startswith("mPLUG")}
    assert table["mPLUG-large+KG"]["5-shot"] >= min(mplug_scores.values())
