"""Zipf-distributed traffic generation for the bench suite.

Real serving traffic is Zipfian: millions of users hammer a few
thousand distinct queries (the paper's shopping-guide and QA workloads
are exactly this shape).  This helper turns that into reproducible
benchmark traces: rank 0 is the hottest item, popularity decays as
``1 / rank**s``, and a seeded generator makes every run sample the
identical trace.

Named with a leading underscore so pytest never collects it as a test
module — it is imported by the bench tests the same way ``_artifacts``
is.
"""

from __future__ import annotations

import numpy as np


def zipf_weights(catalog_size: int, s: float = 1.1) -> np.ndarray:
    """Normalized truncated-Zipf probabilities over ``catalog_size`` ranks."""
    if catalog_size < 1:
        raise ValueError(f"catalog_size must be >= 1, got {catalog_size}")
    if s <= 0:
        raise ValueError(f"the Zipf exponent s must be > 0, got {s}")
    ranks = np.arange(1, catalog_size + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, s)
    return weights / weights.sum()


def zipf_trace(num_requests: int, catalog_size: int, *, s: float = 1.1,
               seed: int = 0) -> np.ndarray:
    """A seeded trace of ``num_requests`` catalog ranks, Zipf(s)-popular.

    Returns int ranks in ``[0, catalog_size)``; rank 0 is the hottest.
    Identical ``(num_requests, catalog_size, s, seed)`` always yields
    the identical trace, so cached and cache-disabled runs replay the
    same traffic.
    """
    rng = np.random.default_rng(seed)
    return rng.choice(catalog_size, size=int(num_requests),
                      p=zipf_weights(catalog_size, s))
