"""Table V — downstream tasks with pre-trained, KG-enhanced backbones.

Evaluates category prediction (accuracy), NER for titles (P/R/F), title
summarization (ROUGE-L), IE for reviews (P/R/F) and salience evaluation
(accuracy) for the general-domain baseline, mPLUG-base, mPLUG-base+KG and
mPLUG-large+KG analogues, and checks the headline comparison of the paper:
KG-enhanced pre-training helps over the general-domain baseline.
"""

from __future__ import annotations

from typing import Dict

from repro.tasks import (
    CategoryPredictionTask,
    ReviewIeTask,
    SalienceEvaluationTask,
    TitleNerTask,
    TitleSummarizationTask,
)


def _evaluate_backbone(catalog, backbone, seed: int = 13) -> Dict[str, float]:
    row: Dict[str, float] = {}
    row["category_accuracy"] = CategoryPredictionTask(catalog, seed=seed) \
        .evaluate(backbone, probe_epochs=120)["accuracy"]
    ner = TitleNerTask(catalog, max_examples=160, seed=seed) \
        .evaluate(backbone, probe_epochs=150)
    row["ner_f1"] = ner["f1"]
    row["summarization_rouge_l"] = TitleSummarizationTask(catalog, max_examples=80, seed=seed) \
        .evaluate(backbone, fine_tune_steps=10)["rouge_l"]
    ie = ReviewIeTask(catalog, max_examples=140, seed=seed) \
        .evaluate(backbone, probe_epochs=150)
    row["ie_f1"] = ie["f1"]
    row["salience_accuracy"] = SalienceEvaluationTask(catalog, max_examples=200, seed=seed) \
        .evaluate(backbone, probe_epochs=150)["accuracy"]
    return row


def test_bench_table5_downstream(benchmark, catalog, backbone_baseline,
                                 backbone_mplug_base, backbone_mplug_base_kg,
                                 backbone_mplug_large_kg):
    backbones = {
        "RoBERTa-large (baseline)": backbone_baseline,
        "mPLUG-base": backbone_mplug_base,
        "mPLUG-base+KG": backbone_mplug_base_kg,
        "mPLUG-large+KG": backbone_mplug_large_kg,
    }

    def run_all():
        return {name: _evaluate_backbone(catalog, backbone)
                for name, backbone in backbones.items()}

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    columns = ["category_accuracy", "ner_f1", "summarization_rouge_l", "ie_f1",
               "salience_accuracy"]
    print("\n" + " | ".join(["{:<26}".format("Model")] + [f"{c:>22}" for c in columns]))
    for name, row in table.items():
        print(" | ".join(["{:<26}".format(name)] + [f"{row[c]:>22.3f}" for c in columns]))

    # All metrics are valid fractions.
    for row in table.values():
        for column in columns:
            assert 0.0 <= row[column] <= 1.0

    # Headline claims of Table V, checked as shapes rather than absolute numbers:
    # (1) KG-enhanced pre-training beats the general-domain baseline on
    #     category prediction (the KG's taxonomy is exactly what the task needs);
    kg_row = table["mPLUG-base+KG"]
    large_kg_row = table["mPLUG-large+KG"]
    baseline_row = table["RoBERTa-large (baseline)"]
    assert kg_row["category_accuracy"] > baseline_row["category_accuracy"]

    # (2) within the mPLUG family, adding KG (and capacity) never hurts the
    #     extraction-style tasks — the paper's mPLUG-base → base+KG → large+KG
    #     progression;
    assert large_kg_row["ner_f1"] >= table["mPLUG-base"]["ner_f1"] - 0.05
    assert large_kg_row["ie_f1"] >= table["mPLUG-base"]["ie_f1"] - 0.05
    assert kg_row["category_accuracy"] >= table["mPLUG-base"]["category_accuracy"] - 0.05

    # (3) the KG-enhanced models stay competitive with the capacity-matched
    #     general-domain baseline on salience evaluation.
    assert large_kg_row["salience_accuracy"] >= baseline_row["salience_accuracy"] - 0.15
