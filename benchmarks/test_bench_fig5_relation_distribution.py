"""Figure 5 — relation distribution of OpenBG-IMG (long tail).

Prints the sorted relation-frequency series of the OpenBG-IMG analogue (the
same series Figure 5 plots as a density) and asserts the long-tail shape:
high Gini concentration, head-heavy coverage and a clearly negative
log-log slope.
"""

from __future__ import annotations

from repro.benchmark.distribution import long_tail_metrics, relation_distribution


def test_bench_fig5_relation_distribution(benchmark, benchmark_suite):
    dataset = benchmark_suite["OpenBG-IMG"]
    triples = dataset.all_triples()

    distribution = benchmark.pedantic(lambda: relation_distribution(triples),
                                      rounds=3, iterations=1)
    metrics = long_tail_metrics(triples)

    print("\nFigure 5 — relation distribution of the OpenBG-IMG analogue:")
    total = sum(count for _relation, count in distribution)
    for rank, (relation, count) in enumerate(distribution, start=1):
        bar = "#" * max(1, int(50 * count / distribution[0][1]))
        print(f"  {rank:>3} {relation:<18} {count:>6} ({count / total:6.1%}) {bar}")
    print(f"  long-tail metrics: {metrics}")

    # The distribution covers several relations and is sorted by frequency.
    counts = [count for _relation, count in distribution]
    assert len(counts) >= 5
    assert counts == sorted(counts, reverse=True)

    # Long-tail shape (Figure 5): concentration and negative log-log slope.
    assert metrics["gini"] > 0.3
    assert metrics["head_share_top20pct"] > 0.4
    assert metrics["log_log_slope"] < -0.3

    # The full OpenBG analogue is long-tailed as well (inMarket* dominates).
    assert sum(counts) == len(triples)
