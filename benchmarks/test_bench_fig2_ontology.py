"""Figure 2 — the core ontology of OpenBG.

Rebuilds the core ontology (3 classes, 5 concepts, 7 object-property
families, W3C meta-properties) and prints its edge list, checking the exact
structure the figure shows.
"""

from __future__ import annotations

from repro.kg.namespaces import MetaProperty
from repro.ontology.core_ontology import (
    CORE_OBJECT_PROPERTY_SIGNATURES,
    build_core_ontology,
    ontology_edge_list,
)
from repro.ontology.schema import PropertyKind


def test_bench_fig2_core_ontology(benchmark):
    schema = benchmark.pedantic(build_core_ontology, rounds=3, iterations=1)

    print("\nFigure 2 — core ontology edges:")
    for head, relation, tail in ontology_edge_list():
        print(f"  {head:>14} --{relation}--> {tail}")

    # 3 core classes under owl:Thing, 5 core concepts under skos:Concept.
    assert set(schema.classes) == {"Category", "Brand", "Place"}
    assert set(schema.concepts) == {"Time", "Scene", "Theme", "Crowd", "MarketSegment"}

    # Every Figure-2 object property links Category to one other core node.
    for relation, (domain, range_) in CORE_OBJECT_PROPERTY_SIGNATURES.items():
        definition = schema.properties[relation]
        assert definition.kind is PropertyKind.OBJECT
        assert definition.domain == "Category"
        assert range_ in schema.classes or range_ in schema.concepts

    # The imported W3C meta-properties are present.
    for meta in (MetaProperty.SUBCLASS_OF, MetaProperty.BROADER, MetaProperty.TYPE,
                 MetaProperty.EQUIVALENT_CLASS, MetaProperty.SUBPROPERTY_OF,
                 MetaProperty.EQUIVALENT_PROPERTY):
        assert meta.value in schema.properties

    edges = ontology_edge_list()
    assert len([e for e in edges if e[1] == MetaProperty.SUBCLASS_OF.value]) == 3
    assert len([e for e in edges if e[1] == MetaProperty.BROADER.value]) == 5
    assert len(edges) == 3 + 5 + len(CORE_OBJECT_PROPERTY_SIGNATURES)
