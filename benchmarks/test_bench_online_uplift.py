"""Section IV-G — online business-metric uplifts after deploying the KG.

The paper reports: item alignment +45% GMV, shopping guide +28.1% CPM,
QA-based recommendation +11% CTR, emerging product release −30% duration.
The bench runs all four simulators with and without KG enhancement and
checks that every uplift has the right direction and a sensible magnitude.
"""

from __future__ import annotations

from repro.applications import (
    ItemAlignmentSimulator,
    ProductReleaseSimulator,
    QaRecommendationSimulator,
    ShoppingGuideSimulator,
)

#: Paper-reported relative uplifts, for side-by-side printing.
PAPER_UPLIFTS = {
    "GMV": 0.45,
    "CPM": 0.281,
    "CTR": 0.11,
    "release_duration_minutes": 0.30,
}


def test_bench_online_uplift(benchmark, catalog, graph):
    def run_all():
        return [
            ItemAlignmentSimulator(catalog, graph, seed=13).run(),
            ShoppingGuideSimulator(catalog, graph, seed=13).run(num_impressions=2000),
            QaRecommendationSimulator(catalog, graph, seed=13).run(num_sessions=80),
            ProductReleaseSimulator(catalog, graph, seed=13).run(num_cases=80),
        ]

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nSection IV-G — online uplifts (simulated vs paper):")
    print("{:<28} {:>12} {:>12} {:>10} {:>10}".format(
        "metric", "baseline", "KG-enhanced", "uplift", "paper"))
    for report in reports:
        paper = PAPER_UPLIFTS.get(report.metric, float("nan"))
        print("{:<28} {:>12.4f} {:>12.4f} {:>9.1f}% {:>9.1f}%".format(
            report.metric, report.baseline, report.enhanced,
            report.uplift * 100, paper * 100))

    by_metric = {report.metric: report for report in reports}
    assert set(by_metric) == {"GMV", "CPM", "CTR", "release_duration_minutes"}

    # Direction: every deployment improves its metric.
    for report in reports:
        assert report.improved, f"{report.metric} did not improve"
        assert report.uplift > 0.0

    # Rough magnitude: uplifts are substantial but not absurd (within an
    # order of magnitude of the paper's numbers).
    for metric, report in by_metric.items():
        assert 0.01 < report.uplift < 2.0, f"{metric} uplift out of plausible range"
