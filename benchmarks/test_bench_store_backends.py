"""Micro-benchmark — SetBackend vs ColumnarBackend on store hot paths.

Three workloads mirror what the upper layers actually hot-loop over:

* **bulk-load** — insert a synthetic product-graph worth of triples
  (construction pipeline pattern);
* **pattern-match** — the sampler/query-engine mix: per-relation counts,
  per-head matches, (head, relation) tail lists, count fast paths and
  batched degrees;
* **neighbourhood** — 2-hop undirected BFS from product nodes, the
  Figure 3 snapshot access pattern.

Each workload is timed best-of-three.  The bench prints a per-workload
table and asserts the acceptance bar from the backend refactor: the
columnar backend is at least 2× faster than the set backend on the
combined bulk-load + pattern-match workload.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

from repro.kg.backend import make_backend
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple

#: Synthetic scale: enough rows for stable timings, small enough for CI.
NUM_PRODUCTS = 5000
RELATIONS = ["brandIs", "placeOfOrigin", "relatedScene", "forCrowd",
             "aboutTheme", "rdf:type"]
REPEATS = 3


def _workload_rows() -> List[Tuple[str, str, str]]:
    rows: List[Tuple[str, str, str]] = []
    for index in range(NUM_PRODUCTS):
        product = f"product:{index:06d}"
        rows.append((product, "brandIs", f"brand:{index % 97}"))
        rows.append((product, "placeOfOrigin", f"place:{index % 31}"))
        rows.append((product, "relatedScene", f"scene:{index % 53}"))
        rows.append((product, "forCrowd", f"crowd:{index % 17}"))
        rows.append((product, "aboutTheme", f"theme:{index % 71}"))
        rows.append((product, "rdf:type", f"category:{index % 203}"))
    return rows


def _best_of(repeats: int, workload: Callable[[], None]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def _time_bulk_load(backend_name: str, rows) -> float:
    def workload() -> None:
        backend = make_backend(backend_name)
        for head, relation, tail in rows:
            backend.add(head, relation, tail)
        backend.count()  # force the columnar index build into the timed region
    return _best_of(REPEATS, workload)


def _time_pattern_match(backend) -> float:
    products = [f"product:{index:06d}" for index in range(0, NUM_PRODUCTS, 3)]

    def workload() -> None:
        total = 0
        for relation in RELATIONS:
            total += backend.count(relation=relation)
        for product in products:
            total += len(backend.match(head=product))
            total += len(backend.tails(product, "relatedScene"))
            total += backend.count(head=product, relation="brandIs")
        for index in range(97):
            total += len(backend.match(relation="brandIs", tail=f"brand:{index}"))
        total += sum(backend.degree_many(products))
        assert total > 0
    return _best_of(REPEATS, workload)


def _time_neighbourhood(graph: KnowledgeGraph) -> float:
    seeds = [f"product:{index:06d}" for index in range(0, NUM_PRODUCTS, 250)]

    def workload() -> None:
        collected = 0
        for seed in seeds:
            collected += len(graph.neighbourhood(seed, hops=2))
        assert collected > 0
    return _best_of(REPEATS, workload)


def test_bench_store_backends():
    rows = _workload_rows()
    results = {}
    for backend_name in ("set", "columnar"):
        load_seconds = _time_bulk_load(backend_name, rows)

        backend = make_backend(backend_name)
        for head, relation, tail in rows:
            backend.add(head, relation, tail)
        match_seconds = _time_pattern_match(backend)

        graph = KnowledgeGraph(name="bench", backend=backend_name)
        graph.add_many(Triple(*row) for row in rows)
        hood_seconds = _time_neighbourhood(graph)

        results[backend_name] = {
            "bulk-load": load_seconds,
            "pattern-match": match_seconds,
            "neighbourhood": hood_seconds,
        }

    print(f"\nStore backend micro-benchmark ({len(rows)} triples, best of {REPEATS}):")
    print(f"  {'workload':<16} {'set':>10} {'columnar':>10} {'speedup':>9}")
    for workload in ("bulk-load", "pattern-match", "neighbourhood"):
        set_seconds = results["set"][workload]
        columnar_seconds = results["columnar"][workload]
        print(f"  {workload:<16} {set_seconds:>9.3f}s {columnar_seconds:>9.3f}s "
              f"{set_seconds / columnar_seconds:>8.1f}x")

    combined_set = results["set"]["bulk-load"] + results["set"]["pattern-match"]
    combined_columnar = (results["columnar"]["bulk-load"]
                         + results["columnar"]["pattern-match"])
    speedup = combined_set / combined_columnar
    print(f"  combined bulk-load + pattern-match speedup: {speedup:.1f}x")
    # Acceptance bar from the backend refactor issue.
    assert speedup >= 2.0
