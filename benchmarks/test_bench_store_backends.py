"""Micro-benchmark — Set vs Columnar vs Mmap backends on store hot paths.

Four workloads mirror what the upper layers actually hot-loop over:

* **bulk-load** — insert a synthetic product-graph worth of triples
  (construction pipeline pattern);
* **pattern-match** — the sampler/query-engine mix: per-relation counts,
  per-head matches, (head, relation) tail lists, count fast paths and
  batched degrees;
* **neighbourhood** — 2-hop undirected BFS from product nodes, the
  Figure 3 snapshot access pattern;
* **interleaved** — the dedup-stage pattern: add one triple, then issue
  tails/count queries, repeatedly.  Run on the columnar backend twice —
  with the delta overlay (default) and with eager rebuilds
  (``delta_threshold=0``, the pre-overlay behaviour) — to price
  incremental index maintenance.

The mmap backend is additionally timed on **reopen** (save to disk, open,
query cold) and parity-checked against the columnar results on all eight
pattern shapes.

A second bench test drives the full **bulk-load → save → reopen →
batched-query** pipeline at 8× scale, comparing the pre-sharding path
(per-row adds into one columnar store, single-store save/open) against
the **sharded** backend's vectorized ``add_many``, parallel per-shard
save/open and routed batched queries, in 1-shard and 4-shard/4-thread
configurations.

Each workload is timed best-of-three.  The bench asserts three bars:

* columnar ≥ 2× faster than set on combined bulk-load + pattern-match
  (the PR-1 acceptance bar, kept);
* delta overlay ≥ 5× faster than eager rebuild on the interleaved
  mutate/query workload (the incremental-maintenance acceptance bar);
* the 4-shard pipeline ≥ 1.5× faster than the single-shard columnar
  pipeline — asserted only on ≥ 4 cores, since part of the speedup
  comes from GIL-releasing numpy/IO work running on real threads.

Assertion messages embed the measured per-backend numbers so a CI
failure report prints the whole table, not just the failing comparison.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Tuple

from _artifacts import update_artifact
from repro.kg.backend import ColumnarBackend, make_backend
from repro.kg.graph import KnowledgeGraph
from repro.kg.mmap_backend import MmapBackend
from repro.kg.sharded_backend import ShardedBackend
from repro.kg.triple import Triple

#: Synthetic scale: enough rows for stable timings, small enough for CI.
NUM_PRODUCTS = 5000
RELATIONS = ["brandIs", "placeOfOrigin", "relatedScene", "forCrowd",
             "aboutTheme", "rdf:type"]
REPEATS = 3
BACKEND_NAMES = ("set", "columnar", "mmap")
#: Interleaved workload: mutation bursts of 1 add followed by queries.
INTERLEAVED_CYCLES = 250


def _workload_rows() -> List[Tuple[str, str, str]]:
    rows: List[Tuple[str, str, str]] = []
    for index in range(NUM_PRODUCTS):
        product = f"product:{index:06d}"
        rows.append((product, "brandIs", f"brand:{index % 97}"))
        rows.append((product, "placeOfOrigin", f"place:{index % 31}"))
        rows.append((product, "relatedScene", f"scene:{index % 53}"))
        rows.append((product, "forCrowd", f"crowd:{index % 17}"))
        rows.append((product, "aboutTheme", f"theme:{index % 71}"))
        rows.append((product, "rdf:type", f"category:{index % 203}"))
    return rows


def _best_of(repeats: int, workload: Callable[[], None]) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def _time_bulk_load(backend_name: str, rows) -> float:
    def workload() -> None:
        backend = make_backend(backend_name)
        for head, relation, tail in rows:
            backend.add(head, relation, tail)
        # A pattern count forces the columnar index build into the timed
        # region (the no-argument count is a len() fast path that doesn't).
        backend.count(relation="brandIs")
    return _best_of(REPEATS, workload)


def _pattern_match_workload(backend) -> int:
    products = [f"product:{index:06d}" for index in range(0, NUM_PRODUCTS, 3)]
    total = 0
    for relation in RELATIONS:
        total += backend.count(relation=relation)
    for product in products:
        total += len(backend.match(head=product))
        total += len(backend.tails(product, "relatedScene"))
        total += backend.count(head=product, relation="brandIs")
    for index in range(97):
        total += len(backend.match(relation="brandIs", tail=f"brand:{index}"))
    total += sum(backend.degree_many(products))
    return total


def _time_pattern_match(backend) -> float:
    def workload() -> None:
        assert _pattern_match_workload(backend) > 0
    return _best_of(REPEATS, workload)


def _time_neighbourhood(graph: KnowledgeGraph) -> float:
    seeds = [f"product:{index:06d}" for index in range(0, NUM_PRODUCTS, 250)]

    def workload() -> None:
        collected = 0
        for seed in seeds:
            collected += len(graph.neighbourhood(seed, hops=2))
        assert collected > 0
    return _best_of(REPEATS, workload)


def _time_interleaved(make: Callable[[], ColumnarBackend], rows) -> float:
    """Dedup-style loop: one add, then tails/count queries, repeatedly."""
    def workload() -> None:
        backend = make()
        for head, relation, tail in rows:
            backend.add(head, relation, tail)
        # Pattern count: really build the base index outside the loop.
        backend.count(relation="relatedScene")
        total = 0
        for cycle in range(INTERLEAVED_CYCLES):
            product = f"product:{cycle % NUM_PRODUCTS:06d}"
            backend.add(product, "relatedScene", f"new-scene:{cycle}")
            total += len(backend.tails(product, "relatedScene"))
            total += backend.count(relation="relatedScene")
        assert total > 0
    return _best_of(REPEATS, workload)


def test_bench_store_backends(tmp_path):
    rows = _workload_rows()
    results = {}
    for backend_name in BACKEND_NAMES:
        load_seconds = _time_bulk_load(backend_name, rows)

        backend = make_backend(backend_name)
        for head, relation, tail in rows:
            backend.add(head, relation, tail)
        match_seconds = _time_pattern_match(backend)

        graph = KnowledgeGraph(name="bench", backend=backend_name)
        graph.add_many(Triple(*row) for row in rows)
        hood_seconds = _time_neighbourhood(graph)

        results[backend_name] = {
            "bulk-load": load_seconds,
            "pattern-match": match_seconds,
            "neighbourhood": hood_seconds,
        }

    print(f"\nStore backend micro-benchmark ({len(rows)} triples, best of {REPEATS}):")
    header = "".join(f"{name:>10}" for name in BACKEND_NAMES)
    print(f"  {'workload':<16}{header}{'col/set':>9}")
    for workload in ("bulk-load", "pattern-match", "neighbourhood"):
        timings = "".join(f"{results[name][workload]:>9.3f}s" for name in BACKEND_NAMES)
        speedup = results["set"][workload] / results["columnar"][workload]
        print(f"  {workload:<16}{timings}{speedup:>8.1f}x")

    # --- mmap reopen-then-query: cold disk-backed pattern matching ---------- #
    store_dir = tmp_path / "bench-store"
    source = make_backend("columnar")
    for head, relation, tail in rows:
        source.add(head, relation, tail)
    source.save(store_dir)

    def reopen_workload() -> None:
        reopened = MmapBackend.open(store_dir)
        assert _pattern_match_workload(reopened) > 0
    reopen_seconds = _best_of(REPEATS, reopen_workload)
    print(f"  mmap reopen + pattern-match (cold open each run): {reopen_seconds:.3f}s")

    # Reopen parity on all eight pattern shapes of a sample triple.
    reopened = MmapBackend.open(store_dir)
    sample = ("product:000042", "relatedScene", f"scene:{42 % 53}")
    for use_head in (sample[0], None):
        for use_relation in (sample[1], None):
            for use_tail in (sample[2], None):
                pattern = (use_head, use_relation, use_tail)
                assert reopened.match(*pattern, sort=True) \
                    == source.match(*pattern, sort=True)
                assert reopened.count(*pattern) == source.count(*pattern)

    # --- interleaved mutate/query: delta overlay vs eager rebuild ---------- #
    eager_seconds = _time_interleaved(
        lambda: ColumnarBackend(delta_threshold=0), rows)
    overlay_seconds = _time_interleaved(ColumnarBackend, rows)
    overlay_speedup = eager_seconds / overlay_seconds
    print(f"  interleaved mutate/query ({INTERLEAVED_CYCLES} cycles): "
          f"eager {eager_seconds:.3f}s vs overlay {overlay_seconds:.3f}s "
          f"= {overlay_speedup:.1f}x")

    combined_set = results["set"]["bulk-load"] + results["set"]["pattern-match"]
    combined_columnar = (results["columnar"]["bulk-load"]
                         + results["columnar"]["pattern-match"])
    speedup = combined_set / combined_columnar
    print(f"  combined bulk-load + pattern-match speedup: {speedup:.1f}x")
    # The per-backend numbers ride along in the assertion messages so a
    # CI failure report shows the whole table, not just a bare compare.
    table = "; ".join(
        f"{name}: " + ", ".join(f"{workload}={seconds:.3f}s"
                                for workload, seconds in timings.items())
        for name, timings in results.items())
    update_artifact("store", "backend_workloads", {
        "workload": f"{len(rows)} triples: bulk-load, pattern-match, "
                    f"2-hop neighbourhood, interleaved mutate/query, "
                    f"mmap reopen (best of {REPEATS})",
        "backend": list(BACKEND_NAMES),
        "codec": "in-process",
        "timings_seconds": {
            **{f"{name}/{workload}": duration
               for name, timings in results.items()
               for workload, duration in timings.items()},
            "mmap/reopen+pattern-match": reopen_seconds,
            "columnar/interleaved-eager": eager_seconds,
            "columnar/interleaved-overlay": overlay_seconds,
        },
        "speedups": {"columnar_vs_set_combined": speedup,
                     "overlay_vs_eager": overlay_speedup},
        "bar": "columnar >= 2x set combined; overlay >= 5x eager",
    })
    # Acceptance bar from the backend refactor issue (PR 1).
    assert speedup >= 2.0, \
        f"columnar combined speedup {speedup:.2f}x < 2.0x over set ({table})"
    # Acceptance bar from the incremental index maintenance issue (PR 2).
    assert overlay_speedup >= 5.0, \
        (f"overlay speedup {overlay_speedup:.2f}x < 5.0x "
         f"(eager {eager_seconds:.3f}s, overlay {overlay_seconds:.3f}s; {table})")


# --------------------------------------------------------------------------- #
# sharded bulk-load + batched queries
# --------------------------------------------------------------------------- #
#: Shards (and threads) used for the parallel configuration.
SHARDED_FANOUT = 4
#: Pipeline speedup bar vs the single-shard (plain columnar) pipeline —
#: asserted only on machines with >= 4 cores, where the per-shard units
#: (numpy sorts, searches, file I/O — all GIL-releasing) actually
#: overlap.  Single-core boxes print the numbers without the bar.
SHARDED_SPEEDUP_BAR = 1.5
#: The sharded workload runs at 8x the base scale so bulk-load and
#: save/open dominate over fixed per-call overheads.
SHARDED_NUM_PRODUCTS = NUM_PRODUCTS * 8


def _sharded_workload_triples() -> List[Triple]:
    triples: List[Triple] = []
    for index in range(SHARDED_NUM_PRODUCTS):
        product = f"product:{index:06d}"
        for offset, relation in enumerate(RELATIONS):
            triples.append(Triple(product, relation, f"v{offset}:{index % 997}"))
    return triples


def _sharded_batched_queries(backend) -> None:
    """The batched query mix both pipelines answer after reopening."""
    pairs = [(f"product:{index:06d}", "relatedScene")
             for index in range(0, SHARDED_NUM_PRODUCTS, 16)]
    nodes = [f"product:{index:06d}"
             for index in range(0, SHARDED_NUM_PRODUCTS, 8)]
    patterns = [(f"product:{index:06d}", "brandIs", None)
                for index in range(0, SHARDED_NUM_PRODUCTS, 16)]
    assert len(backend.relation_frequencies()) == len(RELATIONS)
    assert sum(len(part) for part in backend.tails_many(pairs)) > 0
    assert sum(backend.degree_many(nodes)) > 0
    assert sum(len(part) for part in backend.match_many(patterns)) == len(patterns)


def _time_columnar_pipeline(triples: List[Triple], store_dir) -> float:
    """The pre-sharding pipeline: per-row adds into one columnar store,
    save, reopen via mmap, then the batched query mix."""
    def workload() -> None:
        backend = ColumnarBackend()
        for triple in triples:
            backend.add(triple.head, triple.relation, triple.tail)
        backend.save(store_dir)
        _sharded_batched_queries(MmapBackend.open(store_dir))
    return _best_of(REPEATS, workload)


def _time_sharded_pipeline(n_shards: int, max_workers: int,
                           triples: List[Triple], store_dir) -> float:
    """Bulk add_many → parallel save → parallel open → batched queries."""
    def workload() -> None:
        backend = ShardedBackend(n_shards, max_workers=max_workers)
        assert backend.add_many(triples) == len(triples)
        backend.save(store_dir)
        _sharded_batched_queries(
            ShardedBackend.open(store_dir, max_workers=max_workers))
    return _best_of(REPEATS, workload)


def test_bench_sharded_bulk_and_batched(tmp_path):
    triples = _sharded_workload_triples()
    columnar_seconds = _time_columnar_pipeline(triples, tmp_path / "columnar")
    single_seconds = _time_sharded_pipeline(1, 1, triples, tmp_path / "single")
    fanout_seconds = _time_sharded_pipeline(SHARDED_FANOUT, SHARDED_FANOUT,
                                            triples, tmp_path / "fanout")
    speedup = columnar_seconds / fanout_seconds
    parallel_speedup = single_seconds / fanout_seconds
    cores = os.cpu_count() or 1

    table = (
        f"bulk-load + save/open + batched queries "
        f"({len(triples)} triples, best of {REPEATS}, {cores} cores):\n"
        f"  columnar, per-row load (1 store)    {columnar_seconds:>8.3f}s\n"
        f"  sharded n=1, bulk load              {single_seconds:>8.3f}s\n"
        f"  sharded n={SHARDED_FANOUT}, bulk load, {SHARDED_FANOUT} threads   "
        f"{fanout_seconds:>8.3f}s\n"
        f"  sharded n={SHARDED_FANOUT} vs single-shard columnar: {speedup:.2f}x"
        f" (vs sharded n=1: {parallel_speedup:.2f}x)")
    print("\n" + table)
    update_artifact("store", "sharded_pipeline", {
        "workload": f"{len(triples)} triples: bulk-load + save/open + "
                    f"batched queries (best of {REPEATS}, {cores} cores)",
        "backend": ["columnar", "sharded-1", f"sharded-{SHARDED_FANOUT}"],
        "codec": "in-process",
        "timings_seconds": {"columnar_per_row": columnar_seconds,
                            "sharded_1": single_seconds,
                            f"sharded_{SHARDED_FANOUT}": fanout_seconds},
        "speedups": {"sharded_vs_columnar": speedup,
                     "sharded_vs_single_shard": parallel_speedup},
        "bar": f"sharded-{SHARDED_FANOUT} >= {SHARDED_SPEEDUP_BAR}x columnar "
               f"(asserted on >= 4 cores)",
    })

    if cores >= 4:
        assert speedup >= SHARDED_SPEEDUP_BAR, (
            f"sharded pipeline speedup {speedup:.2f}x < {SHARDED_SPEEDUP_BAR}x "
            f"over single-shard columnar on a {cores}-core machine\n{table}")
    else:
        print(f"  ({cores} core(s) < 4: {SHARDED_SPEEDUP_BAR}x bar not asserted)")
