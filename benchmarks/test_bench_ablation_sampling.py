"""Ablation — head/tail sampling rates of the benchmark construction.

The three-stage sampler gives frequent (head) relations a higher head-entity
sampling rate α_h than rare (tail) relations (α_l).  This ablation sweeps
the (α_h, α_l) pair and reports how many entities, relations and triples
survive, verifying the monotone effect of the rates on benchmark size and
that lowering α_l prunes more of the tail than of the head.
"""

from __future__ import annotations

from repro.benchmark.sampling import SamplingConfig, ThreeStageSampler


SWEEP = [
    ("alpha_h=1.0, alpha_l=1.0", 1.0, 1.0),
    ("alpha_h=0.9, alpha_l=0.5", 0.9, 0.5),
    ("alpha_h=0.8, alpha_l=0.2", 0.8, 0.2),
    ("alpha_h=0.5, alpha_l=0.1", 0.5, 0.1),
]


def test_bench_ablation_sampling_rates(benchmark, graph):
    def run_sweep():
        results = {}
        for label, alpha_h, alpha_l in SWEEP:
            config = SamplingConfig(name=f"ablation-{alpha_h}-{alpha_l}",
                                    num_relations=20, head_sampling_rate=alpha_h,
                                    tail_sampling_rate=alpha_l,
                                    triple_sampling_rate=1.0, seed=13)
            results[label] = ThreeStageSampler(graph).run(config)
        return results

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\nAblation — head/tail entity sampling rates:")
    print("{:<28} {:>10} {:>10} {:>10}".format("setting", "heads", "triples", "relations"))
    for label, stages in results.items():
        print("{:<28} {:>10} {:>10} {:>10}".format(
            label, stages.sampled_head_entities, stages.sampled_triples,
            len({t.relation for t in stages.triples})))

    sizes = [results[label].sampled_triples for label, _h, _l in SWEEP]
    heads = [results[label].sampled_head_entities for label, _h, _l in SWEEP]

    # Lower sampling rates never increase the benchmark size.
    assert all(earlier >= later for earlier, later in zip(sizes, sizes[1:]))
    assert all(earlier >= later for earlier, later in zip(heads, heads[1:]))

    # The full-rate setting keeps every candidate head entity.
    full = results["alpha_h=1.0, alpha_l=1.0"]
    assert full.sampled_head_entities == full.candidate_head_entities
