"""Micro-benchmark — the network query protocol vs in-process access.

Four workloads over synthetic product graphs served by a
:class:`~repro.kg.server.KGServer` on loopback:

* **point lookups** — single `(head, relation, ?)` probes and the
  batched `match_many` form, in-process vs over the wire.  The table
  prices the protocol overhead per op (framing + JSON + loopback
  round-trip) and shows how batching amortizes it.
* **paged big-result query** — a whole-graph join streamed through a
  remote cursor page by page vs materialized in one response.
* **wire codec overhead** — the binary codec's block surfaces
  (``match_many_blocks``, ``RemoteCursor.fetch_block``) against the
  JSON codec on batched adjacency lookups and a ≥100k-row cursor
  stream, steady-state (symbol caches warm, interner deltas empty).
* **idle connections** — the selector front-end holds hundreds of open
  sockets on one I/O thread; thread count must not scale with
  connections (the thread-per-connection design it replaced did).

Acceptance bars (the assertion messages embed the timing/memory table,
so a CI failure report carries the numbers):

* remote results — point, batched, full and paged — are identical to
  in-process execution;
* the paged client's peak heap growth stays **bounded**: far below the
  resident size of the fully materialized result (the whole point of
  cursors — a million-row result must not need a million-row client);
* the binary codec is **≥ 5×** faster than JSON on both block-surface
  workloads (the perf-PR acceptance bar);
* server thread growth with 64 idle connections stays within the
  worker-pool size.

Throughput lines are advisory: loopback latency on shared CI runners is
too noisy for a hard bar.  Every test persists its numbers into
``BENCH_server.json`` at the repo root via :mod:`_artifacts`.
"""

from __future__ import annotations

import resource
import threading
import time
import tracemalloc
from typing import List, Tuple

from _artifacts import update_artifact
from repro.kg.client import RemoteClient, RemoteQueryEngine, RemoteStore
from repro.kg.protocol import DecodedBlock
from repro.kg.query import PatternQuery, QueryEngine
from repro.kg.server import DEFAULT_WORKERS, KGServer
from repro.kg.sharded_backend import ShardedBackend
from repro.kg.store import TripleStore
from repro.kg.triple import triples_from_tuples

NUM_PRODUCTS = 4000
NUM_BRANDS = 16
NUM_LOOKUPS = 400
PAGE_SIZE = 256


def _workload_rows() -> List[Tuple[str, str, str]]:
    rows: List[Tuple[str, str, str]] = []
    for index in range(NUM_PRODUCTS):
        product = f"product:{index:06d}"
        rows.append((product, "brandIs", f"brand:{index % NUM_BRANDS}"))
        rows.append((product, "placeOfOrigin", f"place:{index % 23}"))
        rows.append((product, "rdf:type", f"category:{index % 111}"))
    for brand in range(NUM_BRANDS):
        rows.append((f"brand:{brand}", "headquartersIn",
                     f"country:{brand % 4}"))
    return rows


def _store() -> TripleStore:
    return TripleStore(triples_from_tuples(_workload_rows()),
                       backend=ShardedBackend(n_shards=2))


def test_remote_point_lookup_overhead():
    store = _store()
    patterns = [(f"product:{index % NUM_PRODUCTS:06d}", "brandIs", None)
                for index in range(NUM_LOOKUPS)]
    local = store.match_many(patterns)
    table = [f"{'path':<26} {'seconds':>9} {'ops/s':>10}"]
    seconds = {}

    def timed(label, workload):
        start = time.perf_counter()
        result = workload()
        elapsed = time.perf_counter() - start
        seconds[label] = elapsed
        table.append(f"{label:<26} {elapsed:>9.4f} "
                     f"{NUM_LOOKUPS / elapsed:>10.0f}")
        return result

    in_process_single = timed(
        "in-process match x1", lambda: [store.match(*p) for p in patterns])
    in_process_batch = timed(
        "in-process match_many", lambda: store.match_many(patterns))
    with KGServer(store, port=0).start() as server:
        with RemoteStore(server.url) as remote:
            remote_single = timed(
                "remote match x1", lambda: [remote.match(*p)
                                            for p in patterns])
            remote_batch = timed(
                "remote match_many", lambda: remote.match_many(patterns))
    report = "\n".join(table)
    print(f"\npoint lookups ({NUM_LOOKUPS} probes, {len(store)} triples, "
          f"loopback)\n{report}")
    for label, result in (("in-process single", in_process_single),
                          ("in-process batch", in_process_batch),
                          ("remote single", remote_single),
                          ("remote batch", remote_batch)):
        assert result == local, f"{label} lookup results diverge\n{report}"
    update_artifact("server", "point_lookup", {
        "workload": f"{NUM_LOOKUPS} point probes over {len(store)} triples, "
                    f"loopback",
        "backend": "sharded-2",
        "codec": "auto",
        "timings_seconds": seconds,
        "speedups": {
            "batching_amortizes_remote":
                seconds["remote match x1"] / seconds["remote match_many"],
        },
    })


def test_remote_paged_big_result_stays_memory_bounded():
    store = _store()
    # The whole-graph join: every product with its brand's country.
    query = PatternQuery.from_patterns(
        [("?p", "brandIs", "?b"), ("?b", "headquartersIn", "?c")])
    local = QueryEngine(store).execute(query)
    assert len(local) == NUM_PRODUCTS

    # Pinned to the JSON codec: the bar compares transient page dicts against
    # a fully materialized JSON response.  On the binary codec the full
    # response is a dense id block (already cheap) and the pager retains the
    # connection-local symbol cache, so this ratio would measure the codec,
    # not the cursor.  Binary-path memory behaviour is covered by the wire
    # overhead bench.
    with KGServer(store, port=0).start() as server:
        with RemoteQueryEngine(server.url, codec="json") as engine:
            # Full materialization: one response frame, whole list held.
            tracemalloc.start()
            start = time.perf_counter()
            full = engine.execute(query)
            full_seconds = time.perf_counter() - start
            full_peak = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
            assert full == local

            # Paged: only one page of bindings alive at a time.
            def paged_checksum() -> Tuple[int, int]:
                rows = 0
                checksum = 0
                cursor = engine.cursor(query, page_size=PAGE_SIZE)
                for row in cursor:
                    rows += 1
                    checksum ^= hash(row["?p"]) ^ hash(row["?c"])
                cursor.close()
                return rows, checksum

            tracemalloc.start()
            start = time.perf_counter()
            paged_rows, paged_checksum_value = paged_checksum()
            paged_seconds = time.perf_counter() - start
            paged_peak = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()

    expected_checksum = 0
    for row in local:
        expected_checksum ^= hash(row["?p"]) ^ hash(row["?c"])
    report = "\n".join([
        f"{'path':<22} {'seconds':>9} {'peak heap':>12} {'rows':>7}",
        f"{'remote full':<22} {full_seconds:>9.4f} {full_peak:>12,} "
        f"{len(full):>7}",
        f"{'remote paged(' + str(PAGE_SIZE) + ')':<22} {paged_seconds:>9.4f} "
        f"{paged_peak:>12,} {paged_rows:>7}",
    ])
    print(f"\npaged big-result query ({len(local)} rows, loopback)\n{report}")
    assert paged_rows == len(local), f"paged row count diverges\n{report}"
    assert paged_checksum_value == expected_checksum, \
        f"paged rows diverge from local execution\n{report}"
    # The acceptance bar: streaming must keep client memory bounded —
    # the paged pass may not come anywhere near holding the full result.
    assert paged_peak < full_peak / 2, (
        f"paged client peak {paged_peak:,}B is not bounded vs full "
        f"materialization {full_peak:,}B\n{report}")
    update_artifact("server", "paged_big_result", {
        "workload": f"{len(local)}-row join streamed in {PAGE_SIZE}-row "
                    f"pages vs one materialized response, loopback",
        "backend": "sharded-2",
        "codec": "json",
        "timings_seconds": {"remote_full": full_seconds,
                            "remote_paged": paged_seconds},
        "peak_heap_bytes": {"remote_full": full_peak,
                            "remote_paged": paged_peak},
        "speedups": {"paged_peak_reduction": full_peak / paged_peak},
    })


# --------------------------------------------------------------------------- #
# wire codec overhead: binary block surfaces vs JSON, steady state
# --------------------------------------------------------------------------- #
#: Scale for the codec bench: big enough that the cursor stream is
#: >= 100k rows (3 rows per product + brand rows).
WIRE_PRODUCTS = 40_000
WIRE_PAGE_SIZE = 4096
WIRE_REPEATS = 3
#: The tentpole acceptance bar: binary >= 5x JSON on both workloads.
CODEC_SPEEDUP_BAR = 5.0


def _wire_store() -> TripleStore:
    rows: List[Tuple[str, str, str]] = []
    for index in range(WIRE_PRODUCTS):
        product = f"product:{index:06d}"
        rows.append((product, "brandIs", f"brand:{index % NUM_BRANDS}"))
        rows.append((product, "placeOfOrigin", f"place:{index % 23}"))
        rows.append((product, "rdf:type", f"category:{index % 111}"))
    for brand in range(NUM_BRANDS):
        rows.append((f"brand:{brand}", "headquartersIn",
                     f"country:{brand % 4}"))
    return TripleStore(triples_from_tuples(rows))


def _best_of(repeats, workload):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = workload()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_wire_codec_overhead_batched_lookups_and_streaming():
    """The perf-PR acceptance bar: on the block surfaces — batched
    adjacency lookups via ``match_many_blocks`` and a >= 100k-row cursor
    stream via ``fetch_block`` — the binary codec must beat JSON by
    >= 5x in steady state (symbol caches warm, interner deltas empty).
    The dict-materialized ratio (``to_bindings`` per page) rides along
    as an advisory line: there the Python dict building dominates both
    codecs, which is exactly why the bar sits on the block surface that
    samplers and embedding layers consume."""
    store = _wire_store()
    # One probe per brand/place/category: the sampler-shaped batched
    # adjacency workload.  Together the probes touch every triple once.
    patterns = (
        [(None, "brandIs", f"brand:{index}") for index in range(NUM_BRANDS)]
        + [(None, "placeOfOrigin", f"place:{index}") for index in range(23)]
        + [(None, "rdf:type", f"category:{index}") for index in range(111)])
    # The full-graph scan: one pattern, three variables, every triple a
    # row — a >= 100k-row stream (3 rows per product).
    stream_query = PatternQuery.from_patterns([("?p", "?r", "?t")])

    with KGServer(store, port=0).start() as server:
        with RemoteStore(server.url, codec="json") as json_store, \
                RemoteStore(server.url, codec="binary") as binary_store:
            assert binary_store.client.codec == "binary"

            def lookup_rows(remote):
                return sum(len(rows)
                           for rows in remote.match_many_blocks(patterns))

            # Warm both connections (binary: populates the symbol cache,
            # so the timed passes see empty interner deltas).
            expected_rows = lookup_rows(json_store)
            assert lookup_rows(binary_store) == expected_rows
            json_lookup, json_rows = _best_of(
                WIRE_REPEATS, lambda: lookup_rows(json_store))
            binary_lookup, binary_rows = _best_of(
                WIRE_REPEATS, lambda: lookup_rows(binary_store))
            assert json_rows == binary_rows == expected_rows

        def stream_rows(engine, materialize=False):
            cursor = engine.cursor(stream_query, page_size=WIRE_PAGE_SIZE)
            total = 0
            for _page in iter(lambda: cursor.fetch_block(), []):
                if materialize and isinstance(_page, DecodedBlock):
                    total += len(_page.to_bindings())
                else:
                    total += len(_page)
            cursor.close()
            return total

        with RemoteQueryEngine(server.url, codec="json") as json_engine, \
                RemoteQueryEngine(server.url, codec="binary") as binary_engine:
            expected_stream = stream_rows(json_engine)
            assert expected_stream >= 100_000
            assert stream_rows(binary_engine) == expected_stream
            json_stream, json_total = _best_of(
                WIRE_REPEATS, lambda: stream_rows(json_engine))
            binary_stream, binary_total = _best_of(
                WIRE_REPEATS, lambda: stream_rows(binary_engine))
            assert json_total == binary_total == expected_stream
            # Advisory: the same stream fully materialized to dicts.
            materialized_stream, _ = _best_of(
                1, lambda: stream_rows(binary_engine, materialize=True))

    lookup_speedup = json_lookup / binary_lookup
    stream_speedup = json_stream / binary_stream
    table = "\n".join([
        f"{'workload':<34} {'json':>9} {'binary':>9} {'speedup':>9}",
        f"{'batched adjacency lookups':<34} {json_lookup:>9.4f} "
        f"{binary_lookup:>9.4f} {lookup_speedup:>8.1f}x",
        f"{'cursor stream (' + str(expected_stream) + ' rows)':<34} "
        f"{json_stream:>9.4f} {binary_stream:>9.4f} {stream_speedup:>8.1f}x",
        f"{'  ... binary materialized to dicts':<34} {'':>9} "
        f"{materialized_stream:>9.4f} "
        f"{json_stream / materialized_stream:>8.1f}x (advisory)",
    ])
    print(f"\nwire codec overhead ({len(store)} triples, page "
          f"{WIRE_PAGE_SIZE}, best of {WIRE_REPEATS}, loopback)\n{table}")
    update_artifact("server", "wire_codec", {
        "workload": f"{len(patterns)} batched adjacency probes "
                    f"({expected_rows} rows/call) and a "
                    f"{expected_stream}-row cursor stream in "
                    f"{WIRE_PAGE_SIZE}-row pages, steady state, loopback",
        "backend": "columnar",
        "codec": "json vs binary (negotiated)",
        "timings_seconds": {
            "lookups_json": json_lookup,
            "lookups_binary": binary_lookup,
            "stream_json": json_stream,
            "stream_binary": binary_stream,
            "stream_binary_materialized": materialized_stream,
        },
        "speedups": {
            "batched_lookups": lookup_speedup,
            "cursor_stream": stream_speedup,
            "cursor_stream_materialized_advisory":
                json_stream / materialized_stream,
        },
        "bar": f"binary >= {CODEC_SPEEDUP_BAR}x json on both block surfaces",
    })
    assert lookup_speedup >= CODEC_SPEEDUP_BAR, (
        f"binary codec bar missed on batched lookups: "
        f"{lookup_speedup:.1f}x < {CODEC_SPEEDUP_BAR}x\n{table}")
    assert stream_speedup >= CODEC_SPEEDUP_BAR, (
        f"binary codec bar missed on cursor streaming: "
        f"{stream_speedup:.1f}x < {CODEC_SPEEDUP_BAR}x\n{table}")


# --------------------------------------------------------------------------- #
# idle connections: one I/O thread, however many sockets are open
# --------------------------------------------------------------------------- #
IDLE_CONNECTIONS = 64


def test_idle_connections_do_not_scale_server_threads():
    """The selector front-end holds every open socket on one I/O thread;
    only the fixed worker pool serves requests.  Opening 64 idle
    connections must not grow the process thread count beyond the pool
    size (the thread-per-connection front-end it replaced grew by one
    thread per socket)."""
    soft_limit = resource.getrlimit(resource.RLIMIT_NOFILE)[0]
    # Each client costs two fds (client + server end); leave headroom.
    connections = min(IDLE_CONNECTIONS, max(8, (soft_limit - 128) // 4))
    store = _store()
    with KGServer(store, port=0).start() as server:
        with RemoteClient(server.url) as probe:
            assert probe.ping()     # the pool has started serving
        baseline = threading.active_count()
        clients = [RemoteClient(server.url, codec="json")
                   for _ in range(connections)]
        try:
            # A few requests through open connections: still served.
            for client in clients[:3]:
                assert client.ping()
            assert server.connection_count >= connections
            after = threading.active_count()
        finally:
            for client in clients:
                client.close()
    growth = after - baseline
    report = (f"{connections} idle connections: {baseline} threads before, "
              f"{after} after (growth {growth}, worker pool "
              f"{DEFAULT_WORKERS})")
    print(f"\n{report}")
    update_artifact("server", "idle_connections", {
        "workload": f"{connections} idle loopback connections held open "
                    f"against a running server",
        "backend": "sharded-2",
        "codec": "json",
        "threads": {"before": baseline, "after": after, "growth": growth,
                    "worker_pool": DEFAULT_WORKERS},
        "bar": "thread growth bounded by the worker pool, not connections",
    })
    assert growth <= DEFAULT_WORKERS, (
        f"server threads scale with idle connections: {report}")
