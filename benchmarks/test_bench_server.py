"""Micro-benchmark — the network query protocol vs in-process access.

Two workloads over one synthetic product graph served by a
:class:`~repro.kg.server.KGServer` on loopback:

* **point lookups** — single `(head, relation, ?)` probes and the
  batched `match_many` form, in-process vs over the wire.  The table
  prices the protocol overhead per op (framing + JSON + loopback
  round-trip) and shows how batching amortizes it.
* **paged big-result query** — a whole-graph join streamed through a
  remote cursor page by page vs materialized in one response.

Acceptance bars (the assertion messages embed the timing/memory table,
so a CI failure report carries the numbers):

* remote results — point, batched, full and paged — are identical to
  in-process execution;
* the paged client's peak heap growth stays **bounded**: far below the
  resident size of the fully materialized result (the whole point of
  cursors — a million-row result must not need a million-row client).

Throughput lines are advisory: loopback latency on shared CI runners is
too noisy for a hard bar.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import List, Tuple

from repro.kg.client import RemoteQueryEngine, RemoteStore
from repro.kg.query import PatternQuery, QueryEngine
from repro.kg.server import KGServer
from repro.kg.sharded_backend import ShardedBackend
from repro.kg.store import TripleStore
from repro.kg.triple import triples_from_tuples

NUM_PRODUCTS = 4000
NUM_BRANDS = 16
NUM_LOOKUPS = 400
PAGE_SIZE = 256


def _workload_rows() -> List[Tuple[str, str, str]]:
    rows: List[Tuple[str, str, str]] = []
    for index in range(NUM_PRODUCTS):
        product = f"product:{index:06d}"
        rows.append((product, "brandIs", f"brand:{index % NUM_BRANDS}"))
        rows.append((product, "placeOfOrigin", f"place:{index % 23}"))
        rows.append((product, "rdf:type", f"category:{index % 111}"))
    for brand in range(NUM_BRANDS):
        rows.append((f"brand:{brand}", "headquartersIn",
                     f"country:{brand % 4}"))
    return rows


def _store() -> TripleStore:
    return TripleStore(triples_from_tuples(_workload_rows()),
                       backend=ShardedBackend(n_shards=2))


def test_remote_point_lookup_overhead():
    store = _store()
    patterns = [(f"product:{index % NUM_PRODUCTS:06d}", "brandIs", None)
                for index in range(NUM_LOOKUPS)]
    local = store.match_many(patterns)
    table = [f"{'path':<26} {'seconds':>9} {'ops/s':>10}"]

    def timed(label, workload):
        start = time.perf_counter()
        result = workload()
        elapsed = time.perf_counter() - start
        table.append(f"{label:<26} {elapsed:>9.4f} "
                     f"{NUM_LOOKUPS / elapsed:>10.0f}")
        return result

    in_process_single = timed(
        "in-process match x1", lambda: [store.match(*p) for p in patterns])
    in_process_batch = timed(
        "in-process match_many", lambda: store.match_many(patterns))
    with KGServer(store, port=0).start() as server:
        with RemoteStore(server.url) as remote:
            remote_single = timed(
                "remote match x1", lambda: [remote.match(*p)
                                            for p in patterns])
            remote_batch = timed(
                "remote match_many", lambda: remote.match_many(patterns))
    report = "\n".join(table)
    print(f"\npoint lookups ({NUM_LOOKUPS} probes, {len(store)} triples, "
          f"loopback)\n{report}")
    for label, result in (("in-process single", in_process_single),
                          ("in-process batch", in_process_batch),
                          ("remote single", remote_single),
                          ("remote batch", remote_batch)):
        assert result == local, f"{label} lookup results diverge\n{report}"


def test_remote_paged_big_result_stays_memory_bounded():
    store = _store()
    # The whole-graph join: every product with its brand's country.
    query = PatternQuery.from_patterns(
        [("?p", "brandIs", "?b"), ("?b", "headquartersIn", "?c")])
    local = QueryEngine(store).execute(query)
    assert len(local) == NUM_PRODUCTS

    with KGServer(store, port=0).start() as server:
        with RemoteQueryEngine(server.url) as engine:
            # Full materialization: one response frame, whole list held.
            tracemalloc.start()
            start = time.perf_counter()
            full = engine.execute(query)
            full_seconds = time.perf_counter() - start
            full_peak = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
            assert full == local

            # Paged: only one page of bindings alive at a time.
            def paged_checksum() -> Tuple[int, int]:
                rows = 0
                checksum = 0
                cursor = engine.cursor(query, page_size=PAGE_SIZE)
                for row in cursor:
                    rows += 1
                    checksum ^= hash(row["?p"]) ^ hash(row["?c"])
                cursor.close()
                return rows, checksum

            tracemalloc.start()
            start = time.perf_counter()
            paged_rows, paged_checksum_value = paged_checksum()
            paged_seconds = time.perf_counter() - start
            paged_peak = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()

    expected_checksum = 0
    for row in local:
        expected_checksum ^= hash(row["?p"]) ^ hash(row["?c"])
    report = "\n".join([
        f"{'path':<22} {'seconds':>9} {'peak heap':>12} {'rows':>7}",
        f"{'remote full':<22} {full_seconds:>9.4f} {full_peak:>12,} "
        f"{len(full):>7}",
        f"{'remote paged(' + str(PAGE_SIZE) + ')':<22} {paged_seconds:>9.4f} "
        f"{paged_peak:>12,} {paged_rows:>7}",
    ])
    print(f"\npaged big-result query ({len(local)} rows, loopback)\n{report}")
    assert paged_rows == len(local), f"paged row count diverges\n{report}"
    assert paged_checksum_value == expected_checksum, \
        f"paged rows diverge from local execution\n{report}"
    # The acceptance bar: streaming must keep client memory bounded —
    # the paged pass may not come anywhere near holding the full result.
    assert paged_peak < full_peak / 2, (
        f"paged client peak {paged_peak:,}B is not bounded vs full "
        f"materialization {full_peak:,}B\n{report}")
