"""Shared fixtures for the benchmark harness.

Every table and figure of the paper has one bench module.  They share a
single synthetic OpenBG build (bigger than the unit-test one), the
benchmark suite sampled from it, and the trained backbones used by the
downstream-task benches, so the expensive setup happens once per session.
"""

from __future__ import annotations

import pytest

from repro.benchmark.builders import BenchmarkBuilder
from repro.construction.pipeline import OpenBGBuilder
from repro.datagen.catalog import SyntheticCatalogConfig
from repro.pretrain.mplug import MPlugConfig
from repro.pretrain.pretrainer import Pretrainer, PretrainingConfig
from repro.tasks.encoders import BackboneSpec, build_backbone

#: Scale of the benchmark-harness OpenBG (larger than the unit-test build).
BENCH_CONFIG = SyntheticCatalogConfig(num_products=300, items_per_product=2,
                                      reviews_per_item=2, image_fraction=0.55,
                                      seed=13)

#: Pre-training steps used for the "pretrained" backbones in the benches.
PRETRAIN_STEPS = 30


@pytest.fixture(scope="session")
def construction_result():
    """The constructed synthetic OpenBG used by every bench."""
    return OpenBGBuilder(BENCH_CONFIG, seed=13).build()


@pytest.fixture(scope="session")
def graph(construction_result):
    """The populated knowledge graph."""
    return construction_result.graph


@pytest.fixture(scope="session")
def catalog(construction_result):
    """The synthetic catalog behind the graph."""
    return construction_result.catalog


@pytest.fixture(scope="session")
def benchmark_suite(graph):
    """The OpenBG-IMG / OpenBG500 / OpenBG500-L analogues."""
    return BenchmarkBuilder(graph, seed=13).build_suite()


def _pretrained_backbone(catalog, graph, name: str, use_kg: bool, size: str):
    spec = BackboneSpec(name, pretrained=True, use_kg=use_kg, size=size,
                        pretrain_steps=PRETRAIN_STEPS, seed=13)
    model_config = spec.model_config(vocab_size=1, image_dim=catalog.config.image_dim)
    pretrainer = Pretrainer(
        catalog, graph, model_config=model_config,
        config=PretrainingConfig(steps=PRETRAIN_STEPS, use_kg=use_kg, seed=13,
                                 max_examples=180, batch_size=8))
    pretrainer.pretrain()
    return build_backbone(spec, catalog, graph, pretrainer=pretrainer)


@pytest.fixture(scope="session")
def backbone_baseline(catalog, graph):
    """General-domain baseline (RoBERTa/BERT/mT5/UIE stand-in): no KG, no pre-training."""
    return build_backbone(BackboneSpec("RoBERTa-large", pretrained=False,
                                       use_kg=False, size="large", seed=13),
                          catalog, graph)


@pytest.fixture(scope="session")
def backbone_mplug_base(catalog, graph):
    """mPLUG-base: pre-trained on the e-commerce corpus, no KG enhancement."""
    return _pretrained_backbone(catalog, graph, "mPLUG-base", use_kg=False, size="base")


@pytest.fixture(scope="session")
def backbone_mplug_base_kg(catalog, graph):
    """mPLUG-base+KG: pre-trained with KG triples as unified text tokens."""
    return _pretrained_backbone(catalog, graph, "mPLUG-base+KG", use_kg=True, size="base")


@pytest.fixture(scope="session")
def backbone_mplug_large_kg(catalog, graph):
    """mPLUG-large+KG: the wider/deeper KG-enhanced model."""
    return _pretrained_backbone(catalog, graph, "mPLUG-large+KG", use_kg=True, size="large")
