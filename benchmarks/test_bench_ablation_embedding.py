"""Ablation — embedding dimension and negative-sampling count for TransE.

The paper's baseline settings sweep embedding dimension and batch/negative
configurations; this ablation reproduces the two most informative axes on
the OpenBG500 analogue: MRR as a function of the embedding dimension, and
MRR as a function of the number of negatives per positive.
"""

from __future__ import annotations

from repro.embedding import KGETrainer, LinkPredictionEvaluator, TrainingConfig, TransE


def _train_transe(dataset, dim: int, num_negatives: int, epochs: int = 15,
                  seed: int = 13):
    encoded = dataset.encoded_splits()
    model = TransE(len(dataset.entity_vocab), len(dataset.relation_vocab),
                   dim=dim, seed=seed)
    config = TrainingConfig(epochs=epochs, batch_size=256, learning_rate=0.08,
                            num_negatives=num_negatives, seed=seed)
    KGETrainer(model, config).fit(encoded["train"])
    evaluator = LinkPredictionEvaluator(encoded["train"], encoded["dev"], encoded["test"])
    return evaluator.evaluate(model, encoded["test"])


def test_bench_ablation_embedding_dimension(benchmark, benchmark_suite):
    dataset = benchmark_suite["OpenBG500"]
    dims = [8, 32, 64]

    def run():
        return {dim: _train_transe(dataset, dim=dim, num_negatives=1) for dim in dims}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation — TransE embedding dimension (OpenBG500 analogue):")
    for dim, metrics in results.items():
        print(f"  dim={dim:<4} MRR={metrics.mean_reciprocal_rank:.3f} "
              f"Hits@10={metrics.hits_at_10:.3f} MR={metrics.mean_rank:.1f}")

    # A reasonable dimension beats a severely under-parameterized one.
    assert max(results[32].mean_reciprocal_rank, results[64].mean_reciprocal_rank) \
        >= results[8].mean_reciprocal_rank * 0.9
    for metrics in results.values():
        assert metrics.num_queries > 0


def test_bench_ablation_negative_samples(benchmark, benchmark_suite):
    dataset = benchmark_suite["OpenBG500"]
    counts = [1, 4]

    def run():
        return {count: _train_transe(dataset, dim=32, num_negatives=count)
                for count in counts}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation — negatives per positive (TransE, OpenBG500 analogue):")
    for count, metrics in results.items():
        print(f"  negatives={count:<3} MRR={metrics.mean_reciprocal_rank:.3f} "
              f"Hits@10={metrics.hits_at_10:.3f}")

    # Both settings train successfully; more negatives never collapses MRR.
    assert results[4].mean_reciprocal_rank > 0.0
    assert results[4].mean_reciprocal_rank >= results[1].mean_reciprocal_rank * 0.5
