"""Micro-benchmark — the hot-query result cache under Zipfian traffic.

The workload mirrors the paper's serving shape: a catalog of distinct
join queries (brand x category shopping-guide probes) hammered by a
Zipf(s~=1.1) trace — a few queries absorb most of the traffic, exactly
what the dispatcher-side result cache exists for.

* **in-process** — the same seeded trace replayed through twin
  ``QueryService`` instances, cache enabled vs disabled, driven through
  ``execute_batch`` so dispatch overhead amortizes identically on both
  sides and the ratio prices execution vs cache serving, not thread
  wakeups.
* **over the wire** — a slice of the trace through real loopback
  servers on both codecs, cache on vs off (advisory: loopback latency
  on shared runners is too noisy for a hard bar).

Acceptance bars (assert messages embed the timing table):

* hit rate **>= 0.9** on the Zipfian trace (>= 2k distinct queries over
  >= 50k requests — misses are bounded by the catalog size, so a
  correct cache cannot miss this bar);
* the cached in-process run is **>= 5x** faster per request than the
  cache-disabled twin.

Results persist into ``BENCH_cache.json`` at the repo root.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

from _artifacts import update_artifact
from _zipf import zipf_trace
from repro.kg.client import RemoteQueryEngine
from repro.kg.planner import PatternQuery
from repro.kg.server import KGServer
from repro.kg.service import QueryService
from repro.kg.store import TripleStore
from repro.kg.triple import triples_from_tuples

#: >= 2k distinct queries over >= 50k requests, per the acceptance bar.
NUM_BRANDS = 16
NUM_CATEGORIES = 128
CATALOG_SIZE = NUM_BRANDS * NUM_CATEGORIES          # 2048 distinct queries
NUM_REQUESTS = 50_000
ZIPF_S = 1.1
TRACE_SEED = 20260808
#: Products per (brand, category) combo; every combo is non-empty.
COMBO_PRODUCTS = 40
NUM_PRODUCTS = CATALOG_SIZE * COMBO_PRODUCTS        # 81920
#: The trace is replayed in client-side batches so both runs amortize
#: dispatch overhead the same way (the service coalesces them anyway).
CHUNK = 256
#: The cache-disabled twin replays a slice this long (same trace prefix)
#: and is compared per-request — replaying all 50k uncached would just
#: burn CI minutes measuring the same mean.
COLD_SLICE = 4096
WIRE_SLICE = 4096

HIT_RATE_BAR = 0.9
SPEEDUP_BAR = 5.0


def _catalog_store() -> TripleStore:
    rows: List[Tuple[str, str, str]] = []
    for index in range(NUM_PRODUCTS):
        product = f"product:{index:06d}"
        rows.append((product, "brandIs", f"brand:{index % NUM_BRANDS}"))
        rows.append((product, "rdf:type",
                     f"category:{(index // NUM_BRANDS) % NUM_CATEGORIES}"))
    return TripleStore(triples_from_tuples(rows))


def _query_catalog() -> List[PatternQuery]:
    """One 2-pattern join per (brand, category) combo, hottest first.

    ``select`` forces the deduplicated projection, ``limit`` keeps the
    per-request page small — the shopping-guide shape: "top products of
    this brand in this category"."""
    catalog = []
    for brand in range(NUM_BRANDS):
        for category in range(NUM_CATEGORIES):
            catalog.append(PatternQuery.from_patterns(
                [("?p", "brandIs", f"brand:{brand}"),
                 ("?p", "rdf:type", f"category:{category}")],
                select=("?p",), limit=10))
    return catalog


def _replay(service: QueryService, catalog: Sequence[PatternQuery],
            trace) -> float:
    """Replay a trace through the service in CHUNK-sized client batches;
    returns elapsed seconds."""
    start = time.perf_counter()
    for offset in range(0, len(trace), CHUNK):
        chunk = trace[offset:offset + CHUNK]
        service.execute_batch([catalog[rank] for rank in chunk])
    return time.perf_counter() - start


def test_zipf_traffic_hot_path_speedup_and_hit_rate():
    catalog = _query_catalog()
    trace = zipf_trace(NUM_REQUESTS, CATALOG_SIZE, s=ZIPF_S, seed=TRACE_SEED)
    assert len(catalog) == CATALOG_SIZE >= 2000
    assert len(trace) == NUM_REQUESTS >= 50_000

    # Both services read the same store: traffic is read-only here, and
    # the replays run sequentially, so sharing skips a second multi-
    # minute bulk load without the twins observing different data.
    store = _catalog_store()
    cached = QueryService(store)
    plain = QueryService(store, cache_bytes=0)
    try:
        # Sanity on a prefix: cached results must equal uncached ones
        # (the full bit-identity property lives in the test suite).
        for rank in trace[:32]:
            assert cached.execute(catalog[rank]) == plain.execute(catalog[rank])
        cold_seconds = _replay(plain, catalog, trace[:COLD_SLICE])
        hot_seconds = _replay(cached, catalog, trace)
        stats = cached.stats
    finally:
        cached.close()
        plain.close()

    hits, misses = stats["cache_hits"], stats["cache_misses"]
    hit_rate = hits / (hits + misses)
    cold_per_request = cold_seconds / COLD_SLICE
    hot_per_request = hot_seconds / NUM_REQUESTS
    speedup = cold_per_request / hot_per_request
    table = "\n".join([
        f"{'path':<26} {'requests':>9} {'seconds':>9} {'us/req':>8} "
        f"{'req/s':>10}",
        f"{'cache disabled':<26} {COLD_SLICE:>9} {cold_seconds:>9.3f} "
        f"{cold_per_request * 1e6:>8.1f} {COLD_SLICE / cold_seconds:>10.0f}",
        f"{'cache enabled':<26} {NUM_REQUESTS:>9} {hot_seconds:>9.3f} "
        f"{hot_per_request * 1e6:>8.1f} {NUM_REQUESTS / hot_seconds:>10.0f}",
        f"hit rate {hit_rate:.4f} ({hits} hits / {misses} misses, "
        f"{stats['cache_entries']} entries, {stats['cache_bytes']:,}B, "
        f"{stats['cache_evictions']} evictions)",
        f"speedup {speedup:.1f}x (bar {SPEEDUP_BAR}x)",
    ])
    print(f"\nZipf(s={ZIPF_S}) traffic: {NUM_REQUESTS} requests over "
          f"{CATALOG_SIZE} distinct join queries, {NUM_PRODUCTS * 2} "
          f"triples, in-process\n{table}")
    update_artifact("cache", "zipf_in_process", {
        "workload": f"Zipf(s={ZIPF_S}) trace of {NUM_REQUESTS} requests "
                    f"over {CATALOG_SIZE} distinct 2-pattern join queries "
                    f"({NUM_PRODUCTS * 2} triples, seed {TRACE_SEED})",
        "backend": "columnar",
        "timings_seconds": {"cache_disabled_slice": cold_seconds,
                            "cache_enabled_full": hot_seconds},
        "per_request_seconds": {"cache_disabled": cold_per_request,
                                "cache_enabled": hot_per_request},
        "hit_rate": hit_rate,
        "cache_stats": {key: stats[key] for key in
                        ("cache_hits", "cache_misses", "cache_entries",
                         "cache_bytes", "cache_evictions",
                         "cache_invalidations")},
        "speedups": {"hot_path": speedup},
        "bar": f"hit rate >= {HIT_RATE_BAR}, hot-path speedup >= "
               f"{SPEEDUP_BAR}x",
    })
    assert hit_rate >= HIT_RATE_BAR, (
        f"Zipfian hit rate bar missed: {hit_rate:.4f} < {HIT_RATE_BAR}\n"
        f"{table}")
    assert speedup >= SPEEDUP_BAR, (
        f"hot-path speedup bar missed: {speedup:.1f}x < {SPEEDUP_BAR}x\n"
        f"{table}")


def test_zipf_traffic_over_the_wire_both_codecs():
    """The same trace through real loopback servers, cache on vs off,
    on both codecs.  Advisory: the numbers land in the table and the
    artifact, but loopback latency on shared CI runners is too noisy
    for a hard bar — the asserted bar lives on the in-process path."""
    catalog = _query_catalog()
    trace = zipf_trace(NUM_REQUESTS, CATALOG_SIZE, s=ZIPF_S,
                       seed=TRACE_SEED)[:WIRE_SLICE]

    def replay_remote(engine: RemoteQueryEngine) -> float:
        start = time.perf_counter()
        for offset in range(0, len(trace), CHUNK):
            chunk = trace[offset:offset + CHUNK]
            engine.execute_many([catalog[rank] for rank in chunk])
        return time.perf_counter() - start

    timings = {}
    hit_rates = {}
    store = _catalog_store()
    for client_codec in ("json", "binary"):
        for label, cache_bytes in (("cache_on", None), ("cache_off", 0)):
            kwargs = {} if cache_bytes is None else {"cache_bytes": 0}
            # Servers run one after another over the same read-only
            # store; each owns a fresh service (and a fresh cache).
            with KGServer(store, port=0, **kwargs).start() \
                    as server:
                with RemoteQueryEngine(server.url,
                                       codec=client_codec) as engine:
                    seconds = replay_remote(engine)
                stats = server.service.stats
            timings[f"{client_codec}_{label}"] = seconds
            if label == "cache_on":
                served = stats["cache_hits"] + stats["cache_misses"]
                hit_rates[client_codec] = (stats["cache_hits"] / served
                                           if served else 0.0)

    lines = [f"{'codec':<8} {'cache off':>10} {'cache on':>10} "
             f"{'speedup':>9} {'hit rate':>9}"]
    speedups = {}
    for client_codec in ("json", "binary"):
        off = timings[f"{client_codec}_cache_off"]
        on = timings[f"{client_codec}_cache_on"]
        speedups[client_codec] = off / on
        lines.append(f"{client_codec:<8} {off:>10.3f} {on:>10.3f} "
                     f"{off / on:>8.1f}x {hit_rates[client_codec]:>9.4f}")
    table = "\n".join(lines)
    print(f"\nZipf traffic over the wire ({WIRE_SLICE} requests, chunked "
          f"x{CHUNK}, loopback, advisory)\n{table}")
    update_artifact("cache", "zipf_over_the_wire", {
        "workload": f"first {WIRE_SLICE} requests of the Zipf(s={ZIPF_S}) "
                    f"trace in {CHUNK}-query batched calls, loopback",
        "backend": "columnar",
        "codec": "json and binary (negotiated)",
        "timings_seconds": timings,
        "hit_rates": hit_rates,
        "speedups_advisory": speedups,
        "bar": "advisory (wire noise); the asserted bar is in-process",
    })
    # Functional floor, not a perf bar: the cache must actually have
    # absorbed the bulk of the hot traffic on both codecs.  The floor
    # is looser than the in-process bar because this slice is only
    # WIRE_SLICE requests — the catalog's cold tail is a much larger
    # share of a short trace (the 0.9 bar is asserted on the full 50k
    # trace by the in-process test above).
    for client_codec, rate in hit_rates.items():
        assert rate >= 0.5, (
            f"wire traffic was not absorbed on {client_codec}: hit rate "
            f"{rate:.4f} < 0.5\n{table}")
