"""Figure 7 — intelligent shopping guide cases on the online system.

The figure shows the "Taobao Foodies" channel where items carry KG-derived
slogans and tips ("delicious soup and taste", "convenient and suitable for
summer").  The bench renders the same kind of enriched item cards from the
synthetic catalog and checks every card carries a slogan and concept tags.
"""

from __future__ import annotations

from repro.applications import ShoppingGuideSimulator


def test_bench_fig7_online_cases(benchmark, catalog, graph):
    simulator = ShoppingGuideSimulator(catalog, graph, seed=13)

    rows = benchmark.pedantic(lambda: simulator.showcase(num_items=8),
                              rounds=1, iterations=1)

    print('\nFigure 7 — "Meals without Cooking" style module (synthetic):')
    for row in rows:
        print(f"  item:   {row['item']}")
        print(f"  slogan: {row['slogan']}")
        print(f"  tags:   {row['tags']}")
        print("  " + "-" * 60)

    assert len(rows) == 8
    for row in rows:
        assert row["item"], "every card shows an item title"
        assert row["slogan"], "every KG-enriched card carries a slogan"

    # Most cards expose at least one concept tag derived from the KG links.
    tagged = sum(1 for row in rows if row["tags"])
    assert tagged >= len(rows) // 2

    # The enriched cards differ from the plain (no-KG) cards.
    plain = simulator.build_cards(use_kg=False, max_items=8)
    assert all(card.slogan is None for card in plain)
