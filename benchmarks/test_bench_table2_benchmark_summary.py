"""Table II — summary statistics of the OpenBG benchmark datasets.

Regenerates the Table II rows (# Ent, # Rel, # Train, # Dev, # Test, and the
multimodal-entity count for OpenBG-IMG) for the scaled-down benchmark suite,
and checks the orderings the paper's table exhibits.
"""

from __future__ import annotations

from repro.benchmark.builders import BenchmarkBuilder


def test_bench_table2_benchmark_summary(benchmark, graph):
    suite = benchmark.pedantic(lambda: BenchmarkBuilder(graph, seed=13).build_suite(),
                               rounds=1, iterations=1)

    header = ["Dataset", "# Ent", "# Rel", "# Train", "# Dev", "# Test"]
    print("\n" + " | ".join(f"{cell:>14}" for cell in header))
    for summary in suite.summaries():
        print(" | ".join(f"{cell:>14}" for cell in summary.as_row()))

    img = suite["OpenBG-IMG"]
    five_hundred = suite["OpenBG500"]
    large = suite["OpenBG500-L"]

    # Orderings from Table II: IMG is smallest, 500-L is largest; IMG has the
    # fewest relations and is the only multimodal dataset.
    assert len(img.train) < len(five_hundred.train) < len(large.train)
    assert len(img.entity_vocab) < len(large.entity_vocab)
    assert len(img.relation_vocab) <= len(five_hundred.relation_vocab)
    assert img.is_multimodal
    assert not five_hundred.is_multimodal
    assert not large.is_multimodal

    # Every dataset has non-empty dev/test splits for evaluation.
    for dataset in (img, five_hundred, large):
        assert dataset.dev and dataset.test
