"""Micro-benchmark — the WAL write path: ack cost, replay, compaction.

Three workloads over a live store directory:

* **acked-write throughput** — batches acked through the full
  log-then-apply path, fsync on vs off.  The gap prices the durability
  guarantee itself (an ack means the bytes reached the platter, or at
  least the kernel's best story about one).
* **replay time** — ``TripleStore.open`` on a live directory whose WAL
  holds 100k batches.  Replay coalesces maximal same-op runs into bulk
  backend loads, so this is one vectorized pass, not 100k round-trips.
* **recovery after compaction** — the same content reopened after
  ``compact()`` folded the log into a fresh snapshot: open time drops
  to snapshot-mmap cost because the WAL is empty again.

Acceptance bars:

* recovered content is identical before and after every reopen (a bench
  that loses rows is measuring the wrong thing);
* compaction makes reopen strictly cheaper than replaying the 100k-batch
  log (the reason ``repro compact`` exists).

Throughput numbers are advisory — fsync cost is hardware truth, not a
CI bar.  Results persist into ``BENCH_wal.json`` via :mod:`_artifacts`.
"""

from __future__ import annotations

import time
from pathlib import Path

from _artifacts import update_artifact
from repro.kg.store import TripleStore
from repro.kg.triple import Triple

WRITE_BATCHES = 400
BATCH_SIZE = 16
REPLAY_BATCHES = 100_000


def _batch(index: int, size: int = BATCH_SIZE):
    return [Triple(f"entity:{index}:{slot}", "observedWith",
                   f"sensor:{index % 64}") for slot in range(size)]


def _timed_writes(directory: Path, *, fsync: bool) -> dict:
    store = TripleStore.create_live(directory, wal_fsync=fsync)
    start = time.perf_counter()
    for index in range(WRITE_BATCHES):
        store.add_many(_batch(index))
    elapsed = time.perf_counter() - start
    count = len(store)
    store.close()
    return {
        "batches": WRITE_BATCHES,
        "batch_size": BATCH_SIZE,
        "seconds": round(elapsed, 4),
        "acked_batches_per_s": round(WRITE_BATCHES / elapsed, 1),
        "triples_per_s": round(count / elapsed, 1),
    }


def test_acked_write_throughput(tmp_path):
    durable = _timed_writes(tmp_path / "fsync-on", fsync=True)
    buffered = _timed_writes(tmp_path / "fsync-off", fsync=False)
    for directory, flavor in ((tmp_path / "fsync-on", durable),
                              (tmp_path / "fsync-off", buffered)):
        reopened = TripleStore.open(directory)
        assert len(reopened) == WRITE_BATCHES * BATCH_SIZE, flavor
        reopened.close()
    update_artifact("wal", "acked_write_throughput", {
        "fsync_on": durable,
        "fsync_off": buffered,
        "fsync_cost_x": round(durable["seconds"] / buffered["seconds"], 2),
    })


def test_replay_and_recovery_after_compaction(tmp_path):
    directory = tmp_path / "live"
    store = TripleStore.create_live(directory, wal_fsync=False)
    build_start = time.perf_counter()
    for index in range(REPLAY_BATCHES):
        store.add(Triple(f"entity:{index % 20_000}", "observedWith",
                         f"sensor:{index % 64}"))
    build_seconds = time.perf_counter() - build_start
    expected = len(store)
    store.close()

    replay_start = time.perf_counter()
    replayed = TripleStore.open(directory, wal_fsync=False)
    replay_seconds = time.perf_counter() - replay_start
    assert len(replayed) == expected
    assert replayed.wal.next_seq == REPLAY_BATCHES + 1

    compact_start = time.perf_counter()
    replayed.compact()
    compact_seconds = time.perf_counter() - compact_start
    replayed.close()

    reopen_start = time.perf_counter()
    compacted = TripleStore.open(directory)
    reopen_seconds = time.perf_counter() - reopen_start
    assert len(compacted) == expected
    assert compacted.live_generation == 1
    assert compacted.wal.next_seq == 1  # the log was folded away
    compacted.close()

    table = {
        "wal_batches": REPLAY_BATCHES,
        "triples": expected,
        "log_build_s": round(build_seconds, 3),
        "replay_open_s": round(replay_seconds, 3),
        "replay_batches_per_s": round(REPLAY_BATCHES / replay_seconds, 1),
        "compact_s": round(compact_seconds, 3),
        "reopen_after_compact_s": round(reopen_seconds, 3),
        "compaction_open_speedup_x": round(
            replay_seconds / max(reopen_seconds, 1e-9), 2),
    }
    update_artifact("wal", "replay_and_compaction", table)
    assert reopen_seconds < replay_seconds, (
        f"compaction must make reopen cheaper than a 100k-batch replay:\n"
        f"{table}")
