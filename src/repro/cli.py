"""Command-line interface for the OpenBG reproduction.

Seven subcommands cover the everyday workflows::

    python -m repro.cli --products 300 build      --out ./openbg_out
    python -m repro.cli --products 300 stats
    python -m repro.cli --products 300 benchmark  --out ./openbg_out
    python -m repro.cli --products 300 linkpred   --model TransE --epochs 25
    python -m repro.cli serve --store-dir ./store --port 7468
    python -m repro.cli shard-split --store-dir ./store --shards 4 --out ./cl
    python -m repro.cli serve --store-dir ./cl/shard-0 --shard-of 0/4
    python -m repro.cli serve --store-dir ./shard-0-copy --shard-of 0/4 \\
        --follow 127.0.0.1:7469
    python -m repro.cli cluster --store-dir ./cl \\
        --shards 127.0.0.1:7469,127.0.0.1:7470 --replica 0=127.0.0.1:7480
    python -m repro.cli query --store-dir ./store \\
        --pattern "?p brandIs brand:0" --pattern "?p placeOfOrigin ?where" \\
        --select ?p ?where
    python -m repro.cli query --url 127.0.0.1:7468 --pattern "?p brandIs ?b"
    python -m repro.cli compact --store-dir ./live-store

``build`` constructs the synthetic OpenBG and writes it as TSV triples,
``stats`` prints the Table-I style statistics, ``benchmark`` samples and
saves the OpenBG-IMG / 500 / 500-L analogues, ``linkpred`` trains one
embedding model on the OpenBG500 analogue and prints its filtered
metrics, ``serve`` opens a saved store directory and serves the network
query protocol on a TCP port (``--shard-of K/N`` labels it one shard of
a cluster; ``--follow HOST:PORT`` makes it a read-only replica replaying
that leader's WAL), ``shard-split`` cuts a saved store into N per-shard
live store directories routed by the hash partitioner, ``cluster``
serves a coordinator that fans queries out to running shard servers
(reads round-robin leader+replicas with failover, writes go to
leaders), ``query`` evaluates a conjunctive
triple-pattern query — against a local store directory (``--store-dir``,
mmap or sharded layout, no rebuild) or a running server (``--url``,
results streamed in pages through a server-side cursor) — printing
bindings as TSV, and ``compact`` folds a live store's write-ahead log
into a fresh snapshot generation (and truncates the log).
"""

from __future__ import annotations

import argparse
import math
from pathlib import Path
from typing import Optional, Sequence

from repro.benchmark.builders import BenchmarkBuilder
from repro.construction.pipeline import ConstructionResult, OpenBGBuilder
from repro.datagen.catalog import SyntheticCatalogConfig
from repro.embedding import (
    ComplEx,
    DistMult,
    KGETrainer,
    LinkPredictionEvaluator,
    TrainingConfig,
    TransD,
    TransE,
    TransH,
    TuckER,
)
from repro.embedding.evaluation import format_results_table
from repro.kg.backend import BACKENDS, DEFAULT_BACKEND
from repro.kg.serialization import write_tsv
from repro.kg.sharded_backend import DEFAULT_SHARDS, ShardedBackend

MODEL_REGISTRY = {
    "TransE": TransE,
    "TransH": TransH,
    "TransD": TransD,
    "DistMult": DistMult,
    "ComplEx": ComplEx,
    "TuckER": TuckER,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(prog="repro",
                                     description="OpenBG reproduction toolkit")
    parser.add_argument("--products", type=int, default=300,
                        help="number of synthetic products to generate")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--backend", choices=sorted(BACKENDS), default=DEFAULT_BACKEND,
                        help="triple-store backend (columnar: interned-id numpy "
                             "arrays; mmap: on-disk memory-mapped columns; "
                             "sharded: hash-partitioned columnar shards with "
                             "parallel bulk loads and saves; "
                             "set: the reference dict-of-set store)")
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                        help="shard count for --backend sharded "
                             f"(default {DEFAULT_SHARDS}; ignored otherwise)")
    parser.add_argument("--store-dir", type=Path, default=None,
                        help="persist the built triple store to this directory as "
                             "memory-mapped column files (sharded builds write a "
                             "sharded layout; reopen with TripleStore.open)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build", help="construct the synthetic OpenBG")
    build.add_argument("--out", type=Path, default=None,
                       help="directory to write openbg.tsv into")

    subparsers.add_parser("stats", help="print Table-I style statistics")

    benchmark = subparsers.add_parser("benchmark",
                                      help="sample the benchmark suite (Table II)")
    benchmark.add_argument("--out", type=Path, default=None,
                           help="directory to write the benchmark TSV splits into")

    linkpred = subparsers.add_parser("linkpred",
                                     help="train one embedding model on OpenBG500")
    linkpred.add_argument("--model", choices=sorted(MODEL_REGISTRY), default="TransE")
    linkpred.add_argument("--epochs", type=int, default=25)
    linkpred.add_argument("--dim", type=int, default=32)
    linkpred.add_argument("--learning-rate", type=float, default=0.08)

    serve = subparsers.add_parser(
        "serve",
        help="serve a saved store directory over the TCP query protocol")
    serve.add_argument("--store-dir", type=Path, dest="store_dir",
                       default=argparse.SUPPRESS,
                       help="store directory written by build --store-dir or "
                            "TripleStore.save (mmap or sharded layout; "
                            "auto-detected)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to bind (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port to bind (default 7468; 0 picks an "
                            "ephemeral port, printed on startup)")
    serve.add_argument("--max-batch", type=int, default=256,
                       help="max requests one service dispatch round "
                            "coalesces (default 256)")
    serve.add_argument("--cursor-ttl", type=float, default=300.0,
                       help="seconds an idle server-side cursor survives "
                            "before eviction (default 300)")
    serve.add_argument("--cache-mb", type=float, default=64.0,
                       help="byte budget of the hot-query result cache in "
                            "MiB (default 64; entries are invalidated on "
                            "every write and LRU-evicted under the budget)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely (every "
                            "query re-executes)")
    serve.add_argument("--codec", choices=("auto", "json"), default="auto",
                       help="wire codec policy: auto grants per-connection "
                            "binary negotiation (id blocks + interner "
                            "deltas) when the backend supports it; json "
                            "pins every connection to the JSON codec "
                            "(default auto)")
    serve.add_argument("--shard-of", default=None, metavar="K/N",
                       help="label this server shard K of an N-shard "
                            "cluster (advertised through the role op and "
                            "sanity-checked by coordinators)")
    serve.add_argument("--follow", default=None, metavar="HOST:PORT",
                       help="run as a read-only replica of the given "
                            "leader, continuously replaying its WAL via "
                            "the wal_tail op; a missing or empty "
                            "--store-dir is bootstrapped from the leader "
                            "over the wire (snapshot_ship) before serving")
    serve.add_argument("--follow-poll-interval", type=float, default=0.05,
                       help="seconds a replica sleeps between wal_tail "
                            "polls of its leader (default 0.05; must be "
                            "a finite positive number)")

    split = subparsers.add_parser(
        "shard-split",
        help="split a saved store into N per-shard live store "
             "directories (plus coordinator metadata)")
    split.add_argument("--store-dir", type=Path, dest="store_dir",
                       default=argparse.SUPPRESS,
                       help="source store directory (mmap or sharded "
                            "layout, or a live store)")
    split.add_argument("--shards", type=int, default=argparse.SUPPRESS,
                       help="number of shard directories to produce "
                            f"(default {DEFAULT_SHARDS})")
    split.add_argument("--out", type=Path, required=True,
                       help="output directory: gains shard-0/..shard-N-1/ "
                            "live stores plus cluster.json and the global "
                            "interner tables for the coordinator")

    cluster = subparsers.add_parser(
        "cluster",
        help="serve a coordinator that fans queries out to running "
             "shard servers")
    cluster.add_argument("--store-dir", type=Path, dest="store_dir",
                         default=argparse.SUPPRESS,
                         help="shard-split output directory; the "
                              "coordinator loads its global interner "
                              "tables (and the expected shard count) "
                              "from it")
    cluster.add_argument("--shards", dest="shard_urls", required=True,
                         metavar="HOST:PORT,...",
                         help="comma-separated leader address of every "
                              "shard, in shard order")
    cluster.add_argument("--replica", action="append", default=[],
                         metavar="K=HOST:PORT",
                         help="register a replica for shard K (repeat "
                              "for more; reads round-robin over leader "
                              "and replicas with failover)")
    cluster.add_argument("--host", default="127.0.0.1",
                         help="address to bind (default 127.0.0.1)")
    cluster.add_argument("--port", type=int, default=None,
                         help="TCP port to bind (default 7468; 0 picks "
                              "an ephemeral port, printed on startup)")
    cluster.add_argument("--max-batch", type=int, default=256,
                         help="max requests one service dispatch round "
                              "coalesces (default 256)")
    cluster.add_argument("--cursor-ttl", type=float, default=300.0,
                         help="seconds an idle server-side cursor "
                              "survives before eviction (default 300)")
    cluster.add_argument("--cache-mb", type=float, default=64.0,
                         help="byte budget of the coordinator's hot-query "
                              "result cache in MiB (default 64)")
    cluster.add_argument("--no-cache", action="store_true",
                         help="disable the coordinator's result cache")
    cluster.add_argument("--codec", choices=("auto", "json"),
                         default="auto",
                         help="wire codec policy towards clients "
                              "(default auto)")

    compact = subparsers.add_parser(
        "compact",
        help="fold a live store's write-ahead log into a new snapshot "
             "generation")
    compact.add_argument("--store-dir", type=Path, dest="store_dir",
                         default=argparse.SUPPRESS,
                         help="live store directory (one carrying a "
                              "live.json pointer, written by "
                              "TripleStore.create_live)")

    query = subparsers.add_parser(
        "query",
        help="run a triple-pattern query against a saved store directory "
             "or a running server")
    # SUPPRESS keeps a value given in the global position
    # (`repro --store-dir X query ...`) from being clobbered by the
    # subparser default; presence is validated in _command_query.
    query.add_argument("--store-dir", type=Path, dest="store_dir",
                       default=argparse.SUPPRESS,
                       help="store directory written by build --store-dir or "
                            "TripleStore.save (mmap or sharded layout; "
                            "auto-detected)")
    query.add_argument("--url", default=None, metavar="HOST:PORT",
                       help="query a running `repro serve` instance instead "
                            "of opening a local store directory (mutually "
                            "exclusive with --store-dir); results stream in "
                            "pages through a server-side cursor")
    query.add_argument("--pattern", action="append", required=True,
                       metavar="'H R T'",
                       help="one whitespace-separated (head relation tail) "
                            "pattern; terms starting with '?' are variables; "
                            "repeat for conjunctive joins")
    query.add_argument("--select", nargs="+", default=(), metavar="?VAR",
                       help="project the result rows onto these variables "
                            "(default: all variables)")
    query.add_argument("--no-reorder", action="store_true",
                       help="evaluate patterns strictly left to right instead "
                            "of by batched selectivity order")
    query.add_argument("--limit", type=int, default=None,
                       help="print at most this many binding rows")
    query.add_argument("--page-size", type=int, default=512,
                       help="rows per fetch when streaming from --url "
                            "(default 512)")
    query.add_argument("--codec", choices=("auto", "json", "binary"),
                       default="auto",
                       help="wire codec when querying --url: auto "
                            "negotiates binary and falls back to json; "
                            "binary fails fast if the server declines "
                            "(default auto; ignored with --store-dir)")
    return parser


def _construct(products: int, seed: int, backend: str = DEFAULT_BACKEND,
               store_dir: Optional[Path] = None,
               shards: int = DEFAULT_SHARDS) -> ConstructionResult:
    config = SyntheticCatalogConfig(num_products=products, seed=seed)
    built_backend = ShardedBackend(n_shards=shards) \
        if backend == ShardedBackend.name else backend
    return OpenBGBuilder(config, seed=seed, backend=built_backend,
                         store_dir=store_dir).build()


def _command_build(result: ConstructionResult, out: Optional[Path]) -> int:
    print("Constructed synthetic OpenBG:")
    for key, value in result.summary().items():
        print(f"  {key:<22} {value}")
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        path = out / "openbg.tsv"
        count = write_tsv(result.graph.triples(), path)
        print(f"  wrote {count} triples to {path}")
    return 0


def _command_stats(result: ConstructionResult) -> int:
    print(result.statistics.format_table())
    return 0


def _command_benchmark(result: ConstructionResult, out: Optional[Path],
                       seed: int) -> int:
    suite = BenchmarkBuilder(result.graph, seed=seed).build_suite()
    print("Benchmark suite (Table II analogue):")
    for summary in suite.summaries():
        print("  " + " | ".join(summary.as_row()))
    if out is not None:
        for dataset in suite.datasets.values():
            dataset.save(out)
        print(f"  wrote train/dev/test TSV splits to {out}")
    return 0


def _command_linkpred(result: ConstructionResult, seed: int, model_name: str,
                      epochs: int, dim: int, learning_rate: float) -> int:
    suite = BenchmarkBuilder(result.graph, seed=seed).build_suite()
    dataset = suite["OpenBG500"]
    encoded = dataset.encoded_splits()
    model_class = MODEL_REGISTRY[model_name]
    model = model_class(len(dataset.entity_vocab), len(dataset.relation_vocab),
                        dim=dim, seed=seed)
    config = TrainingConfig(epochs=epochs, batch_size=256, learning_rate=learning_rate,
                            seed=seed, normalize_entities=model_name.startswith("Trans"))
    history = KGETrainer(model, config).fit(encoded["train"])
    print(f"{model_name}: training loss {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")
    evaluator = LinkPredictionEvaluator(encoded["train"], encoded["dev"], encoded["test"])
    metrics = evaluator.evaluate(model, encoded["test"])
    print(format_results_table({model_name: metrics},
                               title="Link prediction on OpenBG500 analogue"))
    return 0


def _parse_shard_of(value: Optional[str]):
    """``"K/N"`` -> ``(K, N)``; ``None`` passes through."""
    if value is None:
        return (None, None)
    parts = value.split("/")
    try:
        shard_index, n_shards = (int(part) for part in parts)
    except ValueError:
        shard_index = n_shards = None
    if len(parts) != 2 or shard_index is None:
        raise ValueError(
            f"--shard-of wants K/N (e.g. 0/4), got {value!r}")
    return (shard_index, n_shards)


def _cache_bytes(args) -> int:
    """``--cache-mb`` / ``--no-cache`` -> the service's byte budget."""
    if args.no_cache:
        return 0
    if not math.isfinite(args.cache_mb) or args.cache_mb < 0:
        raise ValueError(
            f"--cache-mb must be a finite number >= 0, got {args.cache_mb}")
    return int(args.cache_mb * 1024 * 1024)


def _follow_poll_interval(args) -> float:
    """Validate ``--follow-poll-interval`` at the CLI boundary.

    argparse's ``type=float`` happily accepts ``nan``, ``inf`` and
    non-positive values — all of which would either busy-spin the
    replication thread or stall it forever, so they are rejected here
    with the same typed error path (exit code 2) as every other bad
    flag rather than surfacing as a server-constructor traceback.
    """
    interval = args.follow_poll_interval
    if not math.isfinite(interval) or interval <= 0:
        raise ValueError(
            f"--follow-poll-interval must be a finite number of seconds "
            f"> 0, got {interval}")
    return interval


def _command_serve(args) -> int:
    """Open a saved store directory and serve the TCP query protocol."""
    import sys

    from repro.errors import ReproError
    from repro.kg.server import DEFAULT_PORT, KGServer

    try:
        if args.store_dir is None:
            raise ValueError("serve requires --store-dir")
        shard_index, n_shards = _parse_shard_of(args.shard_of)
        poll_interval = _follow_poll_interval(args)
        cache_bytes = _cache_bytes(args)
        port = DEFAULT_PORT if args.port is None else args.port
        store_dir = Path(args.store_dir)
        if args.follow is not None and (
                not store_dir.exists() or not any(store_dir.iterdir())):
            # A brand-new replica needs no hand-copied seed store: fetch
            # the leader's current snapshot over the wire and start
            # tailing its WAL from there.
            from repro.kg.server import bootstrap_replica
            generation = bootstrap_replica(store_dir, args.follow)
            print(f"bootstrapped {store_dir} from {args.follow} "
                  f"(generation {generation})", flush=True)
        server = KGServer.open(store_dir, host=args.host, port=port,
                               max_batch=args.max_batch,
                               cursor_ttl=args.cursor_ttl,
                               cache_bytes=cache_bytes,
                               codec=args.codec,
                               shard_index=shard_index, n_shards=n_shards,
                               follow=args.follow,
                               follow_poll_interval=poll_interval)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr, flush=True)
        return 2
    with server:
        host, bound_port = server.address
        store = server.service.store
        shard_label = "" if shard_index is None \
            else f" as shard {shard_index}/{n_shards}"
        role_label = "" if args.follow is None \
            else f", replica of {args.follow}"
        print(f"serving {len(store)} triples ({store.backend_name} backend) "
              f"on {host}:{bound_port}{shard_label}{role_label}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", flush=True)
    return 0


def _command_shard_split(args) -> int:
    """Split a saved store into per-shard live store directories."""
    import sys

    from repro.errors import ReproError
    from repro.kg.cluster import shard_split

    try:
        if args.store_dir is None:
            raise ValueError("shard-split requires --store-dir")
        shard_dirs = shard_split(args.store_dir, args.shards, args.out)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr, flush=True)
        return 2
    print(f"split {args.store_dir} into {len(shard_dirs)} live shard "
          f"stores under {args.out}:", flush=True)
    for index, shard_dir in enumerate(shard_dirs):
        print(f"  shard {index}: {shard_dir}", flush=True)
    print(f"start each with `repro serve --store-dir DIR "
          f"--shard-of K/{len(shard_dirs)}`, then a coordinator with "
          f"`repro cluster --store-dir {args.out} "
          f"--shards HOST:PORT,...`", flush=True)
    return 0


def _parse_replica_map(entries: Sequence[str], n_shards: int):
    """``["0=host:port", ...]`` -> ``{0: ["host:port", ...], ...}``."""
    replicas: dict = {}
    for entry in entries:
        index_text, separator, address = entry.partition("=")
        try:
            index = int(index_text)
        except ValueError:
            index = -1
        if not separator or not address or not 0 <= index < n_shards:
            raise ValueError(
                f"--replica wants K=HOST:PORT with K in 0..{n_shards - 1}, "
                f"got {entry!r}")
        replicas.setdefault(index, []).append(address)
    return replicas


def _command_cluster(args) -> int:
    """Serve a coordinator over running shard servers."""
    import sys

    from repro.errors import ReproError
    from repro.kg.cluster import ClusterBackend
    from repro.kg.server import DEFAULT_PORT, KGServer
    from repro.kg.store import TripleStore

    try:
        if args.store_dir is None:
            raise ValueError(
                "cluster requires --store-dir (the shard-split output "
                "carrying the coordinator's interner tables)")
        shard_urls = [url.strip() for url in args.shard_urls.split(",")
                      if url.strip()]
        if not shard_urls:
            raise ValueError("--shards needs at least one HOST:PORT")
        replicas = _parse_replica_map(args.replica, len(shard_urls))
        backend = ClusterBackend.open(args.store_dir, shard_urls,
                                      replicas=replicas)
        port = DEFAULT_PORT if args.port is None else args.port
        server = KGServer(TripleStore(backend=backend), host=args.host,
                          port=port, max_batch=args.max_batch,
                          cursor_ttl=args.cursor_ttl,
                          cache_bytes=_cache_bytes(args), codec=args.codec)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr, flush=True)
        return 2
    with server:
        host, bound_port = server.address
        replica_count = sum(len(urls) for urls in replicas.values())
        print(f"coordinating {len(shard_urls)} shard servers "
              f"({replica_count} replicas, {len(server.service.store)} "
              f"triples) on {host}:{bound_port}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", flush=True)
        finally:
            backend.close()
    return 0


def _command_compact(args) -> int:
    """Fold a live store's WAL into a new snapshot generation."""
    import sys

    from repro.errors import ReproError
    from repro.kg.store import TripleStore
    from repro.kg.wal import is_live_store

    try:
        if args.store_dir is None:
            raise ValueError("compact requires --store-dir")
        if not is_live_store(args.store_dir):
            raise ValueError(
                f"{args.store_dir} is not a live store (no live.json "
                f"pointer); compaction only applies to WAL-backed stores "
                f"created with TripleStore.create_live")
        store = TripleStore.open(args.store_dir)
        try:
            replayed = store.wal.next_seq - 1
            generation = store.compact()
        finally:
            store.close()
        print(f"compacted {replayed} WAL batches into generation "
              f"{generation} ({len(store)} triples, "
              f"{store.backend_name} backend)", flush=True)
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr, flush=True)
        return 2
    return 0


def _remote_query_rows(args, query):
    """Generator over remote binding rows, streamed page by page."""
    from repro.kg.client import RemoteQueryEngine

    if args.limit == 0:
        return
    with RemoteQueryEngine(args.url, codec=args.codec) as engine:
        cursor = engine.cursor(query, reorder=not args.no_reorder,
                               limit=args.limit, page_size=args.page_size)
        for row in cursor:
            yield row


def _command_query(args) -> int:
    """Run a pattern query against a saved store or a running server."""
    import sys

    from repro.errors import ReproError
    from repro.kg.query import PatternQuery, QueryEngine
    from repro.kg.serialization import escape_tsv_field
    from repro.kg.store import TripleStore

    try:
        if args.url is not None and args.store_dir is not None:
            raise ValueError("--store-dir and --url are mutually exclusive")
        if args.url is None and args.store_dir is None:
            raise ValueError("query requires --store-dir or --url")
        if args.limit is not None and args.limit < 0:
            raise ValueError(f"--limit must be >= 0, got {args.limit}")
        if args.page_size < 1:
            raise ValueError(f"--page-size must be >= 1, got {args.page_size}")
        patterns = []
        for raw in args.pattern:
            terms = raw.split()
            if len(terms) != 3:
                raise ValueError(
                    f"--pattern needs exactly 3 whitespace-separated terms, "
                    f"got {raw!r}")
            patterns.append(terms)
        query = PatternQuery.from_patterns(patterns, select=args.select)
        if args.url is not None:
            rows = _remote_query_rows(args, query)
        else:
            store = TripleStore.open(args.store_dir)
            rows = QueryEngine(store).execute(query,
                                              reorder=not args.no_reorder)
            if args.limit is not None:
                rows = rows[:args.limit]
        header = list(query.select) if query.select else query.variables()
        print("\t".join(header))
        # Remote rows stream here (one page in memory at a time), so a
        # network error can surface mid-iteration — inside the try.
        for row in rows:
            print("\t".join(escape_tsv_field(row[name]) for name in header))
    except (ReproError, ValueError, OSError) as exc:
        # stderr keeps the TSV data channel clean for piped consumers.
        print(f"error: {exc}", file=sys.stderr, flush=True)
        return 2
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "shard-split":
        return _command_shard_split(args)
    if args.command == "cluster":
        return _command_cluster(args)
    if args.command == "query":
        return _command_query(args)
    if args.command == "compact":
        return _command_compact(args)
    result = _construct(args.products, args.seed, args.backend, args.store_dir,
                        args.shards)
    if result.store_dir is not None:
        print(f"persisted {args.backend}-built triple store to {result.store_dir}")
    if args.command == "build":
        return _command_build(result, args.out)
    if args.command == "stats":
        return _command_stats(result)
    if args.command == "benchmark":
        return _command_benchmark(result, args.out, args.seed)
    if args.command == "linkpred":
        return _command_linkpred(result, args.seed, args.model, args.epochs,
                                 args.dim, args.learning_rate)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
