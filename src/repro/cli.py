"""Command-line interface for the OpenBG reproduction.

Five subcommands cover the everyday workflows::

    python -m repro.cli --products 300 build      --out ./openbg_out
    python -m repro.cli --products 300 stats
    python -m repro.cli --products 300 benchmark  --out ./openbg_out
    python -m repro.cli --products 300 linkpred   --model TransE --epochs 25
    python -m repro.cli query --store-dir ./store \\
        --pattern "?p brandIs brand:0" --pattern "?p placeOfOrigin ?where" \\
        --select ?p ?where

``build`` constructs the synthetic OpenBG and writes it as TSV triples,
``stats`` prints the Table-I style statistics, ``benchmark`` samples and
saves the OpenBG-IMG / 500 / 500-L analogues, ``linkpred`` trains one
embedding model on the OpenBG500 analogue and prints its filtered
metrics, and ``query`` opens a previously saved store directory (plain
mmap or sharded layout — no rebuild) and evaluates a conjunctive
triple-pattern query through the ID-space executor, printing bindings
as TSV.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional, Sequence

from repro.benchmark.builders import BenchmarkBuilder
from repro.construction.pipeline import ConstructionResult, OpenBGBuilder
from repro.datagen.catalog import SyntheticCatalogConfig
from repro.embedding import (
    ComplEx,
    DistMult,
    KGETrainer,
    LinkPredictionEvaluator,
    TrainingConfig,
    TransD,
    TransE,
    TransH,
    TuckER,
)
from repro.embedding.evaluation import format_results_table
from repro.kg.backend import BACKENDS, DEFAULT_BACKEND
from repro.kg.serialization import write_tsv
from repro.kg.sharded_backend import DEFAULT_SHARDS, ShardedBackend

MODEL_REGISTRY = {
    "TransE": TransE,
    "TransH": TransH,
    "TransD": TransD,
    "DistMult": DistMult,
    "ComplEx": ComplEx,
    "TuckER": TuckER,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(prog="repro",
                                     description="OpenBG reproduction toolkit")
    parser.add_argument("--products", type=int, default=300,
                        help="number of synthetic products to generate")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--backend", choices=sorted(BACKENDS), default=DEFAULT_BACKEND,
                        help="triple-store backend (columnar: interned-id numpy "
                             "arrays; mmap: on-disk memory-mapped columns; "
                             "sharded: hash-partitioned columnar shards with "
                             "parallel bulk loads and saves; "
                             "set: the reference dict-of-set store)")
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                        help="shard count for --backend sharded "
                             f"(default {DEFAULT_SHARDS}; ignored otherwise)")
    parser.add_argument("--store-dir", type=Path, default=None,
                        help="persist the built triple store to this directory as "
                             "memory-mapped column files (sharded builds write a "
                             "sharded layout; reopen with TripleStore.open)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build", help="construct the synthetic OpenBG")
    build.add_argument("--out", type=Path, default=None,
                       help="directory to write openbg.tsv into")

    subparsers.add_parser("stats", help="print Table-I style statistics")

    benchmark = subparsers.add_parser("benchmark",
                                      help="sample the benchmark suite (Table II)")
    benchmark.add_argument("--out", type=Path, default=None,
                           help="directory to write the benchmark TSV splits into")

    linkpred = subparsers.add_parser("linkpred",
                                     help="train one embedding model on OpenBG500")
    linkpred.add_argument("--model", choices=sorted(MODEL_REGISTRY), default="TransE")
    linkpred.add_argument("--epochs", type=int, default=25)
    linkpred.add_argument("--dim", type=int, default=32)
    linkpred.add_argument("--learning-rate", type=float, default=0.08)

    query = subparsers.add_parser(
        "query",
        help="run a triple-pattern query against a saved store directory")
    # SUPPRESS keeps a value given in the global position
    # (`repro --store-dir X query ...`) from being clobbered by the
    # subparser default; presence is validated in _command_query.
    query.add_argument("--store-dir", type=Path, dest="store_dir",
                       default=argparse.SUPPRESS,
                       help="store directory written by build --store-dir or "
                            "TripleStore.save (mmap or sharded layout; "
                            "auto-detected)")
    query.add_argument("--pattern", action="append", required=True,
                       metavar="'H R T'",
                       help="one whitespace-separated (head relation tail) "
                            "pattern; terms starting with '?' are variables; "
                            "repeat for conjunctive joins")
    query.add_argument("--select", nargs="+", default=(), metavar="?VAR",
                       help="project the result rows onto these variables "
                            "(default: all variables)")
    query.add_argument("--no-reorder", action="store_true",
                       help="evaluate patterns strictly left to right instead "
                            "of by batched selectivity order")
    query.add_argument("--limit", type=int, default=None,
                       help="print at most this many binding rows")
    return parser


def _construct(products: int, seed: int, backend: str = DEFAULT_BACKEND,
               store_dir: Optional[Path] = None,
               shards: int = DEFAULT_SHARDS) -> ConstructionResult:
    config = SyntheticCatalogConfig(num_products=products, seed=seed)
    built_backend = ShardedBackend(n_shards=shards) \
        if backend == ShardedBackend.name else backend
    return OpenBGBuilder(config, seed=seed, backend=built_backend,
                         store_dir=store_dir).build()


def _command_build(result: ConstructionResult, out: Optional[Path]) -> int:
    print("Constructed synthetic OpenBG:")
    for key, value in result.summary().items():
        print(f"  {key:<22} {value}")
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        path = out / "openbg.tsv"
        count = write_tsv(result.graph.triples(), path)
        print(f"  wrote {count} triples to {path}")
    return 0


def _command_stats(result: ConstructionResult) -> int:
    print(result.statistics.format_table())
    return 0


def _command_benchmark(result: ConstructionResult, out: Optional[Path],
                       seed: int) -> int:
    suite = BenchmarkBuilder(result.graph, seed=seed).build_suite()
    print("Benchmark suite (Table II analogue):")
    for summary in suite.summaries():
        print("  " + " | ".join(summary.as_row()))
    if out is not None:
        for dataset in suite.datasets.values():
            dataset.save(out)
        print(f"  wrote train/dev/test TSV splits to {out}")
    return 0


def _command_linkpred(result: ConstructionResult, seed: int, model_name: str,
                      epochs: int, dim: int, learning_rate: float) -> int:
    suite = BenchmarkBuilder(result.graph, seed=seed).build_suite()
    dataset = suite["OpenBG500"]
    encoded = dataset.encoded_splits()
    model_class = MODEL_REGISTRY[model_name]
    model = model_class(len(dataset.entity_vocab), len(dataset.relation_vocab),
                        dim=dim, seed=seed)
    config = TrainingConfig(epochs=epochs, batch_size=256, learning_rate=learning_rate,
                            seed=seed, normalize_entities=model_name.startswith("Trans"))
    history = KGETrainer(model, config).fit(encoded["train"])
    print(f"{model_name}: training loss {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")
    evaluator = LinkPredictionEvaluator(encoded["train"], encoded["dev"], encoded["test"])
    metrics = evaluator.evaluate(model, encoded["test"])
    print(format_results_table({model_name: metrics},
                               title="Link prediction on OpenBG500 analogue"))
    return 0


def _command_query(args) -> int:
    """Open a saved store and run a pattern query (no synthetic build)."""
    import sys

    from repro.errors import ReproError
    from repro.kg.query import PatternQuery, QueryEngine
    from repro.kg.serialization import escape_tsv_field
    from repro.kg.store import TripleStore

    try:
        if args.store_dir is None:
            raise ValueError("query requires --store-dir")
        if args.limit is not None and args.limit < 0:
            raise ValueError(f"--limit must be >= 0, got {args.limit}")
        patterns = []
        for raw in args.pattern:
            terms = raw.split()
            if len(terms) != 3:
                raise ValueError(
                    f"--pattern needs exactly 3 whitespace-separated terms, "
                    f"got {raw!r}")
            patterns.append(terms)
        query = PatternQuery.from_patterns(patterns, select=args.select)
        store = TripleStore.open(args.store_dir)
        rows = QueryEngine(store).execute(query, reorder=not args.no_reorder)
    except (ReproError, ValueError, OSError) as exc:
        # stderr keeps the TSV data channel clean for piped consumers.
        print(f"error: {exc}", file=sys.stderr, flush=True)
        return 2
    header = list(query.select) if query.select else query.variables()
    print("\t".join(header))
    if args.limit is not None:
        rows = rows[:args.limit]
    for row in rows:
        print("\t".join(escape_tsv_field(row[name]) for name in header))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "query":
        return _command_query(args)
    result = _construct(args.products, args.seed, args.backend, args.store_dir,
                        args.shards)
    if result.store_dir is not None:
        print(f"persisted {args.backend}-built triple store to {result.store_dir}")
    if args.command == "build":
        return _command_build(result, args.out)
    if args.command == "stats":
        return _command_stats(result)
    if args.command == "benchmark":
        return _command_benchmark(result, args.out, args.seed)
    if args.command == "linkpred":
        return _command_linkpred(result, args.seed, args.model, args.epochs,
                                 args.dim, args.learning_rate)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
