"""Command-line interface for the OpenBG reproduction.

Four subcommands cover the everyday workflows::

    python -m repro.cli build      --products 300 --out ./openbg_out
    python -m repro.cli stats      --products 300
    python -m repro.cli benchmark  --products 300 --out ./openbg_out
    python -m repro.cli linkpred   --products 300 --model TransE --epochs 25

``build`` constructs the synthetic OpenBG and writes it as TSV triples,
``stats`` prints the Table-I style statistics, ``benchmark`` samples and
saves the OpenBG-IMG / 500 / 500-L analogues, and ``linkpred`` trains one
embedding model on the OpenBG500 analogue and prints its filtered metrics.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional, Sequence

from repro.benchmark.builders import BenchmarkBuilder
from repro.construction.pipeline import ConstructionResult, OpenBGBuilder
from repro.datagen.catalog import SyntheticCatalogConfig
from repro.embedding import (
    ComplEx,
    DistMult,
    KGETrainer,
    LinkPredictionEvaluator,
    TrainingConfig,
    TransD,
    TransE,
    TransH,
    TuckER,
)
from repro.embedding.evaluation import format_results_table
from repro.kg.backend import BACKENDS, DEFAULT_BACKEND
from repro.kg.serialization import write_tsv
from repro.kg.sharded_backend import DEFAULT_SHARDS, ShardedBackend

MODEL_REGISTRY = {
    "TransE": TransE,
    "TransH": TransH,
    "TransD": TransD,
    "DistMult": DistMult,
    "ComplEx": ComplEx,
    "TuckER": TuckER,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the CLI."""
    parser = argparse.ArgumentParser(prog="repro",
                                     description="OpenBG reproduction toolkit")
    parser.add_argument("--products", type=int, default=300,
                        help="number of synthetic products to generate")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--backend", choices=sorted(BACKENDS), default=DEFAULT_BACKEND,
                        help="triple-store backend (columnar: interned-id numpy "
                             "arrays; mmap: on-disk memory-mapped columns; "
                             "sharded: hash-partitioned columnar shards with "
                             "parallel bulk loads and saves; "
                             "set: the reference dict-of-set store)")
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                        help="shard count for --backend sharded "
                             f"(default {DEFAULT_SHARDS}; ignored otherwise)")
    parser.add_argument("--store-dir", type=Path, default=None,
                        help="persist the built triple store to this directory as "
                             "memory-mapped column files (sharded builds write a "
                             "sharded layout; reopen with TripleStore.open)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    build = subparsers.add_parser("build", help="construct the synthetic OpenBG")
    build.add_argument("--out", type=Path, default=None,
                       help="directory to write openbg.tsv into")

    subparsers.add_parser("stats", help="print Table-I style statistics")

    benchmark = subparsers.add_parser("benchmark",
                                      help="sample the benchmark suite (Table II)")
    benchmark.add_argument("--out", type=Path, default=None,
                           help="directory to write the benchmark TSV splits into")

    linkpred = subparsers.add_parser("linkpred",
                                     help="train one embedding model on OpenBG500")
    linkpred.add_argument("--model", choices=sorted(MODEL_REGISTRY), default="TransE")
    linkpred.add_argument("--epochs", type=int, default=25)
    linkpred.add_argument("--dim", type=int, default=32)
    linkpred.add_argument("--learning-rate", type=float, default=0.08)
    return parser


def _construct(products: int, seed: int, backend: str = DEFAULT_BACKEND,
               store_dir: Optional[Path] = None,
               shards: int = DEFAULT_SHARDS) -> ConstructionResult:
    config = SyntheticCatalogConfig(num_products=products, seed=seed)
    built_backend = ShardedBackend(n_shards=shards) \
        if backend == ShardedBackend.name else backend
    return OpenBGBuilder(config, seed=seed, backend=built_backend,
                         store_dir=store_dir).build()


def _command_build(result: ConstructionResult, out: Optional[Path]) -> int:
    print("Constructed synthetic OpenBG:")
    for key, value in result.summary().items():
        print(f"  {key:<22} {value}")
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        path = out / "openbg.tsv"
        count = write_tsv(result.graph.triples(), path)
        print(f"  wrote {count} triples to {path}")
    return 0


def _command_stats(result: ConstructionResult) -> int:
    print(result.statistics.format_table())
    return 0


def _command_benchmark(result: ConstructionResult, out: Optional[Path],
                       seed: int) -> int:
    suite = BenchmarkBuilder(result.graph, seed=seed).build_suite()
    print("Benchmark suite (Table II analogue):")
    for summary in suite.summaries():
        print("  " + " | ".join(summary.as_row()))
    if out is not None:
        for dataset in suite.datasets.values():
            dataset.save(out)
        print(f"  wrote train/dev/test TSV splits to {out}")
    return 0


def _command_linkpred(result: ConstructionResult, seed: int, model_name: str,
                      epochs: int, dim: int, learning_rate: float) -> int:
    suite = BenchmarkBuilder(result.graph, seed=seed).build_suite()
    dataset = suite["OpenBG500"]
    encoded = dataset.encoded_splits()
    model_class = MODEL_REGISTRY[model_name]
    model = model_class(len(dataset.entity_vocab), len(dataset.relation_vocab),
                        dim=dim, seed=seed)
    config = TrainingConfig(epochs=epochs, batch_size=256, learning_rate=learning_rate,
                            seed=seed, normalize_entities=model_name.startswith("Trans"))
    history = KGETrainer(model, config).fit(encoded["train"])
    print(f"{model_name}: training loss {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")
    evaluator = LinkPredictionEvaluator(encoded["train"], encoded["dev"], encoded["test"])
    metrics = evaluator.evaluate(model, encoded["test"])
    print(format_results_table({model_name: metrics},
                               title="Link prediction on OpenBG500 analogue"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    result = _construct(args.products, args.seed, args.backend, args.store_dir,
                        args.shards)
    if result.store_dir is not None:
        print(f"persisted {args.backend}-built triple store to {result.store_dir}")
    if args.command == "build":
        return _command_build(result, args.out)
    if args.command == "stats":
        return _command_stats(result)
    if args.command == "benchmark":
        return _command_benchmark(result, args.out, args.seed)
    if args.command == "linkpred":
        return _command_linkpred(result, args.seed, args.model, args.epochs,
                                 args.dim, args.learning_rate)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
