"""The KG-enhanced mPLUG-style vision-language model.

Architecture (Figure 6 of the paper, scaled down):

* **visual encoder** — projects image feature vectors into a short sequence
  of visual tokens and runs transformer encoder layers over them;
* **KG-enhanced text encoder** — embeds unified text tokens (text + KG
  triples rendered as tokens) with positional encodings and encoder layers;
* **fusion** — the text [CLS] representation cross-attends over visual
  tokens (the skip-connected fusion of mPLUG reduced to one fusion block);
* **decoder** — causal self-attention + cross-attention over the fused
  memory, producing logits for PrefixLM and for downstream generation.

Heads: ITC projections for image/text embeddings, an ITM binary classifier
over the fused representation, an MLM head tied to the token embedding, and
the LM head of the decoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.nn.attention import (
    MultiHeadAttention,
    PositionalEncoding,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
    causal_mask,
    padding_mask,
)
from repro.nn.module import Dropout, Embedding, LayerNorm, Linear, Module
from repro.nn.functional import masked_mean
from repro.nn.tensor import Tensor


@dataclass
class MPlugConfig:
    """Model hyper-parameters (defaults are tiny for laptop-scale training)."""

    vocab_size: int = 2000
    dim: int = 48
    num_heads: int = 4
    num_text_layers: int = 2
    num_visual_layers: int = 1
    num_decoder_layers: int = 2
    image_dim: int = 32
    num_visual_tokens: int = 4
    max_length: int = 64
    dropout: float = 0.0
    use_kg: bool = True
    seed: int = 0


class VisualEncoder(Module):
    """Maps an image feature vector to a sequence of visual tokens."""

    def __init__(self, config: MPlugConfig) -> None:
        super().__init__()
        self.config = config
        self.patch_projection = Linear(config.image_dim,
                                       config.dim * config.num_visual_tokens,
                                       seed=config.seed + 1)
        self.layers: List[TransformerEncoderLayer] = []
        for index in range(config.num_visual_layers):
            layer = TransformerEncoderLayer(config.dim, config.num_heads,
                                            dropout=config.dropout,
                                            seed=config.seed + 100 + index)
            setattr(self, f"layer_{index}", layer)
            self.layers.append(layer)
        self.norm = LayerNorm(config.dim)

    def forward(self, image_features: np.ndarray) -> Tensor:
        """(batch, image_dim) features → (batch, num_visual_tokens, dim)."""
        inputs = Tensor(np.asarray(image_features, dtype=np.float64))
        projected = self.patch_projection(inputs)
        batch = projected.shape[0]
        tokens = projected.reshape(batch, self.config.num_visual_tokens, self.config.dim)
        for layer in self.layers:
            tokens = layer(tokens)
        return self.norm(tokens)


class TextEncoder(Module):
    """KG-enhanced text encoder over unified text tokens."""

    def __init__(self, config: MPlugConfig) -> None:
        super().__init__()
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.dim,
                                         seed=config.seed + 2)
        self.positional = PositionalEncoding(config.dim, max_length=config.max_length)
        self.dropout = Dropout(config.dropout, seed=config.seed + 3)
        self.layers: List[TransformerEncoderLayer] = []
        for index in range(config.num_text_layers):
            layer = TransformerEncoderLayer(config.dim, config.num_heads,
                                            dropout=config.dropout,
                                            seed=config.seed + 200 + index)
            setattr(self, f"layer_{index}", layer)
            self.layers.append(layer)
        self.norm = LayerNorm(config.dim)

    def forward(self, input_ids: np.ndarray, attention_mask: np.ndarray) -> Tensor:
        """(batch, length) ids → (batch, length, dim) contextual representations."""
        hidden = self.positional(self.token_embedding(input_ids))
        hidden = self.dropout(hidden)
        mask = padding_mask(attention_mask)
        for layer in self.layers:
            hidden = layer(hidden, mask=mask)
        return self.norm(hidden)


class MPlugModel(Module):
    """The full KG-enhanced vision-language model with all pre-training heads."""

    def __init__(self, config: MPlugConfig) -> None:
        super().__init__()
        self.config = config
        self.text_encoder = TextEncoder(config)
        self.visual_encoder = VisualEncoder(config)
        self.fusion_attention = MultiHeadAttention(config.dim, config.num_heads,
                                                   dropout=config.dropout,
                                                   seed=config.seed + 4)
        self.fusion_norm = LayerNorm(config.dim)
        self.decoder_layers: List[TransformerDecoderLayer] = []
        for index in range(config.num_decoder_layers):
            layer = TransformerDecoderLayer(config.dim, config.num_heads,
                                            dropout=config.dropout,
                                            seed=config.seed + 300 + index)
            setattr(self, f"decoder_{index}", layer)
            self.decoder_layers.append(layer)
        self.decoder_norm = LayerNorm(config.dim)
        self.lm_head = Linear(config.dim, config.vocab_size, seed=config.seed + 5)
        self.mlm_head = Linear(config.dim, config.vocab_size, seed=config.seed + 6)
        self.itm_head = Linear(config.dim, 2, seed=config.seed + 7)
        self.itc_text_projection = Linear(config.dim, config.dim, bias=False,
                                          seed=config.seed + 8)
        self.itc_image_projection = Linear(config.dim, config.dim, bias=False,
                                           seed=config.seed + 9)

    # ------------------------------------------------------------------ #
    # encoders
    # ------------------------------------------------------------------ #
    def encode_text(self, input_ids: np.ndarray, attention_mask: np.ndarray) -> Tensor:
        """Contextual token representations from the KG-enhanced text encoder."""
        return self.text_encoder(input_ids, attention_mask)

    def encode_image(self, image_features: np.ndarray) -> Tensor:
        """Visual token representations from the visual encoder."""
        return self.visual_encoder(image_features)

    def text_embedding(self, input_ids: np.ndarray,
                       attention_mask: np.ndarray) -> Tensor:
        """Pooled (masked-mean) text embedding projected for ITC."""
        hidden = self.encode_text(input_ids, attention_mask)
        pooled = masked_mean(hidden, attention_mask, axis=1)
        return self.itc_text_projection(pooled)

    def image_embedding(self, image_features: np.ndarray) -> Tensor:
        """Pooled visual embedding projected for ITC."""
        tokens = self.encode_image(image_features)
        pooled = tokens.mean(axis=1)
        return self.itc_image_projection(pooled)

    # ------------------------------------------------------------------ #
    # fusion and heads
    # ------------------------------------------------------------------ #
    def fuse(self, text_hidden: Tensor, visual_tokens: Optional[Tensor]) -> Tensor:
        """Cross-attend text over visual tokens (skip connection included)."""
        if visual_tokens is None:
            return text_hidden
        fused = text_hidden + self.fusion_attention(self.fusion_norm(text_hidden),
                                                    key=visual_tokens,
                                                    value=visual_tokens)
        return fused

    def itm_logits(self, input_ids: np.ndarray, attention_mask: np.ndarray,
                   image_features: np.ndarray) -> Tensor:
        """Binary image-text matching logits from the fused [CLS] position."""
        text_hidden = self.encode_text(input_ids, attention_mask)
        visual_tokens = self.encode_image(image_features)
        fused = self.fuse(text_hidden, visual_tokens)
        cls_representation = fused[:, 0, :]
        return self.itm_head(cls_representation)

    def mlm_logits(self, input_ids: np.ndarray, attention_mask: np.ndarray,
                   image_features: Optional[np.ndarray] = None) -> Tensor:
        """Token logits for masked language modeling (optionally image-fused)."""
        text_hidden = self.encode_text(input_ids, attention_mask)
        visual_tokens = self.encode_image(image_features) \
            if image_features is not None else None
        fused = self.fuse(text_hidden, visual_tokens)
        return self.mlm_head(fused)

    def decode(self, target_ids: np.ndarray, memory: Tensor,
               memory_mask: Optional[np.ndarray] = None) -> Tensor:
        """Run the causal decoder over target ids with cross-attention memory."""
        hidden = self.text_encoder.positional(self.text_encoder.token_embedding(target_ids))
        self_mask = causal_mask(target_ids.shape[1])
        for layer in self.decoder_layers:
            hidden = layer(hidden, memory=memory, self_mask=self_mask,
                           memory_mask=memory_mask)
        return self.lm_head(self.decoder_norm(hidden))

    def prefix_lm_logits(self, source_ids: np.ndarray, source_mask: np.ndarray,
                         target_ids: np.ndarray,
                         image_features: Optional[np.ndarray] = None) -> Tensor:
        """Decoder logits for PrefixLM / seq2seq generation objectives."""
        text_hidden = self.encode_text(source_ids, source_mask)
        visual_tokens = self.encode_image(image_features) \
            if image_features is not None else None
        memory = self.fuse(text_hidden, visual_tokens)
        memory_mask = padding_mask(source_mask)
        return self.decode(target_ids, memory, memory_mask=memory_mask)

    # ------------------------------------------------------------------ #
    # greedy generation (used by the downstream generation tasks)
    # ------------------------------------------------------------------ #
    def generate(self, source_ids: np.ndarray, source_mask: np.ndarray,
                 bos_id: int, eos_id: int, max_new_tokens: int = 12,
                 image_features: Optional[np.ndarray] = None) -> List[List[int]]:
        """Greedy decoding; returns generated id lists (without BOS/EOS)."""
        self.eval()
        text_hidden = self.encode_text(source_ids, source_mask)
        visual_tokens = self.encode_image(image_features) \
            if image_features is not None else None
        memory = self.fuse(text_hidden, visual_tokens)
        memory_mask = padding_mask(source_mask)
        batch_size = source_ids.shape[0]
        generated = np.full((batch_size, 1), bos_id, dtype=np.int64)
        finished = np.zeros(batch_size, dtype=bool)
        for _ in range(max_new_tokens):
            logits = self.decode(generated, memory, memory_mask=memory_mask)
            next_ids = np.argmax(logits.data[:, -1, :], axis=-1)
            next_ids = np.where(finished, eos_id, next_ids)
            generated = np.concatenate([generated, next_ids[:, None]], axis=1)
            finished |= next_ids == eos_id
            if finished.all():
                break
        results: List[List[int]] = []
        for row in generated[:, 1:]:
            ids: List[int] = []
            for token_id in row:
                if int(token_id) == eos_id:
                    break
                ids.append(int(token_id))
            results.append(ids)
        return results
