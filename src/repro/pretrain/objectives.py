"""The four pre-training objectives: ITC, ITM, MLM and PrefixLM.

Each function takes the model and a :class:`~repro.pretrain.data.PretrainBatch`
and returns a scalar :class:`~repro.nn.tensor.Tensor` loss; the pre-trainer
sums them (the paper trains all four jointly end-to-end).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import binary_cross_entropy_with_logits, contrastive_loss, cross_entropy
from repro.nn.tensor import Tensor
from repro.pretrain.data import PretrainBatch
from repro.pretrain.mplug import MPlugModel
from repro.utils.rng import derive_rng


def image_text_contrastive_loss(model: MPlugModel, batch: PretrainBatch,
                                temperature: float = 0.07) -> Tensor:
    """ITC: align pooled image and text embeddings with in-batch negatives."""
    text_embeddings = model.text_embedding(batch.input_ids, batch.attention_mask)
    image_embeddings = model.image_embedding(batch.image_features)
    return contrastive_loss(image_embeddings, text_embeddings, temperature)


def image_text_matching_loss(model: MPlugModel, batch: PretrainBatch,
                             seed: int = 0) -> Tensor:
    """ITM: binary classification of matched vs shuffled (negative) image-text pairs."""
    rng = derive_rng(seed, "itm-shuffle")
    batch_size = batch.batch_size
    if batch_size < 2:
        # Cannot build in-batch negatives from a single example.
        logits = model.itm_logits(batch.input_ids, batch.attention_mask,
                                  batch.image_features)
        return cross_entropy(logits, np.ones(batch_size, dtype=np.int64))
    permutation = rng.permutation(batch_size)
    # Ensure at least some pairs are actually shuffled.
    if np.all(permutation == np.arange(batch_size)):
        permutation = np.roll(permutation, 1)
    negative_images = batch.image_features[permutation]

    input_ids = np.concatenate([batch.input_ids, batch.input_ids], axis=0)
    attention_mask = np.concatenate([batch.attention_mask, batch.attention_mask], axis=0)
    image_features = np.concatenate([batch.image_features, negative_images], axis=0)
    labels = np.concatenate([np.ones(batch_size, dtype=np.int64),
                             np.zeros(batch_size, dtype=np.int64)])
    logits = model.itm_logits(input_ids, attention_mask, image_features)
    return cross_entropy(logits, labels)


def masked_language_modeling_loss(model: MPlugModel, batch: PretrainBatch,
                                  masked_ids: np.ndarray,
                                  labels: np.ndarray) -> Tensor:
    """MLM: recover masked tokens of the unified text (image-fused)."""
    logits = model.mlm_logits(masked_ids, batch.attention_mask, batch.image_features)
    return cross_entropy(logits, labels, ignore_index=-100)


def prefix_language_modeling_loss(model: MPlugModel, batch: PretrainBatch,
                                  bos_id: int, pad_id: int,
                                  use_images: bool = True) -> Tensor:
    """PrefixLM / seq2seq: generate the target given the (fused) source prefix."""
    decoder_input = np.concatenate(
        [np.full((batch.batch_size, 1), bos_id, dtype=np.int64),
         batch.target_ids[:, :-1]], axis=1)
    labels = np.where(batch.target_mask.astype(bool), batch.target_ids, -100)
    image_features: Optional[np.ndarray] = batch.image_features if use_images else None
    logits = model.prefix_lm_logits(batch.input_ids, batch.attention_mask,
                                    decoder_input, image_features)
    return cross_entropy(logits, labels, ignore_index=-100)


def binary_head_loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Helper for binary classification heads (used by salience evaluation)."""
    return binary_cross_entropy_with_logits(logits, labels)
