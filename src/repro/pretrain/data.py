"""Pre-training data assembly: unified text tokens + images + targets.

Builds mini-batches for the four objectives from a synthetic catalog and a
constructed knowledge graph.  Each example carries:

* ``source`` text — the item title / review / prompt, with (when KG
  enhancement is enabled) the product's KG triples appended as unified text
  tokens;
* ``target`` text — the supervised target (category label, short title,
  slogan, ...) or the source itself for span-denoising examples;
* image features — the product image when available, zeros otherwise;
* an image-text match label used to build ITM negatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.catalog import Catalog
from repro.datagen.corpus import CorpusGenerator
from repro.kg.graph import KnowledgeGraph
from repro.pretrain.tokenizer import Tokenizer, render_unified_text
from repro.utils.rng import derive_rng


@dataclass
class PretrainExample:
    """One pre-training example before tokenization."""

    source: str
    target: str
    image: Optional[np.ndarray] = None
    product_id: Optional[str] = None


@dataclass
class PretrainBatch:
    """A tokenized pre-training mini-batch."""

    input_ids: np.ndarray
    attention_mask: np.ndarray
    target_ids: np.ndarray
    target_mask: np.ndarray
    image_features: np.ndarray
    has_image: np.ndarray

    @property
    def batch_size(self) -> int:
        return int(self.input_ids.shape[0])


class PretrainingDataBuilder:
    """Builds pre-training examples and batches from catalog + KG."""

    def __init__(self, catalog: Catalog, graph: KnowledgeGraph,
                 tokenizer: Optional[Tokenizer] = None, use_kg: bool = True,
                 max_triples_per_item: int = 3, image_dim: int = 32,
                 seed: int = 0) -> None:
        self.catalog = catalog
        self.graph = graph
        self.use_kg = bool(use_kg)
        self.max_triples_per_item = int(max_triples_per_item)
        self.image_dim = int(image_dim)
        self.seed = int(seed)
        self.corpus = CorpusGenerator(catalog, seed=seed)
        self.tokenizer = tokenizer or self._build_tokenizer()

    # ------------------------------------------------------------------ #
    # tokenizer
    # ------------------------------------------------------------------ #
    def _build_tokenizer(self) -> Tokenizer:
        texts: List[str] = []
        for pair in self.corpus.supervised_pairs(max_pairs_per_kind=400):
            texts.append(pair.prompted_source())
            texts.append(pair.target)
        texts.extend(self.corpus.unsupervised_corpus(max_sentences=800))
        # Also include the triple renderings so relation names are in-vocab.
        for product in self.catalog.products[:200]:
            texts.append(self._kg_suffix(product.product_id))
        return Tokenizer(max_vocab_size=4000).fit(texts)

    # ------------------------------------------------------------------ #
    # KG enhancement
    # ------------------------------------------------------------------ #
    def _kg_suffix(self, product_id: str) -> str:
        """The product's KG triples rendered as unified text tokens."""
        # sort=True keeps the truncated triple selection independent of the
        # store backend's internal ordering.
        triples = [t for t in self.graph.match(head=product_id, sort=True)
                   if not t.tail.startswith(("image://", "comment://"))]
        triples = triples[: self.max_triples_per_item]
        return render_unified_text("", triples, labels=self.graph.labels).strip()

    def enhance_with_kg(self, text: str, product_id: Optional[str]) -> str:
        """Append the product's triples to a text when KG enhancement is on."""
        if not self.use_kg or product_id is None:
            return text
        suffix = self._kg_suffix(product_id)
        return f"{text} {suffix}".strip() if suffix else text

    # ------------------------------------------------------------------ #
    # examples
    # ------------------------------------------------------------------ #
    def build_examples(self, max_examples: int = 200) -> List[PretrainExample]:
        """Supervised + unsupervised examples in a fixed deterministic order."""
        examples: List[PretrainExample] = []
        taxonomy = self.catalog.category_taxonomy
        for product in self.catalog.products:
            if len(examples) >= max_examples:
                break
            category_label = taxonomy.node(product.category).label
            source = self.enhance_with_kg(product.title, product.product_id)
            examples.append(PretrainExample(
                source=f"predict category : {source}", target=category_label,
                image=product.image, product_id=product.product_id))
            if product.items:
                item = product.items[0]
                examples.append(PretrainExample(
                    source=f"summarize title : {self.enhance_with_kg(item.title, product.product_id)}",
                    target=item.short_title(), image=product.image,
                    product_id=product.product_id))
            reviews = product.all_reviews()
            if reviews:
                examples.append(PretrainExample(
                    source=reviews[0], target=reviews[0], image=product.image,
                    product_id=product.product_id))
        return examples[:max_examples]

    # ------------------------------------------------------------------ #
    # batching
    # ------------------------------------------------------------------ #
    def make_batch(self, examples: Sequence[PretrainExample],
                   max_source_length: int = 48,
                   max_target_length: int = 12) -> PretrainBatch:
        """Tokenize and pad a list of examples into one batch."""
        source_batch = self.tokenizer.encode_batch(
            [example.source for example in examples], max_length=max_source_length)
        target_batch = self.tokenizer.encode_batch(
            [example.target for example in examples], max_length=max_target_length,
            add_cls=False, add_eos=True)
        image_features = np.zeros((len(examples), self.image_dim), dtype=np.float64)
        has_image = np.zeros(len(examples), dtype=np.float64)
        for row, example in enumerate(examples):
            if example.image is not None:
                image_features[row, : example.image.shape[0]] = example.image
                has_image[row] = 1.0
        return PretrainBatch(
            input_ids=source_batch.input_ids,
            attention_mask=source_batch.attention_mask,
            target_ids=target_batch.input_ids,
            target_mask=target_batch.attention_mask,
            image_features=image_features,
            has_image=has_image,
        )

    def batches(self, batch_size: int = 8, max_examples: int = 200,
                shuffle: bool = True) -> List[PretrainBatch]:
        """All batches for one pass over the example set."""
        examples = self.build_examples(max_examples)
        if shuffle:
            rng = derive_rng(self.seed, "pretrain-batches")
            order = rng.permutation(len(examples))
            examples = [examples[int(index)] for index in order]
        return [self.make_batch(examples[start:start + batch_size])
                for start in range(0, len(examples), batch_size)]

    # ------------------------------------------------------------------ #
    # MLM masking
    # ------------------------------------------------------------------ #
    def mask_tokens(self, input_ids: np.ndarray, mask_probability: float = 0.15,
                    seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """Standard MLM corruption: returns (masked_ids, labels).

        Labels are -100 at unmasked positions (ignored by the loss); masked
        positions are replaced by [MASK] and labeled with the original id.
        """
        rng = derive_rng(self.seed + seed, "mlm-mask")
        special = set(self.tokenizer.special_ids())
        masked = input_ids.copy()
        labels = np.full_like(input_ids, -100)
        for row in range(input_ids.shape[0]):
            for column in range(input_ids.shape[1]):
                token_id = int(input_ids[row, column])
                if token_id in special:
                    continue
                if rng.random() < mask_probability:
                    labels[row, column] = token_id
                    masked[row, column] = self.tokenizer.mask_id
        return masked, labels
