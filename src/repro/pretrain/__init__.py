"""KG-enhanced vision-language pre-training (Section IV of the paper).

A scaled-down mPLUG-style model: a visual encoder over (synthetic) image
features, a KG-enhanced text encoder that consumes unified text tokens
(texts + KG triples rendered through discrete prompts), a cross-attention
fusion decoder, and the four pre-training objectives — image-text
contrastive (ITC), image-text matching (ITM), masked language modeling
(MLM) and prefix language modeling (PrefixLM) — trained with AdamW and a
linear warmup schedule.
"""

from repro.pretrain.tokenizer import Tokenizer, render_triple, render_unified_text
from repro.pretrain.mplug import MPlugConfig, MPlugModel
from repro.pretrain.data import PretrainBatch, PretrainingDataBuilder
from repro.pretrain.objectives import (
    image_text_contrastive_loss,
    image_text_matching_loss,
    masked_language_modeling_loss,
    prefix_language_modeling_loss,
)
from repro.pretrain.pretrainer import Pretrainer, PretrainingConfig, PretrainingReport

__all__ = [
    "Tokenizer",
    "render_triple",
    "render_unified_text",
    "MPlugConfig",
    "MPlugModel",
    "PretrainBatch",
    "PretrainingDataBuilder",
    "image_text_contrastive_loss",
    "image_text_matching_loss",
    "masked_language_modeling_loss",
    "prefix_language_modeling_loss",
    "Pretrainer",
    "PretrainingConfig",
    "PretrainingReport",
]
