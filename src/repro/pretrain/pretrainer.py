"""The pre-training driver: AdamW + linear warmup over the four objectives.

The production run trains 600k steps on 14×A100; the reproduction trains a
tiny model for a configurable handful of steps, records per-objective loss
curves (the Figure 6 bench checks they decrease), and returns the model
ready for downstream fine-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datagen.catalog import Catalog
from repro.kg.graph import KnowledgeGraph
from repro.nn.optim import AdamW, LinearWarmupSchedule
from repro.pretrain.data import PretrainBatch, PretrainingDataBuilder
from repro.pretrain.mplug import MPlugConfig, MPlugModel
from repro.pretrain.objectives import (
    image_text_contrastive_loss,
    image_text_matching_loss,
    masked_language_modeling_loss,
    prefix_language_modeling_loss,
)
from repro.pretrain.tokenizer import Tokenizer


@dataclass
class PretrainingConfig:
    """Pre-training hyper-parameters (scaled down from the paper's setup)."""

    steps: int = 20
    batch_size: int = 8
    learning_rate: float = 3e-3
    weight_decay: float = 0.02
    warmup_fraction: float = 0.1
    max_examples: int = 120
    mlm_probability: float = 0.15
    use_kg: bool = True
    gradient_clip: float = 5.0
    objective_weights: Dict[str, float] = field(default_factory=lambda: {
        "itc": 1.0, "itm": 1.0, "mlm": 1.0, "prefix_lm": 1.0,
    })
    seed: int = 0


@dataclass
class PretrainingReport:
    """Loss curves recorded during pre-training (one value per step)."""

    losses: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, name: str, value: float) -> None:
        """Append one loss value for an objective."""
        self.losses.setdefault(name, []).append(float(value))

    def final(self, name: str) -> float:
        """Final loss value of an objective."""
        series = self.losses.get(name, [])
        return series[-1] if series else float("inf")

    def first(self, name: str) -> float:
        """First loss value of an objective."""
        series = self.losses.get(name, [])
        return series[0] if series else float("inf")

    def improved(self, name: str) -> bool:
        """True when the objective's loss decreased over pre-training."""
        series = self.losses.get(name, [])
        if len(series) < 2:
            return False
        # Compare the mean of the first and last quarters to smooth noise.
        quarter = max(1, len(series) // 4)
        return float(np.mean(series[-quarter:])) <= float(np.mean(series[:quarter]))


class Pretrainer:
    """Runs KG-enhanced multimodal pre-training end to end."""

    def __init__(self, catalog: Catalog, graph: KnowledgeGraph,
                 model_config: Optional[MPlugConfig] = None,
                 config: Optional[PretrainingConfig] = None,
                 tokenizer: Optional[Tokenizer] = None) -> None:
        self.catalog = catalog
        self.graph = graph
        self.config = config or PretrainingConfig()
        self.data_builder = PretrainingDataBuilder(
            catalog, graph, tokenizer=tokenizer, use_kg=self.config.use_kg,
            image_dim=catalog.config.image_dim, seed=self.config.seed)
        self.tokenizer = self.data_builder.tokenizer
        model_config = model_config or MPlugConfig()
        model_config.vocab_size = self.tokenizer.vocab_size
        model_config.image_dim = catalog.config.image_dim
        model_config.use_kg = self.config.use_kg
        self.model_config = model_config
        self.model = MPlugModel(model_config)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def pretrain(self) -> PretrainingReport:
        """Run the configured number of steps and return the loss report."""
        report = PretrainingReport()
        optimizer = AdamW(self.model.parameters(),
                          learning_rate=self.config.learning_rate,
                          weight_decay=self.config.weight_decay)
        schedule = LinearWarmupSchedule(optimizer, total_steps=self.config.steps,
                                        warmup_fraction=self.config.warmup_fraction)
        batches = self.data_builder.batches(batch_size=self.config.batch_size,
                                            max_examples=self.config.max_examples)
        if not batches:
            return report
        weights = self.config.objective_weights
        self.model.train()
        for step in range(self.config.steps):
            batch = batches[step % len(batches)]
            optimizer.zero_grad()
            total, step_losses = self._step_losses(batch, step)
            total.backward()
            optimizer.clip_gradients(self.config.gradient_clip)
            schedule.step()
            optimizer.step()
            for name, value in step_losses.items():
                report.record(name, value)
            report.record("total", total.item())
        return report

    def _step_losses(self, batch: PretrainBatch, step: int):
        """Compute the four objective losses and their weighted sum."""
        masked_ids, labels = self.data_builder.mask_tokens(
            batch.input_ids, self.config.mlm_probability, seed=step)
        objective_tensors = {
            "itc": image_text_contrastive_loss(self.model, batch),
            "itm": image_text_matching_loss(self.model, batch,
                                            seed=self.config.seed + step),
            "mlm": masked_language_modeling_loss(self.model, batch, masked_ids, labels),
            "prefix_lm": prefix_language_modeling_loss(
                self.model, batch, bos_id=self.tokenizer.bos_id,
                pad_id=self.tokenizer.pad_id),
        }
        losses = {name: tensor.item() for name, tensor in objective_tensors.items()}
        total = None
        for name, tensor in objective_tensors.items():
            weight = self.config.objective_weights.get(name, 0.0)
            if weight <= 0:
                continue
            weighted = tensor * weight
            total = weighted if total is None else total + weighted
        if total is None:
            raise ValueError("all objective weights are zero; nothing to optimize")
        return total, losses

    # ------------------------------------------------------------------ #
    # inference helpers shared by downstream tasks
    # ------------------------------------------------------------------ #
    def encode_source(self, texts: List[str], product_ids: Optional[List[Optional[str]]] = None,
                      max_length: int = 48):
        """Tokenize source texts with optional KG enhancement per product."""
        if product_ids is None:
            product_ids = [None] * len(texts)
        enhanced = [self.data_builder.enhance_with_kg(text, product_id)
                    for text, product_id in zip(texts, product_ids)]
        return self.tokenizer.encode_batch(enhanced, max_length=max_length)
