"""Word-level tokenizer and the "unified text tokens" rendering.

The paper converts texts and KG triples into unified text tokens: a triple
⟨iPhone 14 Pro, Weight, 206g⟩ becomes the token sequence
``iPhone 14 Pro Weight 206g [SEP]`` appended to the item text.  The
tokenizer here is word-level with a frequency-capped vocabulary and the
usual special tokens; it provides encode/decode round-trips, padding and
batching used by the pre-training and downstream-task code.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.kg.triple import Triple

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
MASK_TOKEN = "[MASK]"
BOS_TOKEN = "[BOS]"
EOS_TOKEN = "[EOS]"

SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN, MASK_TOKEN,
                  BOS_TOKEN, EOS_TOKEN)


def simple_word_tokenize(text: str) -> List[str]:
    """Lower-cased whitespace/punctuation word tokenization."""
    tokens: List[str] = []
    current: List[str] = []
    for char in text.lower():
        if char.isalnum() or char in "@#":
            current.append(char)
        else:
            if current:
                tokens.append("".join(current))
                current = []
            if not char.isspace() and char not in "'\"":
                tokens.append(char)
    if current:
        tokens.append("".join(current))
    return tokens


def render_triple(triple: Triple | Tuple[str, str, str],
                  labels: Optional[Dict[str, str]] = None) -> str:
    """Render a KG triple as text tokens: ``head relation tail [SEP]``."""
    labels = labels or {}
    head, relation, tail = tuple(triple)
    return " ".join([labels.get(head, head), labels.get(relation, relation),
                     labels.get(tail, tail), SEP_TOKEN])


def render_unified_text(text: str, triples: Sequence[Triple | Tuple[str, str, str]] = (),
                        labels: Optional[Dict[str, str]] = None) -> str:
    """Append rendered KG triples to a text (the KG-enhanced encoder input)."""
    parts = [text]
    for triple in triples:
        parts.append(render_triple(triple, labels))
    return " ".join(parts)


@dataclass
class EncodedBatch:
    """A padded batch of token ids plus the attention mask."""

    input_ids: np.ndarray       # (batch, length) int64
    attention_mask: np.ndarray  # (batch, length) 1/0

    @property
    def batch_size(self) -> int:
        return int(self.input_ids.shape[0])

    @property
    def length(self) -> int:
        return int(self.input_ids.shape[1])


class Tokenizer:
    """Word-level tokenizer with a frequency-capped vocabulary."""

    def __init__(self, max_vocab_size: int = 4000, min_frequency: int = 1) -> None:
        self.max_vocab_size = int(max_vocab_size)
        self.min_frequency = int(min_frequency)
        self.token_to_id: Dict[str, int] = {}
        self.id_to_token: List[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)

    def _add(self, token: str) -> int:
        if token in self.token_to_id:
            return self.token_to_id[token]
        index = len(self.id_to_token)
        self.token_to_id[token] = index
        self.id_to_token.append(token)
        return index

    # ------------------------------------------------------------------ #
    # vocabulary
    # ------------------------------------------------------------------ #
    def fit(self, texts: Iterable[str]) -> "Tokenizer":
        """Build the vocabulary from a corpus."""
        counter: Counter[str] = Counter()
        for text in texts:
            counter.update(simple_word_tokenize(text))
        budget = self.max_vocab_size - len(SPECIAL_TOKENS)
        for token, count in counter.most_common():
            if budget <= 0:
                break
            if count < self.min_frequency:
                break
            if token not in self.token_to_id:
                self._add(token)
                budget -= 1
        return self

    @property
    def vocab_size(self) -> int:
        return len(self.id_to_token)

    @property
    def pad_id(self) -> int:
        return self.token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self.token_to_id[UNK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self.token_to_id[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self.token_to_id[SEP_TOKEN]

    @property
    def mask_id(self) -> int:
        return self.token_to_id[MASK_TOKEN]

    @property
    def bos_id(self) -> int:
        return self.token_to_id[BOS_TOKEN]

    @property
    def eos_id(self) -> int:
        return self.token_to_id[EOS_TOKEN]

    def special_ids(self) -> List[int]:
        """Ids of all special tokens (excluded from MLM masking)."""
        return [self.token_to_id[token] for token in SPECIAL_TOKENS]

    # ------------------------------------------------------------------ #
    # encode / decode
    # ------------------------------------------------------------------ #
    def encode(self, text: str, max_length: Optional[int] = None,
               add_cls: bool = True, add_eos: bool = False) -> List[int]:
        """Encode one text into token ids."""
        ids = [self.cls_id] if add_cls else []
        for token in simple_word_tokenize(text):
            ids.append(self.token_to_id.get(token, self.unk_id))
        if add_eos:
            ids.append(self.eos_id)
        if max_length is not None:
            ids = ids[:max_length]
        return ids

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> str:
        """Decode token ids back to a string."""
        tokens = []
        special = set(self.special_ids())
        for token_id in ids:
            token_id = int(token_id)
            if skip_special and token_id in special:
                continue
            if 0 <= token_id < len(self.id_to_token):
                tokens.append(self.id_to_token[token_id])
        return " ".join(tokens)

    def encode_batch(self, texts: Sequence[str], max_length: int = 48,
                     add_cls: bool = True, add_eos: bool = False) -> EncodedBatch:
        """Encode and pad a batch of texts."""
        encoded = [self.encode(text, max_length, add_cls, add_eos) for text in texts]
        length = max((len(ids) for ids in encoded), default=1)
        input_ids = np.full((len(encoded), length), self.pad_id, dtype=np.int64)
        attention_mask = np.zeros((len(encoded), length), dtype=np.int64)
        for row, ids in enumerate(encoded):
            input_ids[row, :len(ids)] = ids
            attention_mask[row, :len(ids)] = 1
        return EncodedBatch(input_ids=input_ids, attention_mask=attention_mask)
