"""Metrics for the downstream tasks: accuracy, set P/R/F1 and ROUGE-L."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def accuracy_score(gold: Sequence[object], predicted: Sequence[object]) -> float:
    """Fraction of positions where prediction equals gold (0.0 for empty input)."""
    if len(gold) != len(predicted):
        raise ValueError("gold and predicted must have the same length")
    if not gold:
        return 0.0
    correct = sum(1 for g, p in zip(gold, predicted) if g == p)
    return correct / len(gold)


def precision_recall_f1(gold_items: Iterable[Sequence[Tuple]],
                        predicted_items: Iterable[Sequence[Tuple]]) -> Dict[str, float]:
    """Micro-averaged precision/recall/F1 over per-example sets of tuples.

    Used for NER (sets of (type, surface) spans) and review IE (sets of
    (aspect, opinion) pairs).  Duplicate predictions within one example
    count once.
    """
    true_positives = 0
    predicted_total = 0
    gold_total = 0
    for gold, predicted in zip(gold_items, predicted_items):
        gold_set = set(gold)
        predicted_set = set(predicted)
        true_positives += len(gold_set & predicted_set)
        predicted_total += len(predicted_set)
        gold_total += len(gold_set)
    precision = true_positives / predicted_total if predicted_total else 0.0
    recall = true_positives / gold_total if gold_total else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return {"precision": precision, "recall": recall, "f1": f1}


def _lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Length of the longest common subsequence of two token lists."""
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for token_a in a:
        current = [0]
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[j - 1]))
        previous = current
    return previous[-1]


def rouge_l(gold: str, predicted: str) -> float:
    """Sentence-level ROUGE-L F-measure over whitespace tokens."""
    gold_tokens = gold.lower().split()
    predicted_tokens = predicted.lower().split()
    if not gold_tokens or not predicted_tokens:
        return 0.0
    lcs = _lcs_length(gold_tokens, predicted_tokens)
    if lcs == 0:
        return 0.0
    precision = lcs / len(predicted_tokens)
    recall = lcs / len(gold_tokens)
    return 2 * precision * recall / (precision + recall)


def mean_rouge_l(gold_texts: Sequence[str], predicted_texts: Sequence[str]) -> float:
    """Average ROUGE-L over a corpus of (gold, predicted) pairs."""
    if not gold_texts:
        return 0.0
    scores = [rouge_l(gold, predicted) for gold, predicted in zip(gold_texts, predicted_texts)]
    return sum(scores) / len(scores)
