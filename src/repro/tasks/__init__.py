"""Downstream tasks enhanced with the pre-trained OpenBG model (Section IV).

Five tasks: category prediction, NER for item titles, title summarization,
information extraction for reviews, and commonsense salience evaluation.
Each task module builds its dataset from the synthetic catalog, fine-tunes /
probes the chosen backbone (general-domain baseline, mPLUG-style model with
or without KG enhancement, base or large capacity), and reports the paper's
metric.  Low-resource (1-shot / 5-shot) splits reproduce Tables VI and VII.
"""

from repro.tasks.metrics import accuracy_score, precision_recall_f1, rouge_l
from repro.tasks.encoders import TextBackbone, build_backbone, BackboneSpec
from repro.tasks.probe import LinearProbe, TokenProbe
from repro.tasks.category_prediction import CategoryPredictionTask
from repro.tasks.ner_titles import TitleNerTask
from repro.tasks.title_summarization import TitleSummarizationTask
from repro.tasks.ie_reviews import ReviewIeTask
from repro.tasks.salience import SalienceEvaluationTask
from repro.tasks.low_resource import few_shot_indices

__all__ = [
    "accuracy_score",
    "precision_recall_f1",
    "rouge_l",
    "TextBackbone",
    "build_backbone",
    "BackboneSpec",
    "LinearProbe",
    "TokenProbe",
    "CategoryPredictionTask",
    "TitleNerTask",
    "TitleSummarizationTask",
    "ReviewIeTask",
    "SalienceEvaluationTask",
    "few_shot_indices",
]
