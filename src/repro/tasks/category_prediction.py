"""Category prediction (Table V column 1, Table VI for low-resource).

Given an item title, predict its leaf category — link prediction for the
(item, rdfs:subClassOf, ?) query formulated as classification.  The task
builds its dataset from the synthetic catalog, trains a linear probe over
backbone sentence embeddings, and reports accuracy; 1-shot / 5-shot splits
reproduce the low-resource setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datagen.catalog import Catalog
from repro.errors import TaskError
from repro.tasks.encoders import TextBackbone
from repro.tasks.low_resource import few_shot_indices
from repro.tasks.metrics import accuracy_score
from repro.tasks.probe import LinearProbe
from repro.utils.rng import derive_rng


@dataclass
class CategoryExample:
    """One (title, gold category) example."""

    title: str
    product_id: str
    category_label: str


@dataclass
class CategoryPredictionDataset:
    """Train/dev split plus the label vocabulary."""

    train: List[CategoryExample] = field(default_factory=list)
    dev: List[CategoryExample] = field(default_factory=list)
    label_names: List[str] = field(default_factory=list)

    def label_index(self, label: str) -> int:
        """Integer id of a category label."""
        return self.label_names.index(label)


class CategoryPredictionTask:
    """Builds the dataset and evaluates backbones on category prediction."""

    name = "category_prediction"

    def __init__(self, catalog: Catalog, dev_fraction: float = 0.25,
                 seed: int = 0) -> None:
        self.catalog = catalog
        self.seed = int(seed)
        self.dataset = self._build_dataset(dev_fraction)

    def _build_dataset(self, dev_fraction: float) -> CategoryPredictionDataset:
        taxonomy = self.catalog.category_taxonomy
        examples = [
            CategoryExample(title=product.title, product_id=product.product_id,
                            category_label=taxonomy.node(product.category).label)
            for product in self.catalog.products
        ]
        if len(examples) < 4:
            raise TaskError("not enough products for category prediction")
        labels = sorted({example.category_label for example in examples})
        rng = derive_rng(self.seed, "category-split")
        order = rng.permutation(len(examples))
        num_dev = max(1, int(len(examples) * dev_fraction))
        dev_indices = set(int(index) for index in order[:num_dev])
        dataset = CategoryPredictionDataset(label_names=labels)
        for index, example in enumerate(examples):
            (dataset.dev if index in dev_indices else dataset.train).append(example)
        # Guarantee every label appears at least once in training: move one
        # dev example back when a label would otherwise be unseen.
        train_labels = {example.category_label for example in dataset.train}
        for example in list(dataset.dev):
            if example.category_label not in train_labels:
                dataset.dev.remove(example)
                dataset.train.append(example)
                train_labels.add(example.category_label)
        return dataset

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, backbone: TextBackbone, shots: Optional[int] = None,
                 probe_epochs: int = 80) -> Dict[str, float]:
        """Train a probe on (optionally k-shot) training data; return accuracy."""
        train = self.dataset.train
        if shots is not None:
            labels = [example.category_label for example in train]
            indices = few_shot_indices(labels, shots, seed=self.seed)
            train = [train[index] for index in indices]
        if not train or not self.dataset.dev:
            raise TaskError("category prediction requires non-empty splits")

        train_features = backbone.sentence_embeddings(
            [example.title for example in train],
            [example.product_id for example in train])
        dev_features = backbone.sentence_embeddings(
            [example.title for example in self.dataset.dev],
            [example.product_id for example in self.dataset.dev])
        train_labels = np.asarray([self.dataset.label_index(example.category_label)
                                   for example in train])
        dev_labels = [self.dataset.label_index(example.category_label)
                      for example in self.dataset.dev]

        probe = LinearProbe(num_classes=len(self.dataset.label_names),
                            epochs=probe_epochs, seed=self.seed)
        probe.fit(train_features, train_labels)
        predictions = probe.predict(dev_features).tolist()
        return {
            "accuracy": accuracy_score(dev_labels, predictions),
            "num_train": float(len(train)),
            "num_dev": float(len(self.dataset.dev)),
            "num_labels": float(len(self.dataset.label_names)),
        }

    def evaluate_low_resource(self, backbone: TextBackbone,
                              shot_settings: Sequence[int] = (1, 5),
                              probe_epochs: int = 80) -> Dict[str, float]:
        """Accuracy per k-shot setting (Table VI row for one backbone)."""
        return {f"{shots}-shot": self.evaluate(backbone, shots=shots,
                                               probe_epochs=probe_epochs)["accuracy"]
                for shots in shot_settings}
