"""Lightweight classification heads trained over backbone embeddings.

Fine-tuning the full transformer for every (task × backbone × data-scale)
cell of Tables V-VII would be prohibitively slow in pure numpy; the standard
laptop-scale substitute is the linear probe: the backbone is frozen, and a
softmax-regression head is trained on its embeddings.  This preserves the
comparison the paper makes (representation quality of general-domain vs
KG-enhanced pre-trained backbones), because all heads are identical and only
the representations differ.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import TaskError
from repro.utils.rng import derive_rng


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exponent = np.exp(shifted)
    return exponent / exponent.sum(axis=-1, keepdims=True)


class LinearProbe:
    """Multinomial logistic regression trained with full-batch gradient descent."""

    def __init__(self, num_classes: int, learning_rate: float = 0.5,
                 epochs: int = 100, l2_penalty: float = 1e-3, seed: int = 0,
                 balanced: bool = False) -> None:
        if num_classes < 2:
            raise TaskError("LinearProbe needs at least two classes")
        self.num_classes = int(num_classes)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.l2_penalty = float(l2_penalty)
        self.seed = int(seed)
        self.balanced = bool(balanced)
        self.weights: Optional[np.ndarray] = None
        self.bias: Optional[np.ndarray] = None
        self._feature_mean: Optional[np.ndarray] = None
        self._feature_std: Optional[np.ndarray] = None

    def _standardize(self, features: np.ndarray, fit: bool = False) -> np.ndarray:
        """Z-score features with statistics estimated on the training set.

        Backbone features mix components of very different scales (contextual
        hidden states vs raw token embeddings); standardization lets the
        probe use both without fighting the L2 penalty.
        """
        features = np.asarray(features, dtype=np.float64)
        if fit:
            self._feature_mean = features.mean(axis=0)
            std = features.std(axis=0)
            std[std < 1e-8] = 1.0
            self._feature_std = std
        if self._feature_mean is None or self._feature_std is None:
            return features
        return (features - self._feature_mean) / self._feature_std

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearProbe":
        """Train on (n, d) features and (n,) integer labels."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.shape[0] != labels.shape[0]:
            raise TaskError("features and labels must align")
        if features.shape[0] == 0:
            raise TaskError("cannot fit a probe on an empty dataset")
        features = self._standardize(features, fit=True)
        num_examples, dim = features.shape
        rng = derive_rng(self.seed, "linear-probe")
        self.weights = rng.normal(0.0, 0.01, (dim, self.num_classes))
        self.bias = np.zeros(self.num_classes)
        clipped = np.clip(labels, 0, self.num_classes - 1)
        one_hot = np.zeros((num_examples, self.num_classes))
        one_hot[np.arange(num_examples), clipped] = 1.0

        # Optional class balancing: weight each example inversely to its
        # class frequency (important for tagging tasks dominated by "O").
        example_weights = np.ones(num_examples)
        if self.balanced:
            counts = np.bincount(clipped, minlength=self.num_classes).astype(np.float64)
            counts[counts == 0] = 1.0
            example_weights = (num_examples / (self.num_classes * counts))[clipped]
        example_weights = example_weights / example_weights.sum()

        for _epoch in range(self.epochs):
            probabilities = _softmax(features @ self.weights + self.bias)
            error = (probabilities - one_hot) * example_weights[:, None]
            gradient_weights = features.T @ error + self.l2_penalty * self.weights
            gradient_bias = error.sum(axis=0)
            self.weights -= self.learning_rate * gradient_weights
            self.bias -= self.learning_rate * gradient_bias
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class probabilities for (n, d) features."""
        if self.weights is None or self.bias is None:
            raise TaskError("probe is not fitted")
        return _softmax(self._standardize(features) @ self.weights + self.bias)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Most probable class index per example."""
        return np.argmax(self.predict_proba(features), axis=-1)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy on a labeled set."""
        predictions = self.predict(features)
        labels = np.asarray(labels)
        if labels.size == 0:
            return 0.0
        return float(np.mean(predictions == labels))


class TokenProbe:
    """Per-token classifier over backbone token embeddings (for tagging tasks)."""

    def __init__(self, tag_vocabulary: Sequence[str], learning_rate: float = 0.5,
                 epochs: int = 150, seed: int = 0) -> None:
        self.tags: List[str] = list(tag_vocabulary)
        if "O" not in self.tags:
            self.tags.insert(0, "O")
        self._probe = LinearProbe(num_classes=len(self.tags),
                                  learning_rate=learning_rate, epochs=epochs,
                                  seed=seed, balanced=True)

    def tag_index(self, tag: str) -> int:
        """Index of a tag (unknown tags map to 'O')."""
        try:
            return self.tags.index(tag)
        except ValueError:
            return self.tags.index("O")

    def fit(self, token_features: np.ndarray, attention_mask: np.ndarray,
            tag_sequences: Sequence[Sequence[str]]) -> "TokenProbe":
        """Train on (batch, length, dim) features with per-example tag lists.

        Position 0 is the [CLS] token, so token j of the text aligns with
        feature position j + 1.
        """
        rows: List[np.ndarray] = []
        labels: List[int] = []
        for example_index, tags in enumerate(tag_sequences):
            for token_index, tag in enumerate(tags):
                feature_position = token_index + 1
                if feature_position >= token_features.shape[1]:
                    break
                if not attention_mask[example_index, feature_position]:
                    break
                rows.append(token_features[example_index, feature_position])
                labels.append(self.tag_index(tag))
        if not rows:
            raise TaskError("no labeled tokens to train on")
        self._probe.fit(np.vstack(rows), np.asarray(labels))
        return self

    def predict(self, token_features: np.ndarray, attention_mask: np.ndarray,
                token_lists: Sequence[Sequence[str]]) -> List[List[str]]:
        """Predict tag sequences aligned with the provided token lists."""
        results: List[List[str]] = []
        for example_index, tokens in enumerate(token_lists):
            tags: List[str] = []
            for token_index in range(len(tokens)):
                feature_position = token_index + 1
                if feature_position >= token_features.shape[1] or \
                        not attention_mask[example_index, feature_position]:
                    tags.append("O")
                    continue
                features = token_features[example_index, feature_position][None, :]
                tags.append(self.tags[int(self._probe.predict(features)[0])])
            results.append(tags)
        return results
