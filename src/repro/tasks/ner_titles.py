"""NER for item titles (Table V column 2, Table VII for low-resource).

The task recognizes property/value spans inside item titles (brand,
category, packing specification, ...).  Gold annotations are reconstructed
deterministically from the catalog (the same generator call that produced
the title also yields its spans).  Backbones provide per-token embeddings; a
token-level probe predicts BIO tags which are decoded back into spans and
scored with micro P/R/F1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.construction.sequence_labeling import spans_to_tags, tag_to_spans
from repro.datagen.catalog import Catalog
from repro.datagen.textgen import TextGenerator
from repro.errors import TaskError
from repro.pretrain.tokenizer import simple_word_tokenize
from repro.tasks.encoders import TextBackbone
from repro.tasks.low_resource import few_shot_indices
from repro.tasks.metrics import precision_recall_f1
from repro.tasks.probe import TokenProbe
from repro.utils.rng import derive_rng


@dataclass
class NerExample:
    """A title with its gold (entity_type, surface) spans."""

    title: str
    product_id: str
    spans: List[Tuple[str, str]] = field(default_factory=list)

    def tokens(self, max_tokens: int = 30) -> List[str]:
        """Word tokens of the title (matching the backbone tokenizer)."""
        return simple_word_tokenize(self.title)[:max_tokens]

    def tags(self, max_tokens: int = 30) -> List[str]:
        """Gold BIO tags aligned with :meth:`tokens`."""
        return spans_to_tags(self.tokens(max_tokens), self.spans,
                             surface_tokenizer=simple_word_tokenize)


@dataclass
class NerDataset:
    """Train/dev split plus the tag vocabulary."""

    train: List[NerExample] = field(default_factory=list)
    dev: List[NerExample] = field(default_factory=list)
    entity_types: List[str] = field(default_factory=list)

    def tag_vocabulary(self) -> List[str]:
        """BIO tag set derived from the entity types."""
        tags = ["O"]
        for entity_type in self.entity_types:
            tags.extend([f"B-{entity_type}", f"I-{entity_type}"])
        return tags


def reconstruct_annotations(catalog: Catalog) -> List[NerExample]:
    """Re-derive gold title spans through the deterministic text generator."""
    generator = TextGenerator(seed=catalog.config.seed)
    examples: List[NerExample] = []
    for product in catalog.products:
        category_label = catalog.category_taxonomy.node(product.category).label
        brand_label = catalog.brand_taxonomy.node(product.brand).label \
            if product.brand else None
        scene_labels = [catalog.concept_taxonomies["Scene"].node(concept).label
                        for concept in product.concept_links.get("relatedScene", [])]
        annotation = generator.title(category_label, brand_label, product.attributes,
                                     scene_labels, key=product.product_id)
        examples.append(NerExample(title=annotation.title,
                                   product_id=product.product_id,
                                   spans=list(annotation.spans)))
    return examples


class TitleNerTask:
    """Builds the NER dataset and evaluates backbones with a token probe."""

    name = "ner_for_titles"

    def __init__(self, catalog: Catalog, dev_fraction: float = 0.2,
                 max_examples: int = 200, seed: int = 0) -> None:
        self.catalog = catalog
        self.seed = int(seed)
        self.dataset = self._build_dataset(dev_fraction, max_examples)

    def _build_dataset(self, dev_fraction: float, max_examples: int) -> NerDataset:
        examples = reconstruct_annotations(self.catalog)[:max_examples]
        if len(examples) < 4:
            raise TaskError("not enough titles for NER")
        entity_types = sorted({entity_type for example in examples
                               for entity_type, _surface in example.spans})
        rng = derive_rng(self.seed, "ner-split")
        order = rng.permutation(len(examples))
        num_dev = max(1, int(len(examples) * dev_fraction))
        dev_indices = set(int(index) for index in order[:num_dev])
        dataset = NerDataset(entity_types=entity_types)
        for index, example in enumerate(examples):
            (dataset.dev if index in dev_indices else dataset.train).append(example)
        return dataset

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, backbone: TextBackbone, shots: Optional[int] = None,
                 probe_epochs: int = 60, max_tokens: int = 30) -> Dict[str, float]:
        """Train the token probe and report micro precision/recall/F1."""
        train = self.dataset.train
        if shots is not None:
            # Few-shot per entity type: an example counts for the type of its
            # first span.
            labels = [example.spans[0][0] if example.spans else "O" for example in train]
            indices = few_shot_indices(labels, shots, seed=self.seed)
            train = [train[index] for index in indices]
        if not train or not self.dataset.dev:
            raise TaskError("NER requires non-empty splits")

        train_features, train_mask, _ = backbone.token_embeddings(
            [example.title for example in train],
            [example.product_id for example in train], max_length=max_tokens + 2)
        probe = TokenProbe(self.dataset.tag_vocabulary(), epochs=probe_epochs,
                           seed=self.seed)
        probe.fit(train_features, train_mask,
                  [example.tags(max_tokens) for example in train])

        dev_features, dev_mask, _ = backbone.token_embeddings(
            [example.title for example in self.dataset.dev],
            [example.product_id for example in self.dataset.dev],
            max_length=max_tokens + 2)
        dev_tokens = [example.tokens(max_tokens) for example in self.dataset.dev]
        predicted_tags = probe.predict(dev_features, dev_mask, dev_tokens)

        # Both sides are normalized through the same word tokenizer so that
        # punctuation-splitting ("100g*3" → "100g * 3") cannot cause spurious
        # mismatches between gold and predicted surfaces.
        gold_spans = [
            {(entity_type, " ".join(simple_word_tokenize(surface)))
             for entity_type, surface in example.spans}
            for example in self.dataset.dev
        ]
        predicted_spans = [set(tag_to_spans(tokens, tags))
                           for tokens, tags in zip(dev_tokens, predicted_tags)]
        metrics = precision_recall_f1(gold_spans, predicted_spans)
        metrics["num_train"] = float(len(train))
        metrics["num_dev"] = float(len(self.dataset.dev))
        return metrics

    def evaluate_low_resource(self, backbone: TextBackbone,
                              shot_settings: Sequence[int] = (1, 5),
                              probe_epochs: int = 60) -> Dict[str, float]:
        """F1 per k-shot setting (Table VII row for one backbone)."""
        return {f"{shots}-shot": self.evaluate(backbone, shots=shots,
                                               probe_epochs=probe_epochs)["f1"]
                for shots in shot_settings}
