"""Commonsense salience evaluation (Table V column 5).

Given a triple ⟨subject, relation, concept⟩, decide whether the statement is
*salient* — characteristic enough that the concept is a key trait of the
subject (⟨running shoes, relatedScene, running⟩ yes; ⟨shoes, relatedScene,
running⟩ no).  Gold labels come from the multi-faceted commonsense scorer
fit on the catalog's product↔concept links; negatives include both
low-salience observed statements and over-generalized subjects.  Backbones
classify the textual rendering of the triple with a linear probe; the metric
is accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.datagen.catalog import Catalog
from repro.errors import TaskError
from repro.ontology.quality import CommonsenseScorer, ConceptStatement
from repro.tasks.encoders import TextBackbone
from repro.tasks.metrics import accuracy_score
from repro.tasks.probe import LinearProbe
from repro.utils.rng import derive_rng


@dataclass
class SalienceExample:
    """A triple rendered as text with its binary salience label."""

    text: str
    label: int  # 1 = salient, 0 = not salient
    statement: Tuple[str, str, str]


class SalienceEvaluationTask:
    """Builds the salience dataset and evaluates backbones."""

    name = "salience_evaluation"

    def __init__(self, catalog: Catalog, dev_fraction: float = 0.3,
                 max_examples: int = 240, seed: int = 0) -> None:
        self.catalog = catalog
        self.seed = int(seed)
        examples = self._build_examples(max_examples)
        if len(examples) < 8:
            raise TaskError("not enough statements for salience evaluation")
        rng = derive_rng(self.seed, "salience-split")
        order = rng.permutation(len(examples))
        num_dev = max(2, int(len(examples) * dev_fraction))
        dev_indices = set(int(index) for index in order[:num_dev])
        self.train: List[SalienceExample] = []
        self.dev: List[SalienceExample] = []
        for index, example in enumerate(examples):
            (self.dev if index in dev_indices else self.train).append(example)

    # ------------------------------------------------------------------ #
    # dataset construction
    # ------------------------------------------------------------------ #
    def _build_examples(self, max_examples: int) -> List[SalienceExample]:
        observations: List[ConceptStatement] = []
        concept_label = self._concept_label_lookup()
        for product in self.catalog.products:
            category_label = self.catalog.category_taxonomy.node(product.category).label
            for relation, concepts in product.concept_links.items():
                for concept in concepts:
                    observations.append(ConceptStatement(
                        subject=category_label, relation=relation,
                        concept=concept_label.get(concept, concept)))
        scorer = CommonsenseScorer().fit(observations)

        unique = sorted({statement.key() for statement in observations})
        scored = [(key, scorer.score(ConceptStatement(*key)).salience) for key in unique]
        if not scored:
            return []
        salience_values = np.array([value for _key, value in scored])
        threshold = float(np.median(salience_values))

        # Positives: observed statements whose salience is above the median
        # (typical *and* remarkable for their subject).
        examples: List[SalienceExample] = []
        positive_budget = max_examples // 2
        for (subject, relation, concept), value in scored:
            if value <= threshold:
                continue
            examples.append(SalienceExample(
                text=f"{subject} {relation} {concept}",
                label=1, statement=(subject, relation, concept)))
            if len(examples) >= positive_budget:
                break

        # Negatives of two kinds: (a) mismatched concepts never observed for
        # that subject (implausible, hence not salient) and (b) over-
        # generalized subjects (the parent-category label, as in the paper's
        # ⟨shoes, relatedScene, running⟩ example).
        observed_keys = {statement.key() for statement in observations}
        all_concepts = sorted({key[2] for key in observed_keys})
        all_subject_relations = sorted({(key[0], key[1]) for key in observed_keys})
        rng = derive_rng(self.seed, "salience-negatives")
        taxonomy = self.catalog.category_taxonomy
        negative_budget = max_examples - len(examples)
        while negative_budget > 0 and all_concepts and all_subject_relations:
            subject, relation = all_subject_relations[
                int(rng.integers(0, len(all_subject_relations)))]
            concept = all_concepts[int(rng.integers(0, len(all_concepts)))]
            if rng.random() < 0.5:
                # Mismatched concept for a specific subject.
                if (subject, relation, concept) in observed_keys:
                    continue
                examples.append(SalienceExample(
                    text=f"{subject} {relation} {concept}", label=0,
                    statement=(subject, relation, concept)))
            else:
                # Over-generalized subject: use a level-1 domain label.
                domains = [node for node in taxonomy.walk() if node.level == 1]
                domain = domains[int(rng.integers(0, len(domains)))]
                examples.append(SalienceExample(
                    text=f"{domain.label} {relation} {concept}", label=0,
                    statement=(domain.label, relation, concept)))
            negative_budget -= 1
        return examples

    def _concept_label_lookup(self) -> Dict[str, str]:
        lookup: Dict[str, str] = {}
        for taxonomy in self.catalog.concept_taxonomies.values():
            for node in taxonomy.walk():
                lookup[node.identifier] = node.label
        return lookup

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def _features(self, backbone: TextBackbone,
                  examples: List[SalienceExample]) -> np.ndarray:
        """Features: triple-text embedding ⊕ (subject ⊙ concept) interaction.

        The element-wise interaction between the subject and concept
        embeddings carries the co-occurrence signal a pre-trained backbone
        has absorbed from the e-commerce corpus; a randomly initialized
        baseline gets only noise from it — exactly the axis the paper's
        salience experiment probes.
        """
        text_features = backbone.sentence_embeddings(
            [example.text for example in examples])
        subject_features = backbone.sentence_embeddings(
            [example.statement[0] for example in examples])
        concept_features = backbone.sentence_embeddings(
            [example.statement[2] for example in examples])
        interaction = subject_features * concept_features
        return np.concatenate([text_features, interaction], axis=-1)

    def evaluate(self, backbone: TextBackbone, probe_epochs: int = 100) -> Dict[str, float]:
        """Train a binary probe on triple texts and report dev accuracy."""
        train_features = self._features(backbone, self.train)
        dev_features = self._features(backbone, self.dev)
        train_labels = np.asarray([example.label for example in self.train])
        dev_labels = [example.label for example in self.dev]
        if len(set(train_labels.tolist())) < 2:
            raise TaskError("salience training split must contain both labels")
        probe = LinearProbe(num_classes=2, epochs=probe_epochs, seed=self.seed)
        probe.fit(train_features, train_labels)
        predictions = probe.predict(dev_features).tolist()
        return {
            "accuracy": accuracy_score(dev_labels, predictions),
            "num_train": float(len(self.train)),
            "num_dev": float(len(self.dev)),
            "positive_fraction": float(np.mean([example.label for example in self.train])),
        }
