"""Task backbones: general-domain baselines and KG-enhanced pre-trained models.

The paper compares general-domain pre-trained language models (RoBERTa,
BERT, mT5, UIE) against mPLUG variants with and without KG enhancement, at
base and large capacity.  The reproduction encodes that comparison axis as
:class:`BackboneSpec` + :func:`build_backbone`:

* ``pretrained=False`` → a freshly initialized model that never saw the
  e-commerce corpus or the KG (the RoBERTa/BERT/mT5/UIE stand-ins);
* ``pretrained=True`` → the model produced by
  :class:`~repro.pretrain.pretrainer.Pretrainer`;
* ``use_kg`` controls whether KG triples are appended to task inputs as
  unified text tokens;
* ``size`` ("base" / "large") controls width and depth.

:class:`TextBackbone` wraps any of these behind one inference surface used
by the task heads: pooled sentence embeddings, per-token embeddings, and
access to the underlying generative model for the summarization task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.catalog import Catalog
from repro.kg.graph import KnowledgeGraph
from repro.nn.functional import masked_mean
from repro.pretrain.data import PretrainingDataBuilder
from repro.pretrain.mplug import MPlugConfig, MPlugModel
from repro.pretrain.pretrainer import Pretrainer, PretrainingConfig
from repro.pretrain.tokenizer import Tokenizer


@dataclass
class BackboneSpec:
    """One point on the paper's comparison axis."""

    name: str
    pretrained: bool = False
    use_kg: bool = False
    size: str = "base"
    generative: bool = True
    pretrain_steps: int = 10
    seed: int = 0

    def model_config(self, vocab_size: int, image_dim: int) -> MPlugConfig:
        """Instantiate the architecture hyper-parameters for this spec."""
        if self.size == "large":
            return MPlugConfig(vocab_size=vocab_size, dim=64, num_heads=4,
                               num_text_layers=2, num_decoder_layers=2,
                               num_visual_layers=1, image_dim=image_dim,
                               use_kg=self.use_kg, seed=self.seed)
        return MPlugConfig(vocab_size=vocab_size, dim=32, num_heads=4,
                           num_text_layers=1, num_decoder_layers=1,
                           num_visual_layers=1, image_dim=image_dim,
                           use_kg=self.use_kg, seed=self.seed)


#: The named baselines of Table V, mapped to their spec.
STANDARD_SPECS = {
    "RoBERTa-large": BackboneSpec("RoBERTa-large", pretrained=False, use_kg=False,
                                  size="large", generative=False),
    "RoBERTa-base+KG": BackboneSpec("RoBERTa-base+KG", pretrained=False, use_kg=True,
                                    size="base", generative=False),
    "BERT": BackboneSpec("BERT", pretrained=False, use_kg=False, size="base",
                         generative=False),
    "UIE": BackboneSpec("UIE", pretrained=False, use_kg=False, size="base"),
    "mT5": BackboneSpec("mT5", pretrained=False, use_kg=False, size="base"),
    "mPLUG-base": BackboneSpec("mPLUG-base", pretrained=True, use_kg=False, size="base"),
    "mPLUG-base+KG": BackboneSpec("mPLUG-base+KG", pretrained=True, use_kg=True,
                                  size="base"),
    "mPLUG-large+KG": BackboneSpec("mPLUG-large+KG", pretrained=True, use_kg=True,
                                   size="large"),
}


class TextBackbone:
    """Uniform inference interface over a (possibly pre-trained) model."""

    def __init__(self, model: MPlugModel, tokenizer: Tokenizer,
                 kg_enhancer: Optional[Callable[[str, Optional[str]], str]] = None,
                 name: str = "backbone") -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.kg_enhancer = kg_enhancer
        self.name = name

    # ------------------------------------------------------------------ #
    # text preparation
    # ------------------------------------------------------------------ #
    def prepare(self, texts: Sequence[str],
                product_ids: Optional[Sequence[Optional[str]]] = None) -> List[str]:
        """Apply KG enhancement (when configured) to raw task inputs."""
        if self.kg_enhancer is None:
            return list(texts)
        if product_ids is None:
            product_ids = [None] * len(texts)
        return [self.kg_enhancer(text, product_id)
                for text, product_id in zip(texts, product_ids)]

    # ------------------------------------------------------------------ #
    # embeddings
    # ------------------------------------------------------------------ #
    def sentence_embeddings(self, texts: Sequence[str],
                            product_ids: Optional[Sequence[Optional[str]]] = None,
                            max_length: int = 48) -> np.ndarray:
        """Pooled sentence embeddings (no gradient; used by linear probes).

        The representation concatenates the pooled contextual hidden states
        with the pooled raw token embeddings, so lexical identity is always
        available to the probe and the contextual half carries whatever
        pre-training (and KG enhancement) added on top.
        """
        prepared = self.prepare(texts, product_ids)
        self.model.eval()
        batch = self.tokenizer.encode_batch(prepared, max_length=max_length)
        hidden = self.model.encode_text(batch.input_ids, batch.attention_mask)
        raw = self.model.text_encoder.token_embedding(batch.input_ids)
        pooled_hidden = masked_mean(hidden, batch.attention_mask, axis=1).data
        pooled_raw = masked_mean(raw, batch.attention_mask, axis=1).data
        return np.concatenate([pooled_hidden, pooled_raw], axis=-1)

    def token_embeddings(self, texts: Sequence[str],
                         product_ids: Optional[Sequence[Optional[str]]] = None,
                         max_length: int = 32) -> Tuple[np.ndarray, np.ndarray, List[List[str]]]:
        """Per-token embeddings plus attention mask and the token strings.

        KG triples (when enabled) are appended *after* the original tokens,
        so positions of the original text are preserved for tagging while
        the appended triples still influence the contextual half through
        attention.  Each position's feature is the concatenation of its
        contextual hidden state and its raw token embedding.
        """
        self.model.eval()
        prepared = self.prepare(texts, product_ids)
        batch = self.tokenizer.encode_batch(prepared, max_length=max_length)
        hidden = self.model.encode_text(batch.input_ids, batch.attention_mask)
        raw = self.model.text_encoder.token_embedding(batch.input_ids)
        features = np.concatenate([hidden.data, raw.data], axis=-1)
        tokens: List[List[str]] = []
        from repro.pretrain.tokenizer import simple_word_tokenize
        for text in texts:
            tokens.append(simple_word_tokenize(text)[: max_length - 1])
        return features, batch.attention_mask, tokens

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def generate(self, texts: Sequence[str],
                 product_ids: Optional[Sequence[Optional[str]]] = None,
                 max_new_tokens: int = 10, max_length: int = 48) -> List[str]:
        """Greedy generation from prepared source texts."""
        prepared = self.prepare(texts, product_ids)
        batch = self.tokenizer.encode_batch(prepared, max_length=max_length)
        outputs = self.model.generate(batch.input_ids, batch.attention_mask,
                                      bos_id=self.tokenizer.bos_id,
                                      eos_id=self.tokenizer.eos_id,
                                      max_new_tokens=max_new_tokens)
        return [self.tokenizer.decode(ids) for ids in outputs]


def build_backbone(spec: BackboneSpec, catalog: Catalog, graph: KnowledgeGraph,
                   pretrainer: Optional[Pretrainer] = None) -> TextBackbone:
    """Construct a :class:`TextBackbone` for a spec.

    Pre-trained specs reuse (or train) a :class:`Pretrainer`; baseline specs
    get a freshly initialized model over the same tokenizer so that accuracy
    differences come from pre-training and KG enhancement, not vocabulary.
    """
    if spec.pretrained:
        if pretrainer is None:
            pretrainer = Pretrainer(
                catalog, graph,
                model_config=spec.model_config(vocab_size=1, image_dim=catalog.config.image_dim),
                config=PretrainingConfig(steps=spec.pretrain_steps, use_kg=spec.use_kg,
                                         seed=spec.seed),
            )
            pretrainer.pretrain()
        enhancer = pretrainer.data_builder.enhance_with_kg if spec.use_kg else None
        return TextBackbone(pretrainer.model, pretrainer.tokenizer,
                            kg_enhancer=enhancer, name=spec.name)

    # Baseline: same tokenizer/data plumbing, fresh (non-pretrained) weights.
    data_builder = PretrainingDataBuilder(catalog, graph, use_kg=spec.use_kg,
                                          image_dim=catalog.config.image_dim,
                                          seed=spec.seed)
    config = spec.model_config(vocab_size=data_builder.tokenizer.vocab_size,
                               image_dim=catalog.config.image_dim)
    model = MPlugModel(config)
    enhancer = data_builder.enhance_with_kg if spec.use_kg else None
    return TextBackbone(model, data_builder.tokenizer, kg_enhancer=enhancer,
                        name=spec.name)
