"""Information extraction for item reviews (Table V column 4).

From a customer review ("the quality of the cushion is nice, the size is
suitable...") the task extracts structured ⟨subject, aspect, opinion⟩
information; the reproduction scores the (aspect, opinion) pair set with
micro P/R/F1.  Gold pairs are reconstructed from the deterministic review
generator; the model tags tokens as aspect / opinion with a token probe over
backbone embeddings and pairs them up in reading order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen.catalog import Catalog
from repro.datagen.textgen import TextGenerator
from repro.errors import TaskError
from repro.pretrain.tokenizer import simple_word_tokenize
from repro.tasks.encoders import TextBackbone
from repro.tasks.metrics import precision_recall_f1
from repro.tasks.probe import TokenProbe
from repro.utils.rng import derive_rng


@dataclass
class ReviewExample:
    """A review with its gold (aspect, opinion) pairs."""

    text: str
    product_id: str
    pairs: List[Tuple[str, str]] = field(default_factory=list)

    def tokens(self, max_tokens: int = 40) -> List[str]:
        """Word tokens of the review."""
        return simple_word_tokenize(self.text)[:max_tokens]

    def tags(self, max_tokens: int = 40) -> List[str]:
        """Token tags: B-ASPECT / B-OPINION (multi-word values use I- tags)."""
        tokens = self.tokens(max_tokens)
        tags = ["O"] * len(tokens)
        lowered = [token.lower() for token in tokens]
        for aspect, opinion in self.pairs:
            self._mark(lowered, tags, aspect, "ASPECT")
            self._mark(lowered, tags, opinion, "OPINION")
        return tags

    @staticmethod
    def _mark(lowered: List[str], tags: List[str], phrase: str, label: str) -> None:
        words = phrase.lower().split()
        if not words:
            return
        for start in range(len(lowered) - len(words) + 1):
            if lowered[start:start + len(words)] == words and \
                    all(tag == "O" for tag in tags[start:start + len(words)]):
                tags[start] = f"B-{label}"
                for offset in range(1, len(words)):
                    tags[start + offset] = f"I-{label}"
                return


def reconstruct_review_annotations(catalog: Catalog,
                                   max_examples: int = 200) -> List[ReviewExample]:
    """Re-derive gold (aspect, opinion) pairs via the deterministic generator."""
    generator = TextGenerator(seed=catalog.config.seed)
    examples: List[ReviewExample] = []
    for product in catalog.products:
        category_label = catalog.category_taxonomy.node(product.category).label
        for item in product.items:
            for review_index in range(len(item.reviews)):
                annotation = generator.review(category_label,
                                              key=f"{item.item_id}_{review_index}")
                examples.append(ReviewExample(text=annotation.text,
                                              product_id=product.product_id,
                                              pairs=list(annotation.pairs)))
                if len(examples) >= max_examples:
                    return examples
    return examples


def decode_pairs(tokens: Sequence[str], tags: Sequence[str]) -> List[Tuple[str, str]]:
    """Pair tagged aspects with the nearest following opinion.

    Uses the same IOB-repair convention as
    :func:`repro.construction.sequence_labeling.tag_to_spans` (an orphan
    ``I-X`` opens a new span).
    """
    from repro.construction.sequence_labeling import tag_to_spans

    spans = tag_to_spans(tokens, tags)  # (label, surface) in reading order
    pairs: List[Tuple[str, str]] = []
    pending_aspect: Optional[str] = None
    for label, surface in spans:
        if label == "ASPECT":
            pending_aspect = surface
        elif label == "OPINION" and pending_aspect is not None:
            pairs.append((pending_aspect, surface))
            pending_aspect = None
    return pairs


class ReviewIeTask:
    """Builds the review-IE dataset and evaluates backbones."""

    name = "ie_for_reviews"

    def __init__(self, catalog: Catalog, dev_fraction: float = 0.2,
                 max_examples: int = 160, seed: int = 0) -> None:
        self.catalog = catalog
        self.seed = int(seed)
        examples = reconstruct_review_annotations(catalog, max_examples)
        if len(examples) < 4:
            raise TaskError("not enough reviews for IE")
        rng = derive_rng(self.seed, "review-ie-split")
        order = rng.permutation(len(examples))
        num_dev = max(1, int(len(examples) * dev_fraction))
        dev_indices = set(int(index) for index in order[:num_dev])
        self.train: List[ReviewExample] = []
        self.dev: List[ReviewExample] = []
        for index, example in enumerate(examples):
            (self.dev if index in dev_indices else self.train).append(example)

    def evaluate(self, backbone: TextBackbone, probe_epochs: int = 60,
                 max_tokens: int = 40) -> Dict[str, float]:
        """Train the aspect/opinion token probe and report micro P/R/F1 on pairs."""
        tag_vocabulary = ["O", "B-ASPECT", "I-ASPECT", "B-OPINION", "I-OPINION"]
        train_features, train_mask, _ = backbone.token_embeddings(
            [example.text for example in self.train], max_length=max_tokens + 2)
        probe = TokenProbe(tag_vocabulary, epochs=probe_epochs, seed=self.seed)
        probe.fit(train_features, train_mask,
                  [example.tags(max_tokens) for example in self.train])

        dev_features, dev_mask, _ = backbone.token_embeddings(
            [example.text for example in self.dev], max_length=max_tokens + 2)
        dev_tokens = [example.tokens(max_tokens) for example in self.dev]
        predicted_tags = probe.predict(dev_features, dev_mask, dev_tokens)
        predicted_pairs = [decode_pairs(tokens, tags)
                           for tokens, tags in zip(dev_tokens, predicted_tags)]
        gold_pairs = [example.pairs for example in self.dev]
        metrics = precision_recall_f1(gold_pairs, predicted_pairs)
        metrics["num_train"] = float(len(self.train))
        metrics["num_dev"] = float(len(self.dev))
        return metrics
