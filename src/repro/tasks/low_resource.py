"""Low-resource (k-shot) sampling utilities for Tables VI and VII.

The paper evaluates category prediction and title NER with 1-shot and
5-shot training sets (k examples per class / entity type).  These helpers
select the k-shot subset deterministically given a seed.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from repro.utils.rng import derive_rng


def few_shot_indices(labels: Sequence[object], shots: int, seed: int = 0) -> List[int]:
    """Indices of at most ``shots`` examples per distinct label.

    Labels can be any hashable object (category names, entity types).  The
    selection is deterministic for a given (labels, shots, seed).
    """
    if shots <= 0:
        raise ValueError("shots must be positive")
    by_label: Dict[object, List[int]] = defaultdict(list)
    for index, label in enumerate(labels):
        by_label[label].append(index)
    rng = derive_rng(seed, "few-shot", str(shots))
    chosen: List[int] = []
    for label in sorted(by_label, key=str):
        candidates = by_label[label]
        if len(candidates) <= shots:
            chosen.extend(candidates)
            continue
        picks = rng.choice(len(candidates), size=shots, replace=False)
        chosen.extend(candidates[int(pick)] for pick in picks)
    return sorted(chosen)


def few_shot_fraction(num_selected: int, total: int) -> float:
    """Fraction of the full training set retained by a k-shot selection."""
    if total <= 0:
        return 0.0
    return num_selected / total
