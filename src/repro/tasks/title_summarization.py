"""Title summarization (Table V column 3).

Long, redundant item titles are compressed into short titles.  The task
fine-tunes the backbone's generative decoder with the seq2seq (PrefixLM)
loss on (long title → short title) pairs and evaluates greedy generations
with ROUGE-L.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datagen.catalog import Catalog
from repro.errors import TaskError
from repro.nn.functional import cross_entropy
from repro.nn.optim import AdamW
from repro.tasks.encoders import TextBackbone
from repro.tasks.metrics import mean_rouge_l
from repro.utils.rng import derive_rng


@dataclass
class SummarizationExample:
    """A (long title, short title) pair."""

    long_title: str
    short_title: str
    product_id: str


@dataclass
class SummarizationDataset:
    """Train/dev split of summarization pairs."""

    train: List[SummarizationExample] = field(default_factory=list)
    dev: List[SummarizationExample] = field(default_factory=list)


class TitleSummarizationTask:
    """Builds the dataset, fine-tunes the decoder and reports ROUGE-L."""

    name = "title_summarization"

    def __init__(self, catalog: Catalog, dev_fraction: float = 0.2,
                 max_examples: int = 120, seed: int = 0) -> None:
        self.catalog = catalog
        self.seed = int(seed)
        self.dataset = self._build_dataset(dev_fraction, max_examples)

    def _build_dataset(self, dev_fraction: float,
                       max_examples: int) -> SummarizationDataset:
        examples: List[SummarizationExample] = []
        for product in self.catalog.products:
            if not product.items:
                continue
            item = product.items[0]
            examples.append(SummarizationExample(
                long_title=item.title, short_title=item.short_title(),
                product_id=product.product_id))
            if len(examples) >= max_examples:
                break
        if len(examples) < 4:
            raise TaskError("not enough items for title summarization")
        rng = derive_rng(self.seed, "summarization-split")
        order = rng.permutation(len(examples))
        num_dev = max(1, int(len(examples) * dev_fraction))
        dev_indices = set(int(index) for index in order[:num_dev])
        dataset = SummarizationDataset()
        for index, example in enumerate(examples):
            (dataset.dev if index in dev_indices else dataset.train).append(example)
        return dataset

    # ------------------------------------------------------------------ #
    # fine-tuning + evaluation
    # ------------------------------------------------------------------ #
    def fine_tune(self, backbone: TextBackbone, steps: int = 8, batch_size: int = 8,
                  learning_rate: float = 3e-3, max_source_length: int = 40,
                  max_target_length: int = 10) -> List[float]:
        """Fine-tune the backbone decoder with the seq2seq loss; returns losses."""
        tokenizer = backbone.tokenizer
        model = backbone.model
        model.train()
        optimizer = AdamW(model.parameters(), learning_rate=learning_rate)
        train = self.dataset.train
        if not train:
            raise TaskError("empty training split")
        rng = derive_rng(self.seed, "summarization-finetune")
        losses: List[float] = []
        for step in range(steps):
            picks = rng.choice(len(train), size=min(batch_size, len(train)),
                               replace=False)
            batch = [train[int(index)] for index in picks]
            sources = backbone.prepare([example.long_title for example in batch],
                                       [example.product_id for example in batch])
            source_batch = tokenizer.encode_batch(sources, max_length=max_source_length)
            target_batch = tokenizer.encode_batch(
                [example.short_title for example in batch],
                max_length=max_target_length, add_cls=False, add_eos=True)
            decoder_input = np.concatenate(
                [np.full((len(batch), 1), tokenizer.bos_id, dtype=np.int64),
                 target_batch.input_ids[:, :-1]], axis=1)
            labels = np.where(target_batch.attention_mask.astype(bool),
                              target_batch.input_ids, -100)
            optimizer.zero_grad()
            logits = model.prefix_lm_logits(source_batch.input_ids,
                                            source_batch.attention_mask, decoder_input)
            loss = cross_entropy(logits, labels, ignore_index=-100)
            loss.backward()
            optimizer.clip_gradients(5.0)
            optimizer.step()
            losses.append(loss.item())
        return losses

    def evaluate(self, backbone: TextBackbone, fine_tune_steps: int = 8,
                 max_new_tokens: int = 8) -> Dict[str, float]:
        """Fine-tune then evaluate ROUGE-L of greedy generations on dev."""
        losses = self.fine_tune(backbone, steps=fine_tune_steps)
        dev = self.dataset.dev
        generated = backbone.generate([example.long_title for example in dev],
                                      [example.product_id for example in dev],
                                      max_new_tokens=max_new_tokens)
        rouge = mean_rouge_l([example.short_title for example in dev], generated)
        return {
            "rouge_l": rouge,
            "final_fine_tune_loss": losses[-1] if losses else float("inf"),
            "first_fine_tune_loss": losses[0] if losses else float("inf"),
            "num_train": float(len(self.dataset.train)),
            "num_dev": float(len(dev)),
        }
