"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can install a single ``except ReproError`` boundary around the
pipeline and still distinguish finer-grained failure modes when needed.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class OntologyError(ReproError):
    """Raised for ontology definition problems (unknown classes, cycles...)."""


class ValidationError(ReproError):
    """Raised when a triple or instance violates ontology constraints."""


class SerializationError(ReproError):
    """Raised when (de)serializing knowledge graphs fails."""


class StorageError(SerializationError):
    """Raised when an on-disk graph store is missing, corrupt or incompatible.

    Subclasses :class:`SerializationError` so existing ``except
    SerializationError`` boundaries around load/save paths keep working.
    """


class QueryError(ReproError):
    """Raised for malformed pattern queries (bad select variables, plans
    that cannot run on the requested execution strategy)."""


class CursorError(QueryError):
    """Raised for result-cursor lifecycle violations: fetching from a
    closed/expired/unknown cursor, double-close, or a non-positive page
    size.  Subclasses :class:`QueryError` so existing query-boundary
    handlers keep working."""


class ProtocolError(ReproError):
    """Raised for network wire-protocol violations: malformed or
    truncated frames, oversized payloads, unknown message types, or a
    response that does not match its request."""


class ShardUnavailableError(ProtocolError):
    """Raised when a cluster shard (leader and every replica) is
    unreachable after bounded retries.  Carries the shard identity so a
    failed read names the machine at fault, not just "connection
    refused".  Subclasses :class:`ProtocolError` so existing transport
    boundaries keep working and the error round-trips typed through the
    wire-protocol error table."""

    def __init__(self, message: str, *, shard_index: int = -1) -> None:
        super().__init__(message)
        self.shard_index = shard_index


class ConstructionError(ReproError):
    """Raised when the KG construction pipeline cannot proceed."""


class BenchmarkError(ReproError):
    """Raised for invalid benchmark sampling configurations."""


class EmbeddingError(ReproError):
    """Raised for KG embedding model misconfiguration."""


class TrainingError(ReproError):
    """Raised when a training loop receives inconsistent inputs."""


class TaskError(ReproError):
    """Raised by downstream task datasets and fine-tuning code."""
