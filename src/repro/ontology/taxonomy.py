"""Taxonomy trees for classes and concepts.

The paper constructs the Category taxonomy top-down (define the class, then
break it down layer by layer) and concept taxonomies bottom-up (extract
instances, then summarize narrower concepts into broader ones level by
level).  :class:`Taxonomy` supports both directions and produces the level
breakdowns reported in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import OntologyError


@dataclass
class TaxonomyNode:
    """A node in a taxonomy tree."""

    identifier: str
    label: str
    parent: Optional[str] = None
    children: List[str] = field(default_factory=list)
    level: int = 0
    metadata: Dict[str, str] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children


class Taxonomy:
    """A rooted tree of :class:`TaxonomyNode` objects.

    The root has level 0; its direct children are level 1, matching the
    level-1..level-5 accounting of Table I.
    """

    def __init__(self, root_id: str, root_label: Optional[str] = None) -> None:
        self.root_id = root_id
        self.nodes: Dict[str, TaxonomyNode] = {
            root_id: TaxonomyNode(identifier=root_id, label=root_label or root_id)
        }

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, identifier: str, parent: str,
                 label: Optional[str] = None, **metadata: str) -> TaxonomyNode:
        """Add a node under ``parent``; top-down construction primitive."""
        if identifier in self.nodes:
            raise OntologyError(f"taxonomy node {identifier!r} already exists")
        parent_node = self.nodes.get(parent)
        if parent_node is None:
            raise OntologyError(f"unknown parent {parent!r} for node {identifier!r}")
        node = TaxonomyNode(
            identifier=identifier,
            label=label or identifier,
            parent=parent,
            level=parent_node.level + 1,
            metadata=dict(metadata),
        )
        self.nodes[identifier] = node
        parent_node.children.append(identifier)
        return node

    def attach_subtree(self, other: "Taxonomy", parent: str) -> None:
        """Graft another taxonomy (minus its root) under ``parent``.

        Bottom-up construction: narrower-concept clusters are built as small
        taxonomies and then summarized under a broader node.
        """
        mapping = {other.root_id: parent}
        for node in other.walk():
            if node.identifier == other.root_id:
                continue
            new_parent = mapping[node.parent]
            added = self.add_node(node.identifier, new_parent, node.label, **node.metadata)
            mapping[node.identifier] = added.identifier

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, identifier: str) -> bool:
        return identifier in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, identifier: str) -> TaxonomyNode:
        """Return the node with the given identifier."""
        try:
            return self.nodes[identifier]
        except KeyError as exc:
            raise OntologyError(f"unknown taxonomy node {identifier!r}") from exc

    def children_of(self, identifier: str) -> List[TaxonomyNode]:
        """Direct children of a node."""
        return [self.nodes[child] for child in self.node(identifier).children]

    def parent_of(self, identifier: str) -> Optional[TaxonomyNode]:
        """Direct parent of a node (None for the root)."""
        parent = self.node(identifier).parent
        return self.nodes[parent] if parent is not None else None

    def ancestors_of(self, identifier: str) -> List[TaxonomyNode]:
        """Ancestors from the direct parent up to (and including) the root."""
        chain: List[TaxonomyNode] = []
        current = self.parent_of(identifier)
        while current is not None:
            chain.append(current)
            current = self.parent_of(current.identifier)
        return chain

    def walk(self) -> Iterator[TaxonomyNode]:
        """Depth-first pre-order traversal from the root."""
        stack = [self.root_id]
        while stack:
            identifier = stack.pop()
            node = self.nodes[identifier]
            yield node
            stack.extend(reversed(node.children))

    def leaves(self) -> List[TaxonomyNode]:
        """All leaf nodes."""
        return [node for node in self.walk() if node.is_leaf]

    def level_counts(self) -> Dict[int, int]:
        """Number of nodes per level (root excluded), as in Table I."""
        counts: Dict[int, int] = {}
        for node in self.walk():
            if node.level == 0:
                continue
            counts[node.level] = counts.get(node.level, 0) + 1
        return counts

    def depth(self) -> int:
        """The maximum level present in the taxonomy."""
        return max((node.level for node in self.walk()), default=0)

    def size(self) -> int:
        """Number of nodes excluding the root (the paper's "# All" column)."""
        return len(self.nodes) - 1

    def subtree_ids(self, identifier: str) -> List[str]:
        """All node identifiers in the subtree rooted at ``identifier``."""
        result: List[str] = []
        stack = [identifier]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self.node(current).children)
        return result

    def to_triples(self, relation: str) -> List[tuple[str, str, str]]:
        """Render the tree as (child, relation, parent) tuples.

        ``relation`` is ``rdfs:subClassOf`` for class taxonomies and
        ``skos:broader`` for concept taxonomies.
        """
        rows: List[tuple[str, str, str]] = []
        for node in self.walk():
            if node.parent is not None:
                rows.append((node.identifier, relation, node.parent))
        return rows

    @classmethod
    def from_edges(cls, root_id: str,
                   edges: Iterable[tuple[str, str]]) -> "Taxonomy":
        """Build a taxonomy from (child, parent) edges (order-independent)."""
        taxonomy = cls(root_id)
        pending = list(edges)
        # Repeatedly insert edges whose parent is already present.
        progress = True
        while pending and progress:
            progress = False
            remaining = []
            for child, parent in pending:
                if parent in taxonomy.nodes and child not in taxonomy.nodes:
                    taxonomy.add_node(child, parent)
                    progress = True
                elif child in taxonomy.nodes:
                    progress = True  # duplicate edge; drop it
                else:
                    remaining.append((child, parent))
            pending = remaining
        if pending:
            raise OntologyError(
                f"{len(pending)} edges could not be attached under root {root_id!r}"
            )
        return taxonomy
