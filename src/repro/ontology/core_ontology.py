"""The OpenBG core ontology (Figure 2 of the paper).

Eight core classes/concepts:

* classes (subclasses of ``owl:Thing``): **Category**, **Brand**, **Place**;
* concepts (subclasses of ``skos:Concept``): **Time**, **Scene**, **Theme**,
  **Crowd**, **Market Segment**.

Seven core object properties link Category to the others: ``brandIs``,
``placeOfOrigin``, ``appliedTime``, ``relatedScene``, ``aboutTheme``,
``forCrowd``, ``inMarket`` (the paper's ``inMarket*`` family collapsed to a
single representative, plus the expansion helper
:func:`expand_in_market_relations` for the long-tail relation family).
Data properties cover the standard labels/comments plus product attributes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.kg.namespaces import MetaProperty
from repro.ontology.schema import (
    ClassDefinition,
    ConceptDefinition,
    OntologySchema,
    PropertyDefinition,
    PropertyKind,
    default_meta_properties,
)

#: identifier, english label, chinese label for the three core classes
CORE_CLASSES: Tuple[Tuple[str, str, str], ...] = (
    ("Category", "Category", "产品类目"),
    ("Brand", "Brand", "品牌"),
    ("Place", "Place", "地点/产地"),
)

#: identifier, english label, chinese label for the five core concepts
CORE_CONCEPTS: Tuple[Tuple[str, str, str], ...] = (
    ("Time", "Time", "时间"),
    ("Scene", "Scene", "场景"),
    ("Theme", "Theme", "主题"),
    ("Crowd", "Crowd", "人群"),
    ("MarketSegment", "Market Segment", "细分市场"),
)

#: object property → (domain, range) per Figure 2
CORE_OBJECT_PROPERTY_SIGNATURES: Dict[str, Tuple[str, str]] = {
    "brandIs": ("Category", "Brand"),
    "placeOfOrigin": ("Category", "Place"),
    "appliedTime": ("Category", "Time"),
    "relatedScene": ("Category", "Scene"),
    "aboutTheme": ("Category", "Theme"),
    "forCrowd": ("Category", "Crowd"),
    "inMarket": ("Category", "MarketSegment"),
}

#: core data properties (attribute relations) beyond the label/comment set
CORE_DATA_PROPERTIES: Tuple[str, ...] = (
    "weight",
    "size",
    "color",
    "netContent",
    "packingSpecification",
    "shelfLife",
    "storageConditions",
    "taste",
    "material",
    "ifOrganic",
    "style",
    "powerSupply",
    "screenSize",
    "batteryCapacity",
    "memoryCapacity",
)


def build_core_ontology() -> OntologySchema:
    """Construct and return the OpenBG core ontology schema.

    The returned schema contains the 3 core classes, 5 core concepts,
    7 core object properties with their domain/range constraints, the
    label/comment/image data properties counted in Table I, the attribute
    data properties, and the imported W3C meta-properties.
    """
    schema = OntologySchema(name="OpenBG-core")

    for identifier, label, label_zh in CORE_CLASSES:
        schema.add_class(ClassDefinition(identifier=identifier, label=label,
                                         label_zh=label_zh))
    for identifier, label, label_zh in CORE_CONCEPTS:
        schema.add_concept(ConceptDefinition(identifier=identifier, label=label,
                                             label_zh=label_zh))

    for identifier, (domain, range_) in CORE_OBJECT_PROPERTY_SIGNATURES.items():
        schema.add_property(PropertyDefinition(
            identifier=identifier, kind=PropertyKind.OBJECT, label=identifier,
            domain=domain, range=range_,
        ))

    label_properties = (
        MetaProperty.LABEL.value,
        MetaProperty.LABEL_EN.value,
        MetaProperty.PREF_LABEL.value,
        MetaProperty.ALT_LABEL.value,
        MetaProperty.COMMENT.value,
        MetaProperty.IMAGE_IS.value,
    )
    for identifier in label_properties + CORE_DATA_PROPERTIES:
        schema.add_property(PropertyDefinition(
            identifier=identifier, kind=PropertyKind.DATA, label=identifier,
            domain="Category",
        ))

    for definition in default_meta_properties():
        schema.add_property(definition)
    return schema


def expand_in_market_relations(count: int) -> List[str]:
    """Expand the ``inMarket*`` relation family to ``count`` concrete relations.

    The paper abbreviates a whole set of Category→MarketSegment relations as
    ``inMarket*`` (it dominates Table I with ~1.65 billion triples).  The
    synthetic catalog uses a parameterizable number of such relations, named
    ``inMarket_000``, ``inMarket_001``, ... so the long-tail relation
    distribution of Figure 5 can be reproduced.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [f"inMarket_{index:03d}" for index in range(count)]


def register_in_market_relations(schema: OntologySchema, count: int) -> List[str]:
    """Register ``count`` inMarket_* object properties on ``schema``."""
    names = expand_in_market_relations(count)
    for name in names:
        schema.add_property(PropertyDefinition(
            identifier=name, kind=PropertyKind.OBJECT, label=name,
            domain="Category", range="MarketSegment",
        ))
    return names


def ontology_edge_list() -> List[Tuple[str, str, str]]:
    """The Figure-2 edges as (head, relation, tail) tuples.

    Used by the Figure 2 benchmark to print / check the core ontology graph:
    the three classes are subclasses of owl:Thing, the five concepts are
    broader-linked to skos:Concept, and the object properties connect
    Category to every other core node.
    """
    edges: List[Tuple[str, str, str]] = []
    for identifier, _label, _zh in CORE_CLASSES:
        edges.append((identifier, MetaProperty.SUBCLASS_OF.value, "owl:Thing"))
    for identifier, _label, _zh in CORE_CONCEPTS:
        edges.append((identifier, MetaProperty.BROADER.value, "skos:Concept"))
    for relation, (domain, range_) in CORE_OBJECT_PROPERTY_SIGNATURES.items():
        edges.append((domain, relation, range_))
    return edges
