"""Ontology-aware validation of knowledge-graph triples.

The paper motivates OpenBG with the "deficient structure" challenge: noisy
big data yields redundancy (the same surface form used both as a class
instance and as an attribute value) and incompleteness (related classes not
linked).  The validator enforces the constraints the ontology makes
checkable:

* object-property triples must respect domain/range (the head must be typed
  under the property's domain class, the tail under its range);
* ``rdf:type`` targets must be known classes or concepts;
* taxonomy edges must not create cycles;
* entities should carry a label (completeness warning, not an error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.kg.graph import KnowledgeGraph
from repro.kg.namespaces import MetaProperty, OWL_THING, SKOS_CONCEPT
from repro.kg.triple import Triple
from repro.ontology.schema import OntologySchema, PropertyKind


@dataclass
class ValidationIssue:
    """One violated constraint, attached to the offending triple."""

    severity: str  # "error" or "warning"
    code: str
    message: str
    triple: Triple | None = None


@dataclass
class ValidationReport:
    """The outcome of validating a graph against a schema."""

    issues: List[ValidationIssue] = field(default_factory=list)
    checked_triples: int = 0

    @property
    def errors(self) -> List[ValidationIssue]:
        """Issues with severity ``error``."""
        return [issue for issue in self.issues if issue.severity == "error"]

    @property
    def warnings(self) -> List[ValidationIssue]:
        """Issues with severity ``warning``."""
        return [issue for issue in self.issues if issue.severity == "warning"]

    @property
    def is_valid(self) -> bool:
        """True when no errors were found (warnings allowed)."""
        return not self.errors

    def summary(self) -> Dict[str, int]:
        """Counts per issue code."""
        counts: Dict[str, int] = {}
        for issue in self.issues:
            counts[issue.code] = counts.get(issue.code, 0) + 1
        return counts


class OntologyValidator:
    """Validates a :class:`KnowledgeGraph` against an :class:`OntologySchema`."""

    def __init__(self, schema: OntologySchema) -> None:
        self.schema = schema

    def validate(self, graph: KnowledgeGraph) -> ValidationReport:
        """Run all checks and return a report."""
        report = ValidationReport()
        self._check_taxonomy_acyclic(graph, report)
        for triple in graph.triples():
            report.checked_triples += 1
            self._check_triple(graph, triple, report)
        self._check_entity_labels(graph, report)
        return report

    # ------------------------------------------------------------------ #
    # individual checks
    # ------------------------------------------------------------------ #
    def _check_triple(self, graph: KnowledgeGraph, triple: Triple,
                      report: ValidationReport) -> None:
        kind = self.schema.property_kind(triple.relation)
        if triple.relation == MetaProperty.TYPE.value:
            self._check_type_triple(graph, triple, report)
            return
        if kind is None:
            if triple.relation not in graph.object_properties and \
                    triple.relation not in graph.data_properties and \
                    triple.relation not in graph.meta_properties:
                report.issues.append(ValidationIssue(
                    severity="warning", code="unknown-relation",
                    message=f"relation {triple.relation!r} is not declared in the schema",
                    triple=triple,
                ))
            return
        if kind is PropertyKind.OBJECT:
            self._check_object_triple(graph, triple, report)

    def _check_type_triple(self, graph: KnowledgeGraph, triple: Triple,
                           report: ValidationReport) -> None:
        target = triple.tail
        # Instance-level typing is allowed: an item is an instance of a
        # product, which is itself an entity (not a class) — the paper's
        # item/product distinction.  So a registered entity is a valid
        # rdf:type target as long as it is typed itself.
        known = (
            target in graph.classes or target in graph.concepts
            or self.schema.is_class(target) or self.schema.is_concept(target)
            or target in (OWL_THING, SKOS_CONCEPT)
            or (target in graph.entities and bool(graph.types_of(target)))
        )
        if not known:
            report.issues.append(ValidationIssue(
                severity="error", code="type-target-unknown",
                message=f"rdf:type target {target!r} is not a known class or concept",
                triple=triple,
            ))

    def _check_object_triple(self, graph: KnowledgeGraph, triple: Triple,
                             report: ValidationReport) -> None:
        definition = self.schema.properties[triple.relation]
        if definition.domain and not self._instance_under(graph, triple.head,
                                                          definition.domain):
            report.issues.append(ValidationIssue(
                severity="error", code="domain-violation",
                message=(f"head {triple.head!r} of {triple.relation!r} is not typed "
                         f"under domain {definition.domain!r}"),
                triple=triple,
            ))
        if definition.range and not self._instance_under(graph, triple.tail,
                                                         definition.range):
            report.issues.append(ValidationIssue(
                severity="error", code="range-violation",
                message=(f"tail {triple.tail!r} of {triple.relation!r} is not typed "
                         f"under range {definition.range!r}"),
                triple=triple,
            ))

    def _instance_under(self, graph: KnowledgeGraph, node: str, ancestor: str) -> bool:
        """True when ``node`` is (an instance of) a class/concept under ``ancestor``."""
        if graph.is_subclass_of(node, ancestor):
            return True
        for type_id in graph.types_of(node):
            if graph.is_subclass_of(type_id, ancestor):
                return True
        return False

    def _check_taxonomy_acyclic(self, graph: KnowledgeGraph,
                                report: ValidationReport) -> None:
        """Detect cycles in the subClassOf / broader graph (DFS with colors)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[str, int] = {}

        def visit(node: str) -> bool:
            color[node] = GRAY
            for parent in graph.parents(node):
                state = color.get(parent, WHITE)
                if state == GRAY:
                    return False
                if state == WHITE and not visit(parent):
                    return False
            color[node] = BLACK
            return True

        nodes = set(graph.classes) | set(graph.concepts)
        for node in sorted(nodes):
            if color.get(node, WHITE) == WHITE and not visit(node):
                report.issues.append(ValidationIssue(
                    severity="error", code="taxonomy-cycle",
                    message=f"taxonomy cycle detected reachable from {node!r}",
                ))
                return

    def _check_entity_labels(self, graph: KnowledgeGraph,
                             report: ValidationReport) -> None:
        for entity in sorted(graph.entities):
            if entity not in graph.labels:
                report.issues.append(ValidationIssue(
                    severity="warning", code="missing-label",
                    message=f"entity {entity!r} has no rdfs:label",
                ))
