"""Multi-faceted commonsense quality scoring for concept statements.

Section II-C of the paper evaluates concept-oriented statements (e.g.
⟨sports shoes, forCrowd, the elderly⟩) along four dimensions borrowed from
multi-faceted commonsense knowledge work:

* **plausibility** — is the statement meaningful at all;
* **typicality** — does it hold for the majority of instances;
* **remarkability** — is the concept distinguishable from closely related ones;
* **salience** — is the statement characteristic (typical *and* remarkable).

Production OpenBG scores these with human review plus learned models; the
reproduction scores them from corpus co-occurrence statistics, which keeps
the exact interface and decision rule (salience ⇐ typicality ∧ remarkability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple


@dataclass(frozen=True)
class ConceptStatement:
    """A concept-oriented statement ⟨subject, relation, concept⟩."""

    subject: str
    relation: str
    concept: str

    def key(self) -> Tuple[str, str, str]:
        """Tuple key used by the scorer's co-occurrence tables."""
        return (self.subject, self.relation, self.concept)


@dataclass
class QualityDimensions:
    """Scores in [0, 1] for the four commonsense dimensions."""

    plausibility: float
    typicality: float
    remarkability: float
    salience: float

    def is_salient(self, threshold: float = 0.5) -> bool:
        """Binary salience decision (used by the salience-evaluation task)."""
        return self.salience >= threshold


class CommonsenseScorer:
    """Scores concept statements from (subject, relation, concept) observations.

    The scorer is fit on a corpus of observed statements — in the
    reproduction these come from the synthetic catalog's product↔concept
    links — and derives:

    * plausibility from whether the pair was ever observed (with smoothing),
    * typicality from P(concept | subject, relation),
    * remarkability from how concentrated the concept is on this subject
      relative to its overall popularity (a PMI-like contrast),
    * salience as the geometric mean of typicality and remarkability,
      mirroring the paper's "typicality ∧ remarkability ⇒ salience" rule.
    """

    def __init__(self, smoothing: float = 0.5) -> None:
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.smoothing = smoothing
        self._pair_counts: Dict[Tuple[str, str, str], float] = {}
        self._subject_counts: Dict[Tuple[str, str], float] = {}
        self._concept_counts: Dict[Tuple[str, str], float] = {}
        self._total = 0.0

    def fit(self, observations: Iterable[ConceptStatement],
            weights: Mapping[Tuple[str, str, str], float] | None = None) -> "CommonsenseScorer":
        """Accumulate co-occurrence counts from observed statements."""
        for statement in observations:
            weight = 1.0
            if weights is not None:
                weight = float(weights.get(statement.key(), 1.0))
            key = statement.key()
            self._pair_counts[key] = self._pair_counts.get(key, 0.0) + weight
            subject_key = (statement.subject, statement.relation)
            concept_key = (statement.relation, statement.concept)
            self._subject_counts[subject_key] = self._subject_counts.get(subject_key, 0.0) + weight
            self._concept_counts[concept_key] = self._concept_counts.get(concept_key, 0.0) + weight
            self._total += weight
        return self

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def score(self, statement: ConceptStatement) -> QualityDimensions:
        """Score one statement along the four dimensions."""
        pair = self._pair_counts.get(statement.key(), 0.0)
        subject_total = self._subject_counts.get((statement.subject, statement.relation), 0.0)
        concept_total = self._concept_counts.get((statement.relation, statement.concept), 0.0)

        plausibility = pair / (pair + self.smoothing)
        typicality = (pair + self.smoothing * 0.1) / (subject_total + self.smoothing) \
            if subject_total or pair else 0.0

        if concept_total > 0 and self._total > 0:
            expected = concept_total / self._total
            observed = pair / subject_total if subject_total > 0 else 0.0
            lift = observed / (expected + 1e-9)
            remarkability = lift / (lift + 1.0)
        else:
            remarkability = 0.0

        salience = (typicality * remarkability) ** 0.5
        return QualityDimensions(
            plausibility=min(1.0, plausibility),
            typicality=min(1.0, typicality),
            remarkability=min(1.0, remarkability),
            salience=min(1.0, salience),
        )

    def score_many(self, statements: Iterable[ConceptStatement]) -> List[QualityDimensions]:
        """Score a batch of statements."""
        return [self.score(statement) for statement in statements]

    def rank_concepts_for_subject(self, subject: str, relation: str,
                                  top_k: int = 10) -> List[Tuple[str, float]]:
        """Concepts ranked by salience for a given (subject, relation)."""
        candidates = [
            concept for (subj, rel, concept) in self._pair_counts
            if subj == subject and rel == relation
        ]
        scored = [
            (concept, self.score(ConceptStatement(subject, relation, concept)).salience)
            for concept in candidates
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:top_k]
