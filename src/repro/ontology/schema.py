"""Schema objects for the OpenBG ontology.

The ontology O = {C, P, R} comprises classes C (Category, Brand, Place and
their subclasses), concepts P (Time, Scene, Theme, Crowd, Market Segment),
and relations R split into object properties, data properties and
meta-properties.  These dataclasses are the canonical, validated
representation the rest of the library builds against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional

from repro.errors import OntologyError
from repro.kg.namespaces import MetaProperty, OWL_THING, SKOS_CONCEPT


class PropertyKind(str, Enum):
    """The three relation families of the OpenBG ontology."""

    OBJECT = "object"
    DATA = "data"
    META = "meta"


@dataclass(frozen=True)
class ClassDefinition:
    """A class in the ontology (subclass of ``owl:Thing``).

    ``parent`` is the identifier of the superclass; top-level core classes
    have ``owl:Thing`` as parent.
    """

    identifier: str
    label: str
    parent: str = OWL_THING
    label_zh: Optional[str] = None
    description: str = ""


@dataclass(frozen=True)
class ConceptDefinition:
    """A concept (simple class, subclass of ``skos:Concept``).

    Concepts bridge the gap between user needs and products; they carry a
    label but no complex attribute semantics.
    """

    identifier: str
    label: str
    broader: str = SKOS_CONCEPT
    label_zh: Optional[str] = None
    description: str = ""


@dataclass(frozen=True)
class PropertyDefinition:
    """A relation definition with optional domain/range constraints.

    For object properties the paper constrains both ends: e.g. the domain of
    ``placeOfOrigin`` must be Category (or a subclass) and its range Place.
    Data properties constrain only the domain; their range is a literal.
    Meta-properties are the imported W3C axiom relations.
    """

    identifier: str
    kind: PropertyKind
    label: str = ""
    domain: Optional[str] = None
    range: Optional[str] = None
    super_property: Optional[str] = None
    equivalent_property: Optional[str] = None


class OntologySchema:
    """A registry of class, concept and property definitions.

    The schema is the contract between the construction pipeline (which
    populates the KG) and the validator (which checks domain/range and
    taxonomy consistency).
    """

    def __init__(self, name: str = "OpenBG-core") -> None:
        self.name = name
        self.classes: Dict[str, ClassDefinition] = {}
        self.concepts: Dict[str, ConceptDefinition] = {}
        self.properties: Dict[str, PropertyDefinition] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add_class(self, definition: ClassDefinition) -> None:
        """Register a class definition; parents must exist (or be owl:Thing)."""
        if definition.identifier in self.classes:
            raise OntologyError(f"class {definition.identifier!r} already defined")
        if definition.parent != OWL_THING and definition.parent not in self.classes:
            raise OntologyError(
                f"class {definition.identifier!r} references unknown parent "
                f"{definition.parent!r}"
            )
        self.classes[definition.identifier] = definition

    def add_concept(self, definition: ConceptDefinition) -> None:
        """Register a concept definition; broader must exist (or be skos:Concept)."""
        if definition.identifier in self.concepts:
            raise OntologyError(f"concept {definition.identifier!r} already defined")
        if definition.broader != SKOS_CONCEPT and definition.broader not in self.concepts:
            raise OntologyError(
                f"concept {definition.identifier!r} references unknown broader "
                f"{definition.broader!r}"
            )
        self.concepts[definition.identifier] = definition

    def add_property(self, definition: PropertyDefinition) -> None:
        """Register a property; object-property domain/range must be known."""
        if definition.identifier in self.properties:
            raise OntologyError(f"property {definition.identifier!r} already defined")
        if definition.kind is PropertyKind.OBJECT:
            for end, value in (("domain", definition.domain), ("range", definition.range)):
                if value is None:
                    raise OntologyError(
                        f"object property {definition.identifier!r} must declare a {end}"
                    )
                if value not in self.classes and value not in self.concepts:
                    raise OntologyError(
                        f"object property {definition.identifier!r} {end} {value!r} "
                        "is not a known class or concept"
                    )
        self.properties[definition.identifier] = definition

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def is_class(self, identifier: str) -> bool:
        """True when the identifier is a registered class."""
        return identifier in self.classes

    def is_concept(self, identifier: str) -> bool:
        """True when the identifier is a registered concept."""
        return identifier in self.concepts

    def property_kind(self, identifier: str) -> Optional[PropertyKind]:
        """Return the kind of a property, or None when unknown."""
        definition = self.properties.get(identifier)
        return definition.kind if definition else None

    def object_properties(self) -> List[PropertyDefinition]:
        """All object-property definitions."""
        return [p for p in self.properties.values() if p.kind is PropertyKind.OBJECT]

    def data_properties(self) -> List[PropertyDefinition]:
        """All data-property definitions."""
        return [p for p in self.properties.values() if p.kind is PropertyKind.DATA]

    def meta_properties(self) -> List[PropertyDefinition]:
        """All meta-property definitions."""
        return [p for p in self.properties.values() if p.kind is PropertyKind.META]

    def class_ancestors(self, identifier: str) -> List[str]:
        """Superclass chain of a class, nearest first, ending at owl:Thing."""
        chain: List[str] = []
        current = self.classes.get(identifier)
        seen = {identifier}
        while current is not None and current.parent != OWL_THING:
            parent = current.parent
            if parent in seen:
                raise OntologyError(f"cycle detected in class hierarchy at {parent!r}")
            chain.append(parent)
            seen.add(parent)
            current = self.classes.get(parent)
        chain.append(OWL_THING)
        return chain

    def concept_ancestors(self, identifier: str) -> List[str]:
        """Broader chain of a concept, nearest first, ending at skos:Concept."""
        chain: List[str] = []
        current = self.concepts.get(identifier)
        seen = {identifier}
        while current is not None and current.broader != SKOS_CONCEPT:
            broader = current.broader
            if broader in seen:
                raise OntologyError(f"cycle detected in concept hierarchy at {broader!r}")
            chain.append(broader)
            seen.add(broader)
            current = self.concepts.get(broader)
        chain.append(SKOS_CONCEPT)
        return chain

    def is_subclass_of(self, identifier: str, ancestor: str) -> bool:
        """True when ``ancestor`` appears in the superclass/broader chain."""
        if identifier == ancestor:
            return True
        if identifier in self.classes:
            return ancestor in self.class_ancestors(identifier)
        if identifier in self.concepts:
            return ancestor in self.concept_ancestors(identifier)
        return False

    def describe(self) -> Dict[str, int]:
        """Size summary of the schema."""
        return {
            "classes": len(self.classes),
            "concepts": len(self.concepts),
            "object_properties": len(self.object_properties()),
            "data_properties": len(self.data_properties()),
            "meta_properties": len(self.meta_properties()),
        }


def default_meta_properties() -> Iterable[PropertyDefinition]:
    """The W3C meta-properties the paper imports (taxonomy, synonymy, typing)."""
    for prop in (
        MetaProperty.SUBCLASS_OF,
        MetaProperty.BROADER,
        MetaProperty.TYPE,
        MetaProperty.EQUIVALENT_CLASS,
        MetaProperty.SUBPROPERTY_OF,
        MetaProperty.EQUIVALENT_PROPERTY,
    ):
        yield PropertyDefinition(identifier=prop.value, kind=PropertyKind.META,
                                 label=prop.name.lower())
