"""Ontology layer: schema definitions, the OpenBG core ontology, taxonomies,
validation against domain/range constraints, and multi-faceted commonsense
quality scoring (plausibility / typicality / remarkability / salience).
"""

from repro.ontology.schema import (
    ClassDefinition,
    ConceptDefinition,
    OntologySchema,
    PropertyDefinition,
    PropertyKind,
)
from repro.ontology.core_ontology import build_core_ontology, CORE_CLASSES, CORE_CONCEPTS
from repro.ontology.taxonomy import Taxonomy, TaxonomyNode
from repro.ontology.validation import OntologyValidator, ValidationReport
from repro.ontology.quality import CommonsenseScorer, ConceptStatement, QualityDimensions

__all__ = [
    "ClassDefinition",
    "ConceptDefinition",
    "OntologySchema",
    "PropertyDefinition",
    "PropertyKind",
    "build_core_ontology",
    "CORE_CLASSES",
    "CORE_CONCEPTS",
    "Taxonomy",
    "TaxonomyNode",
    "OntologyValidator",
    "ValidationReport",
    "CommonsenseScorer",
    "ConceptStatement",
    "QualityDimensions",
]
