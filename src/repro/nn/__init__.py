"""A small reverse-mode autograd engine and neural-network layers (numpy only).

This package is the substrate for the KG-enhanced vision-language
pre-training stack: a :class:`~repro.nn.tensor.Tensor` with automatic
differentiation, standard layers (Linear, Embedding, LayerNorm, Dropout),
multi-head attention and transformer blocks, optimizers (SGD, AdaGrad, Adam,
AdamW) and learning-rate schedules.
"""

from repro.nn.tensor import Tensor
from repro.nn.module import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
)
from repro.nn.attention import (
    MultiHeadAttention,
    PositionalEncoding,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
)
from repro.nn.functional import (
    cross_entropy,
    binary_cross_entropy_with_logits,
    contrastive_loss,
    masked_mean,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.nn.optim import SGD, AdaGrad, Adam, AdamW, LinearWarmupSchedule

__all__ = [
    "Tensor",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MultiHeadAttention",
    "PositionalEncoding",
    "TransformerEncoderLayer",
    "TransformerDecoderLayer",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "contrastive_loss",
    "masked_mean",
    "relu",
    "sigmoid",
    "softmax",
    "tanh",
    "SGD",
    "AdaGrad",
    "Adam",
    "AdamW",
    "LinearWarmupSchedule",
]
