"""Functional helpers and loss functions on top of :class:`~repro.nn.tensor.Tensor`."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor


def relu(inputs: Tensor) -> Tensor:
    """Rectified linear unit."""
    return inputs.relu()


def tanh(inputs: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return inputs.tanh()


def sigmoid(inputs: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return inputs.sigmoid()


def softmax(inputs: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return inputs.softmax(axis=axis)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: Optional[int] = None) -> Tensor:
    """Mean token-level cross entropy.

    ``logits`` has shape (..., vocab); ``targets`` the matching integer
    shape.  Positions equal to ``ignore_index`` contribute nothing (used for
    padding and for the unmasked positions of the MLM objective).
    """
    targets = np.asarray(targets, dtype=np.int64)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    log_probabilities = flat_logits.log_softmax(axis=-1)
    if ignore_index is not None:
        mask = flat_targets != ignore_index
    else:
        mask = np.ones_like(flat_targets, dtype=bool)
    count = int(mask.sum())
    if count == 0:
        return Tensor(0.0, requires_grad=False)
    safe_targets = np.where(mask, flat_targets, 0)
    picked = log_probabilities[np.arange(flat_targets.shape[0]), safe_targets]
    weights = mask.astype(np.float64) / count
    return -(picked * Tensor(weights)).sum()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean binary cross entropy over raw logits."""
    targets_tensor = Tensor(np.asarray(targets, dtype=np.float64))
    probabilities = logits.sigmoid()
    eps = 1e-9
    loss = -(targets_tensor * (probabilities + eps).log()
             + (1.0 - targets_tensor) * (1.0 - probabilities + eps).log())
    return loss.mean()


def contrastive_loss(image_embeddings: Tensor, text_embeddings: Tensor,
                     temperature: float = 0.07) -> Tensor:
    """Symmetric InfoNCE loss for image-text contrastive (ITC) pre-training.

    Both inputs have shape (batch, dim); the i-th image and i-th text form
    the positive pair; all other in-batch combinations are negatives.
    """
    image_norm = _l2_normalize(image_embeddings)
    text_norm = _l2_normalize(text_embeddings)
    logits = image_norm @ text_norm.transpose(1, 0) * (1.0 / temperature)
    batch_size = logits.shape[0]
    targets = np.arange(batch_size)
    image_to_text = cross_entropy(logits, targets)
    text_to_image = cross_entropy(logits.transpose(1, 0), targets)
    return (image_to_text + text_to_image) * 0.5


def _l2_normalize(inputs: Tensor, eps: float = 1e-9) -> Tensor:
    squared = (inputs * inputs).sum(axis=-1, keepdims=True)
    return inputs * ((squared + eps) ** -0.5)


def masked_mean(inputs: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Mean over ``axis`` counting only positions where ``mask`` is 1.

    Used to pool token representations into a sequence representation while
    ignoring padding.
    """
    mask = np.asarray(mask, dtype=np.float64)
    while mask.ndim < len(inputs.shape):
        mask = mask[..., None]
    weighted = inputs * Tensor(mask)
    totals = weighted.sum(axis=axis)
    counts = np.maximum(mask.sum(axis=axis), 1e-9)
    return totals * Tensor(1.0 / counts)
