"""Optimizers and learning-rate schedules.

The paper's baselines use SGD and AdaGrad; the mPLUG pre-training uses AdamW
with a linear warmup schedule and weight decay 0.02 — all four are
implemented here over the :class:`~repro.nn.module.Parameter` arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer: holds parameters and applies updates from their grads."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.parameters = list(parameters)
        self.learning_rate = float(learning_rate)

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract by convention
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Clip the global gradient norm; returns the pre-clip norm."""
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float(np.sum(parameter.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(parameters, learning_rate)
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            update = parameter.grad
            if self.momentum > 0:
                velocity = self._velocity.setdefault(id(parameter),
                                                     np.zeros_like(parameter.data))
                velocity *= self.momentum
                velocity += update
                update = velocity
            parameter.data -= self.learning_rate * update


class AdaGrad(Optimizer):
    """AdaGrad: per-parameter learning rates from accumulated squared grads."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 0.1,
                 eps: float = 1e-10) -> None:
        super().__init__(parameters, learning_rate)
        self.eps = float(eps)
        self._accumulator: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            accumulator = self._accumulator.setdefault(id(parameter),
                                                       np.zeros_like(parameter.data))
            accumulator += parameter.grad ** 2
            parameter.data -= self.learning_rate * parameter.grad / \
                (np.sqrt(accumulator) + self.eps)


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8) -> None:
        super().__init__(parameters, learning_rate)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            first = self._first_moment.setdefault(id(parameter),
                                                  np.zeros_like(parameter.data))
            second = self._second_moment.setdefault(id(parameter),
                                                    np.zeros_like(parameter.data))
            first *= self.beta1
            first += (1.0 - self.beta1) * parameter.grad
            second *= self.beta2
            second += (1.0 - self.beta2) * parameter.grad ** 2
            corrected_first = first / bias1
            corrected_second = second / bias2
            self._apply(parameter, corrected_first, corrected_second)

    def _apply(self, parameter: Parameter, first: np.ndarray,
               second: np.ndarray) -> None:
        parameter.data -= self.learning_rate * first / (np.sqrt(second) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (the pre-training optimizer)."""

    def __init__(self, parameters: Sequence[Parameter], learning_rate: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.02) -> None:
        super().__init__(parameters, learning_rate, betas, eps)
        self.weight_decay = float(weight_decay)

    def _apply(self, parameter: Parameter, first: np.ndarray,
               second: np.ndarray) -> None:
        parameter.data -= self.learning_rate * (
            first / (np.sqrt(second) + self.eps) + self.weight_decay * parameter.data)


class LinearWarmupSchedule:
    """Linear warmup to the base LR, then linear decay to zero.

    Matches the paper's "linear schedule to the learning rate with warmup of
    0.1" for mPLUG pre-training.
    """

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 warmup_fraction: float = 0.1) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.total_steps = int(total_steps)
        self.warmup_steps = max(1, int(total_steps * warmup_fraction))
        self.base_learning_rate = optimizer.learning_rate
        self._step_count = 0

    def step(self) -> float:
        """Advance one step and set the optimizer LR; returns the new LR."""
        self._step_count += 1
        if self._step_count <= self.warmup_steps:
            factor = self._step_count / self.warmup_steps
        else:
            remaining = max(0, self.total_steps - self._step_count)
            denominator = max(1, self.total_steps - self.warmup_steps)
            factor = remaining / denominator
        self.optimizer.learning_rate = self.base_learning_rate * factor
        return self.optimizer.learning_rate
