"""A reverse-mode automatic-differentiation tensor over numpy arrays.

The design follows the classic tape-based approach: every operation builds a
node holding references to its inputs and a closure that accumulates
gradients into them; :meth:`Tensor.backward` runs the closures in reverse
topological order.  Broadcasting is supported for the element-wise
operations by summing gradients back over broadcast dimensions.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def _unbroadcast(gradient: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``gradient`` over dimensions that were broadcast from ``shape``."""
    if gradient.shape == shape:
        return gradient
    # Sum over leading dimensions added by broadcasting.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)


class Tensor:
    """An N-dimensional array with reverse-mode autograd."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] = lambda: None
        self._prev: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        """The scalar value (raises when the tensor is not 0-d / 1-element)."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying numpy array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(other: ArrayLike | "Tensor") -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(self, data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[["Tensor"], None]) -> "Tensor":
        out = Tensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._prev = tuple(parents)

            def _run() -> None:
                backward(out)

            out._backward = _run
        return out

    def _accumulate(self, gradient: np.ndarray) -> None:
        if not self.requires_grad:
            return
        gradient = _unbroadcast(np.asarray(gradient, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = gradient.copy()
        else:
            self.grad += gradient

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other = self._ensure(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad)
            other._accumulate(out.grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(-out.grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike | "Tensor") -> "Tensor":
        return self + (-self._ensure(other))

    def __rsub__(self, other: ArrayLike | "Tensor") -> "Tensor":
        return self._ensure(other) + (-self)

    def __mul__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other = self._ensure(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * other.data)
            other._accumulate(out.grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other = self._ensure(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / other.data)
            other._accumulate(-out.grad * self.data / (other.data ** 2))

        return self._make(self.data / other.data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * exponent * np.power(self.data, exponent - 1))

        return self._make(np.power(self.data, exponent), (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._ensure(other)

        def backward(out: Tensor) -> None:
            grad = out.grad
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other_grad = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(other_grad)

        return self._make(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # shape ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        original_shape = self.data.shape

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.reshape(original_shape))

        return self._make(self.data.reshape(*shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes or tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes_tuple)

        def backward(out: Tensor) -> None:
            self._accumulate(np.transpose(out.grad, inverse))

        return self._make(np.transpose(self.data, axes_tuple), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(out: Tensor) -> None:
            gradient = np.zeros_like(self.data)
            np.add.at(gradient, index, out.grad)
            self._accumulate(gradient)

        return self._make(self.data[index], (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [Tensor._ensure(tensor) for tensor in tensors]
        sizes = [tensor.data.shape[axis] for tensor in tensors]
        data = np.concatenate([tensor.data for tensor in tensors], axis=axis)
        out = Tensor(data, requires_grad=any(tensor.requires_grad for tensor in tensors))
        if out.requires_grad:
            out._prev = tuple(tensors)

            def _run() -> None:
                splits = np.cumsum(sizes)[:-1]
                pieces = np.split(out.grad, splits, axis=axis)
                for tensor, piece in zip(tensors, pieces):
                    tensor._accumulate(piece)

            out._backward = _run
        return out

    # ------------------------------------------------------------------ #
    # reductions & elementwise functions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int | Tuple[int, ...]] = None,
            keepdims: bool = False) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis: Optional[int | Tuple[int, ...]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def exp(self) -> "Tensor":
        result = np.exp(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * result)

        return self._make(result, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        result = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * (1.0 - result ** 2))

        return self._make(result, (self,), backward)

    def sigmoid(self) -> "Tensor":
        result = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * result * (1.0 - result))

        return self._make(result, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        cubic = self.data + 0.044715 * self.data ** 3
        inner = np.sqrt(2.0 / np.pi) * cubic
        tanh_inner = np.tanh(inner)
        result = 0.5 * self.data * (1.0 + tanh_inner)

        def backward(out: Tensor) -> None:
            sech2 = 1.0 - tanh_inner ** 2
            derivative = 0.5 * (1.0 + tanh_inner) + 0.5 * self.data * sech2 * \
                np.sqrt(2.0 / np.pi) * (1.0 + 3 * 0.044715 * self.data ** 2)
            self._accumulate(out.grad * derivative)

        return self._make(result, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exponent = np.exp(shifted)
        result = exponent / exponent.sum(axis=axis, keepdims=True)

        def backward(out: Tensor) -> None:
            dot = (out.grad * result).sum(axis=axis, keepdims=True)
            self._accumulate(result * (out.grad - dot))

        return self._make(result, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        result = shifted - log_sum

        def backward(out: Tensor) -> None:
            softmax_values = np.exp(result)
            self._accumulate(out.grad - softmax_values
                             * out.grad.sum(axis=axis, keepdims=True))

        return self._make(result, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Return a tensor where positions with ``mask`` True are set to ``value``."""
        data = np.where(mask, value, self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(np.where(mask, 0.0, out.grad))

        return self._make(data, (self,), backward)

    def embedding_lookup(self, indices: np.ndarray) -> "Tensor":
        """Gather rows of a 2-D tensor: the embedding-table primitive."""
        indices = np.asarray(indices, dtype=np.int64)

        def backward(out: Tensor) -> None:
            gradient = np.zeros_like(self.data)
            flat_indices = indices.reshape(-1)
            flat_grad = out.grad.reshape(-1, self.data.shape[1])
            np.add.at(gradient, flat_indices, flat_grad)
            self._accumulate(gradient)

        return self._make(self.data[indices], (self,), backward)

    def dropout(self, rate: float, rng: np.random.Generator,
                training: bool = True) -> "Tensor":
        """Inverted dropout; identity when not training or rate == 0."""
        if not training or rate <= 0.0:
            return self
        mask = (rng.random(self.data.shape) >= rate) / (1.0 - rate)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make(self.data * mask, (self,), backward)

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, gradient: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor."""
        if gradient is None:
            gradient = np.ones_like(self.data)
        self.grad = np.asarray(gradient, dtype=np.float64)

        topo: List[Tensor] = []
        visited: Set[int] = set()

        def build(node: Tensor) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._prev:
                build(parent)
            topo.append(node)

        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 20000))
        try:
            build(self)
        finally:
            sys.setrecursionlimit(old_limit)
        for node in reversed(topo):
            node._backward()


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (autograd-aware)."""
    expanded = [tensor.reshape(*tensor.shape[:axis], 1, *tensor.shape[axis:])
                for tensor in tensors]
    return Tensor.concatenate(expanded, axis=axis)


def zeros(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    """A zero tensor."""
    return Tensor(np.zeros(tuple(shape)), requires_grad=requires_grad)


def ones(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    """A ones tensor."""
    return Tensor(np.ones(tuple(shape)), requires_grad=requires_grad)
