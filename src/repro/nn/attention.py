"""Multi-head attention and transformer blocks.

The mPLUG-style pre-training model needs three block flavours: a
self-attention encoder layer (visual encoder and KG-enhanced text encoder),
a causal self-attention + cross-attention decoder layer (the generative
half used for PrefixLM and the downstream generation tasks), and sinusoidal
positional encodings.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Dropout, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor


class MultiHeadAttention(Module):
    """Scaled dot-product attention with multiple heads."""

    def __init__(self, dim: int, num_heads: int = 4, dropout: float = 0.0,
                 seed: int = 0) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query_projection = Linear(dim, dim, seed=seed)
        self.key_projection = Linear(dim, dim, seed=seed + 1)
        self.value_projection = Linear(dim, dim, seed=seed + 2)
        self.output_projection = Linear(dim, dim, seed=seed + 3)
        self.dropout = Dropout(dropout, seed=seed + 4)

    def _split_heads(self, tensor: Tensor, batch: int, length: int) -> Tensor:
        return tensor.reshape(batch, length, self.num_heads, self.head_dim) \
            .transpose(0, 2, 1, 3)

    def forward(self, query: Tensor, key: Optional[Tensor] = None,
                value: Optional[Tensor] = None,
                mask: Optional[np.ndarray] = None) -> Tensor:
        """Attend ``query`` over ``key``/``value`` (self-attention when omitted).

        ``mask`` is a boolean array broadcastable to
        (batch, heads, query_len, key_len); True marks positions to *block*.
        """
        key = query if key is None else key
        value = key if value is None else value
        batch, query_length = query.shape[0], query.shape[1]
        key_length = key.shape[1]

        queries = self._split_heads(self.query_projection(query), batch, query_length)
        keys = self._split_heads(self.key_projection(key), batch, key_length)
        values = self._split_heads(self.value_projection(value), batch, key_length)

        scores = queries @ keys.transpose(0, 1, 3, 2) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = scores.masked_fill(mask, -1e9)
        weights = scores.softmax(axis=-1)
        weights = self.dropout(weights)
        context = weights @ values
        context = context.transpose(0, 2, 1, 3).reshape(batch, query_length, self.dim)
        return self.output_projection(context)


class FeedForward(Module):
    """Position-wise feed-forward network with GELU activation."""

    def __init__(self, dim: int, hidden_dim: Optional[int] = None,
                 dropout: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        hidden_dim = hidden_dim or dim * 4
        self.input_layer = Linear(dim, hidden_dim, seed=seed)
        self.output_layer = Linear(hidden_dim, dim, seed=seed + 1)
        self.dropout = Dropout(dropout, seed=seed + 2)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.output_layer(self.dropout(self.input_layer(inputs).gelu()))


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block (self-attention + FFN)."""

    def __init__(self, dim: int, num_heads: int = 4, hidden_dim: Optional[int] = None,
                 dropout: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        self.self_attention = MultiHeadAttention(dim, num_heads, dropout, seed=seed)
        self.feed_forward = FeedForward(dim, hidden_dim, dropout, seed=seed + 10)
        self.attention_norm = LayerNorm(dim)
        self.feed_forward_norm = LayerNorm(dim)

    def forward(self, inputs: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.self_attention(self.attention_norm(inputs), mask=mask)
        hidden = inputs + attended
        return hidden + self.feed_forward(self.feed_forward_norm(hidden))


class TransformerDecoderLayer(Module):
    """Pre-norm decoder block: causal self-attention, cross-attention, FFN."""

    def __init__(self, dim: int, num_heads: int = 4, hidden_dim: Optional[int] = None,
                 dropout: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        self.self_attention = MultiHeadAttention(dim, num_heads, dropout, seed=seed)
        self.cross_attention = MultiHeadAttention(dim, num_heads, dropout, seed=seed + 20)
        self.feed_forward = FeedForward(dim, hidden_dim, dropout, seed=seed + 30)
        self.self_norm = LayerNorm(dim)
        self.cross_norm = LayerNorm(dim)
        self.feed_forward_norm = LayerNorm(dim)

    def forward(self, inputs: Tensor, memory: Optional[Tensor] = None,
                self_mask: Optional[np.ndarray] = None,
                memory_mask: Optional[np.ndarray] = None) -> Tensor:
        hidden = inputs + self.self_attention(self.self_norm(inputs), mask=self_mask)
        if memory is not None:
            hidden = hidden + self.cross_attention(self.cross_norm(hidden),
                                                   key=memory, value=memory,
                                                   mask=memory_mask)
        return hidden + self.feed_forward(self.feed_forward_norm(hidden))


class PositionalEncoding(Module):
    """Fixed sinusoidal positional encodings added to token embeddings."""

    def __init__(self, dim: int, max_length: int = 512) -> None:
        super().__init__()
        positions = np.arange(max_length)[:, None]
        dimensions = np.arange(dim)[None, :]
        angle_rates = 1.0 / np.power(10000.0, (2 * (dimensions // 2)) / dim)
        angles = positions * angle_rates
        encoding = np.zeros((max_length, dim))
        encoding[:, 0::2] = np.sin(angles[:, 0::2])
        encoding[:, 1::2] = np.cos(angles[:, 1::2])
        self._encoding = encoding

    def forward(self, inputs: Tensor) -> Tensor:
        length = inputs.shape[1]
        return inputs + Tensor(self._encoding[None, :length, :])


def causal_mask(length: int) -> np.ndarray:
    """Boolean (1, 1, length, length) mask blocking attention to the future."""
    mask = np.triu(np.ones((length, length), dtype=bool), k=1)
    return mask[None, None, :, :]


def padding_mask(attention_mask: np.ndarray) -> np.ndarray:
    """Convert a (batch, length) 1/0 attention mask to a blocking key mask."""
    blocked = np.asarray(attention_mask) == 0
    return blocked[:, None, None, :]
