"""Neural-network module system: parameters, layers, containers.

:class:`Module` mirrors the familiar torch.nn.Module contract (recursive
parameter collection, train/eval mode) at a much smaller scale, which keeps
the pre-training code readable to anyone who has used a deep-learning
framework.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.rng import derive_rng


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------ #
    # registration (automatic via attribute assignment)
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its sub-modules."""
        result = list(self._parameters.values())
        for module in self._modules.values():
            result.extend(module.parameters())
        return result

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """(name, parameter) pairs with dotted paths."""
        for name, parameter in self._parameters.items():
            yield f"{prefix}{name}", parameter
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(parameter.size for parameter in self.parameters()))

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract by convention
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # (de)serialization of weights
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays saved by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        for name, array in state.items():
            if name in own and own[name].data.shape == array.shape:
                own[name].data[...] = array


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: int = 0) -> None:
        super().__init__()
        rng = derive_rng(seed, "Linear", str(in_features), str(out_features))
        scale = np.sqrt(2.0 / (in_features + out_features))
        self.weight = Parameter(rng.normal(0.0, scale, (in_features, out_features)),
                                name="weight")
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(np.zeros(out_features), name="bias")

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return output


class Embedding(Module):
    """A lookup table of learnable vectors."""

    def __init__(self, num_embeddings: int, dim: int, seed: int = 0) -> None:
        super().__init__()
        rng = derive_rng(seed, "Embedding", str(num_embeddings), str(dim))
        self.weight = Parameter(rng.normal(0.0, 0.02, (num_embeddings, dim)),
                                name="embedding")
        self.num_embeddings = num_embeddings
        self.dim = dim

    def forward(self, indices: np.ndarray) -> Tensor:
        return self.weight.embedding_lookup(np.asarray(indices, dtype=np.int64))


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Parameter(np.ones(dim), name="gamma")
        self.beta = Parameter(np.zeros(dim), name="beta")
        self.eps = float(eps)

    def forward(self, inputs: Tensor) -> Tensor:
        mean = inputs.mean(axis=-1, keepdims=True)
        centered = inputs - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered * ((variance + self.eps) ** -0.5)
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout with a module-local RNG stream."""

    def __init__(self, rate: float = 0.1, seed: int = 0) -> None:
        super().__init__()
        self.rate = float(rate)
        self._rng = derive_rng(seed, "Dropout")

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.dropout(self.rate, self._rng, training=self.training)


class Sequential(Module):
    """Applies sub-modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer_{index}", module)
            self._ordered.append(module)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for module in self._ordered:
            output = module(output)
        return output

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._ordered)
