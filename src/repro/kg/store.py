"""An indexed, in-memory triple store — a facade over pluggable backends.

The store's public query surface is :meth:`match` (``None`` wildcards,
mirroring SPARQL basic graph patterns), plus batched variants
(:meth:`match_many`, :meth:`tails_many`, :meth:`degree_many`), count fast
paths and an iterator form (:meth:`iter_match`) that never materializes a
list.  Storage lives behind the :class:`~repro.kg.backend.GraphBackend`
protocol; the default :class:`~repro.kg.backend.ColumnarBackend` interns
identifiers to contiguous int ids and answers pattern queries from numpy
CSR adjacency slices, while :class:`~repro.kg.backend.SetBackend` keeps
the original dict-of-set design for parity testing.

``match`` returns results in backend-defined (deterministic per process)
order; pass ``sort=True`` when a deterministic sorted order is required.
Insertion is idempotent: adding a duplicate triple is a no-op.

Durability: a **live** store (:meth:`TripleStore.create_live`, or
:meth:`TripleStore.open` on a directory with a ``live.json`` pointer)
logs every mutation batch to an append-only, fsync'd write-ahead log
(:mod:`repro.kg.wal`) before applying it, replays the log on open, and
folds it into a fresh snapshot via :meth:`compact`.  Plain snapshot
directories still open exactly as before, read-only through the
service write path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.kg.backend import (
    DEFAULT_BACKEND,
    GraphBackend,
    Pattern,
    make_backend,
)
from repro.kg.triple import Triple


class TripleStore:
    """A set of triples with pattern indexes behind a pluggable backend."""

    def __init__(self, triples: Iterable[Triple] = (),
                 backend: Union[str, GraphBackend] = DEFAULT_BACKEND) -> None:
        if isinstance(backend, str):
            self.backend_name = backend
            self._backend: GraphBackend = make_backend(backend)
        else:
            self.backend_name = getattr(backend, "name", type(backend).__name__)
            self._backend = backend
        # Live-store state: a WAL when opened/created live, a flag when
        # opened read-only from a plain snapshot directory.
        self._wal = None
        self._live_directory: Optional[Path] = None
        self._live_generation: Optional[int] = None
        self._opened_snapshot = False
        self.add_many(triples)

    @property
    def backend(self) -> GraphBackend:
        """The storage backend (id-level access for the hot callers)."""
        return self._backend

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        """Add a triple; return True if it was new, False if already present.

        On a live store the triple is WAL-logged (fsync'd) *before* it
        is applied, so a crash after ``add`` returns can never lose it.
        """
        if self._wal is not None:
            from repro.kg.wal import OP_ADD

            self._wal.append(
                OP_ADD, ((triple.head, triple.relation, triple.tail),))
        return self._backend.add(triple.head, triple.relation, triple.tail)

    def add_many(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return the count of newly inserted ones.

        Delegates to the backend's bulk path — the sharded backend
        partitions the batch and loads shards in parallel.  On a live
        store the whole batch is one durable WAL record, logged before
        any of it is applied: the batch is acked atomically or not at
        all.
        """
        if self._wal is None:
            return self._backend.add_many(triples)
        from repro.kg.wal import OP_ADD

        items = list(triples)
        if not items:
            return 0
        self._wal.append(OP_ADD, [(t.head, t.relation, t.tail)
                                  for t in items])
        return self._backend.add_many(items)

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present; return True when something was removed."""
        if self._wal is not None:
            from repro.kg.wal import OP_REMOVE

            self._wal.append(
                OP_REMOVE, ((triple.head, triple.relation, triple.tail),))
        return self._backend.discard(triple.head, triple.relation, triple.tail)

    def remove_many(self, triples: Iterable[Triple]) -> int:
        """Remove many triples; return the count that were present.

        The removal counterpart of :meth:`add_many`: one backend bulk
        call, and on a live store one durable WAL record for the whole
        batch.
        """
        if self._wal is None:
            return self._backend.discard_many(triples)
        from repro.kg.wal import OP_REMOVE

        items = list(triples)
        if not items:
            return 0
        self._wal.append(OP_REMOVE, [(t.head, t.relation, t.tail)
                                     for t in items])
        return self._backend.discard_many(items)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, triple: Triple) -> bool:
        return self._backend.contains(triple.head, triple.relation, triple.tail)

    def __len__(self) -> int:
        return len(self._backend)

    def __iter__(self) -> Iterator[Triple]:
        return self._backend.iter_triples()

    def match(
        self,
        head: Optional[str] = None,
        relation: Optional[str] = None,
        tail: Optional[str] = None,
        sort: bool = False,
    ) -> List[Triple]:
        """Return all triples matching a pattern; ``None`` is a wildcard.

        The most selective available index is consulted, so bound patterns
        never scan.  Results come back in backend order; pass ``sort=True``
        for the deterministic sorted order the seed store used to return.
        """
        return self._backend.match(head, relation, tail, sort=sort)

    def iter_match(
        self,
        head: Optional[str] = None,
        relation: Optional[str] = None,
        tail: Optional[str] = None,
    ) -> Iterator[Triple]:
        """Iterate over matching triples without materializing a list."""
        return self._backend.iter_match(head, relation, tail)

    def match_many(self, patterns: Sequence[Pattern],
                   sort: bool = False) -> List[List[Triple]]:
        """Answer a batch of patterns in one call (one result list each)."""
        return self._backend.match_many(patterns, sort=sort)

    def count(
        self,
        head: Optional[str] = None,
        relation: Optional[str] = None,
        tail: Optional[str] = None,
    ) -> int:
        """Count triples matching a pattern without materializing results."""
        return self._backend.count(head, relation, tail)

    def tails(self, head: str, relation: str) -> List[str]:
        """Return all tails t such that (head, relation, t) is in the store."""
        return self._backend.tails(head, relation)

    def heads(self, relation: str, tail: str) -> List[str]:
        """Return all heads h such that (h, relation, tail) is in the store."""
        return self._backend.heads(relation, tail)

    def count_many(self, patterns: Sequence[Pattern]) -> List[int]:
        """Batched :meth:`count` over patterns (one backend call).

        The query planner's selectivity ordering runs on this — the
        sharded backend routes head-bound patterns to their owner shard
        and answers the batch in one pass per shard.
        """
        return self._backend.count_many(patterns)

    def tails_many(self, pairs: Sequence[Tuple[str, str]]) -> List[List[str]]:
        """Batched :meth:`tails` over (head, relation) pairs."""
        return self._backend.tails_many(pairs)

    def degree_many(self, nodes: Sequence[str]) -> List[int]:
        """Batched :meth:`degree` over nodes."""
        return self._backend.degree_many(nodes)

    def relations(self) -> List[str]:
        """Return all relation identifiers with at least one triple."""
        return self._backend.relations()

    def entities(self) -> List[str]:
        """Return all identifiers appearing as head or tail of some triple."""
        return self._backend.entities()

    def heads_only(self) -> List[str]:
        """Return all identifiers appearing in head position."""
        return self._backend.heads_only()

    def relation_frequencies(self) -> Dict[str, int]:
        """Return relation → triple-count (the long-tail histogram of Fig. 5)."""
        return self._backend.relation_frequencies()

    def degree(self, node: str) -> int:
        """Return total degree (out-degree + in-degree) of a node."""
        return self._backend.degree(node)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: "str | Path") -> "Path":
        """Persist the store as an on-disk, memory-mappable directory.

        Backends of the columnar family write their own consolidated
        state; other backends (e.g. ``set``) are first copied through an
        in-memory :class:`~repro.kg.backend.ColumnarBackend`.  Reopen
        with :meth:`TripleStore.open`.
        """
        backend = self._backend
        if not hasattr(backend, "save"):
            from repro.kg.backend import ColumnarBackend

            columnar = ColumnarBackend()
            for triple in backend.iter_triples():
                columnar.add(triple.head, triple.relation, triple.tail)
            backend = columnar
        return backend.save(directory)

    @classmethod
    def open(cls, directory: "str | Path", *,
             wal_fsync: bool = True) -> "TripleStore":
        """Open a store directory written by :meth:`save` or :meth:`save_live`.

        A **live** directory (one carrying a ``live.json`` generation
        pointer) reopens writable: the current snapshot is opened and
        the WAL's intact record prefix is replayed over it, recovering
        exactly the durably-acked batches; a torn tail from a crash is
        truncated.  Plain snapshot directories open read-only through
        the service write path (:attr:`writable` is False) and dispatch
        on the header magic: sharded directories reopen as a
        :class:`~repro.kg.sharded_backend.ShardedBackend`, single-store
        directories as an :class:`~repro.kg.mmap_backend.MmapBackend`.
        ``wal_fsync=False`` trades the per-ack fsync away (benchmarks).
        """
        from repro.kg.wal import is_live_store

        directory = Path(directory)
        if is_live_store(directory):
            return cls._open_live(directory, wal_fsync=wal_fsync)
        store = cls(backend=cls._open_backend(directory))
        store._opened_snapshot = True
        return store

    @staticmethod
    def _open_backend(directory: "str | Path") -> GraphBackend:
        """Open one snapshot directory, dispatching on its header magic."""
        from repro.kg.mmap_backend import MmapBackend, peek_store_magic
        from repro.kg.sharded_backend import SHARDED_MAGIC, ShardedBackend

        if peek_store_magic(directory) == SHARDED_MAGIC:
            return ShardedBackend.open(directory)
        return MmapBackend.open(directory)

    @classmethod
    def _open_live(cls, directory: Path, *,
                   wal_fsync: bool = True) -> "TripleStore":
        """Open a live directory: snapshot + exact WAL-prefix replay."""
        from repro.errors import StorageError
        from repro.kg.wal import (OP_ADD, WriteAheadLog, coalesced_ops,
                                  read_live_pointer, snapshot_dir_name,
                                  wal_file_name)

        generation = read_live_pointer(directory)
        snapshot = directory / snapshot_dir_name(generation)
        if not snapshot.is_dir():
            raise StorageError(
                f"live store {directory} points at generation {generation} "
                f"but {snapshot.name}/ is missing")
        backend = cls._open_backend(snapshot)
        wal, scan = WriteAheadLog.open(directory / wal_file_name(generation),
                                       fsync=wal_fsync)
        if scan.generation != generation:
            wal.close()
            raise StorageError(
                f"WAL {wal.path.name} carries generation {scan.generation}, "
                f"live pointer says {generation} — refusing to replay a "
                f"log over the wrong snapshot")
        # Replay preserves add/remove interleaving but folds maximal
        # same-op runs into one bulk call each.
        for op, rows in coalesced_ops(scan.batches):
            triples = [Triple.unchecked(h, r, t) for h, r, t in rows]
            if op == OP_ADD:
                backend.add_many(triples)
            else:
                backend.discard_many(triples)
        store = cls(backend=backend)
        store._wal = wal
        store._live_directory = directory
        store._live_generation = generation
        return store

    # ------------------------------------------------------------------ #
    # live stores (durable write path)
    # ------------------------------------------------------------------ #
    @property
    def writable(self) -> bool:
        """False when opened read-only from a plain snapshot directory.

        The :class:`~repro.kg.service.QueryService` write path refuses
        writes on non-writable stores with a typed
        :class:`~repro.errors.StorageError`.  In-memory stores are
        writable (not durable); live stores are writable and durable.
        """
        return self._wal is not None or not self._opened_snapshot

    @property
    def wal(self):
        """The attached :class:`~repro.kg.wal.WriteAheadLog` (live stores)."""
        return self._wal

    @property
    def live_generation(self) -> Optional[int]:
        """The current (snapshot, WAL) generation of a live store."""
        return self._live_generation

    @property
    def live_directory(self) -> Optional[Path]:
        """The directory of a live store (``None`` otherwise)."""
        return self._live_directory

    def save_live(self, directory: "str | Path", *,
                  fsync: bool = True) -> "Path":
        """Write this store's content as a generation-0 live layout.

        Creates ``snap-000000/`` (via :meth:`save`), an empty
        ``wal-000000.log`` and the ``live.json`` pointer.  Reopen with
        :meth:`open` to get the writable store; :meth:`create_live`
        does both in one call.
        """
        from repro.errors import StorageError
        from repro.kg.wal import (WriteAheadLog, is_live_store,
                                  snapshot_dir_name, wal_file_name,
                                  write_live_pointer)

        directory = Path(directory)
        if is_live_store(directory):
            raise StorageError(
                f"{directory} is already a live store; open it instead of "
                f"overwriting its generations")
        directory.mkdir(parents=True, exist_ok=True)
        self.save(directory / snapshot_dir_name(0))
        WriteAheadLog.create(directory / wal_file_name(0), generation=0,
                             fsync=fsync).close()
        write_live_pointer(directory, 0, fsync=fsync)
        return directory

    @classmethod
    def create_live(cls, directory: "str | Path",
                    triples: Iterable[Triple] = (), *,
                    backend: Union[str, GraphBackend] = DEFAULT_BACKEND,
                    wal_fsync: bool = True) -> "TripleStore":
        """Create a live store directory and return it opened writable."""
        cls(triples, backend=backend).save_live(
            Path(directory), fsync=wal_fsync)
        return cls.open(directory, wal_fsync=wal_fsync)

    def compact(self, *, crash_hook=None) -> int:
        """Fold the WAL into a fresh snapshot generation; returns it.

        The compaction state machine, in commit order:

        1. save the current state as ``snap-(G+1)/``;
        2. create an empty, fsync'd ``wal-(G+1).log``;
        3. atomically rewrite ``live.json`` to generation G+1 — the
           commit point — and switch this store's WAL to the new log;
        4. sweep the generation-G files (best-effort cleanup).

        A crash before step 3 leaves the pointer on (snap-G, wal-G):
        nothing acked is lost, the half-written next generation is
        overwritten by the next compaction.  A crash after step 3 serves
        (snap-(G+1), empty wal): nothing is double-applied.  The
        test-only ``crash_hook(stage)`` is invoked at the ``"snapshot"``,
        ``"wal"`` and ``"commit"`` stage boundaries; raising from it
        simulates a kill there.
        """
        from repro.errors import StorageError
        from repro.kg.wal import (WriteAheadLog, snapshot_dir_name,
                                  wal_file_name, write_live_pointer)

        if self._wal is None or self._live_directory is None:
            raise StorageError(
                "compact() requires a live store — open a live directory "
                "or use TripleStore.create_live")
        hook = crash_hook if crash_hook is not None else (lambda stage: None)
        directory = self._live_directory
        new_generation = self._live_generation + 1
        self.save(directory / snapshot_dir_name(new_generation))
        hook("snapshot")
        new_wal = WriteAheadLog.create(
            directory / wal_file_name(new_generation),
            generation=new_generation, fsync=self._wal.fsync)
        try:
            hook("wal")
            write_live_pointer(directory, new_generation,
                               fsync=self._wal.fsync)
        except BaseException:
            new_wal.close()
            raise
        old_wal = self._wal
        self._wal = new_wal
        self._live_generation = new_generation
        old_wal.close()
        hook("commit")
        self.sweep_stale_generations()
        return new_generation

    def sweep_stale_generations(self) -> None:
        """Delete snapshot/WAL files of non-current generations.

        Best-effort cleanup run after a compaction commits and after a
        replica adopts a shipped generation (re-bootstrap): only the
        current ``snap-G/`` + ``wal-G.log`` pair survives.  Orphaned
        ``snap-*.partial`` transfer directories from an interrupted
        fetch go too — a restarted fetch always begins from scratch.
        """
        from repro.errors import StorageError

        if self._live_directory is None:
            raise StorageError(
                "sweep_stale_generations() requires a live store")
        import shutil

        from repro.kg.wal import snapshot_dir_name, wal_file_name

        keep = {snapshot_dir_name(self._live_generation),
                wal_file_name(self._live_generation)}
        for path in self._live_directory.iterdir():
            if path.name in keep:
                continue
            if path.name.startswith("snap-") and path.is_dir():
                shutil.rmtree(path, ignore_errors=True)
            elif path.name.startswith("wal-") and path.is_file():
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass

    def close(self) -> None:
        """Release the WAL file handle of a live store (idempotent)."""
        if self._wal is not None:
            self._wal.close()

    def copy(self) -> "TripleStore":
        """Return an independent, fully writable copy of the store.

        Copies stay on the same backend kind, with one exception: a copy
        of an mmap-backed store materializes as an in-memory
        :class:`~repro.kg.backend.ColumnarBackend`.  An empty
        ``MmapBackend`` clone would route every write through the dict-
        free overlay (binary searches per insert) and keep none of the
        on-disk base it was cloned from — the columnar backend is the
        correct in-memory equivalent.
        """
        from repro.kg.backend import ColumnarBackend
        from repro.kg.mmap_backend import MmapBackend

        clone_backend = self._backend.clone_empty()
        if isinstance(clone_backend, MmapBackend):
            clone_backend = ColumnarBackend(
                delta_threshold=clone_backend.delta_threshold)
        return TripleStore(self._backend.iter_triples(), backend=clone_backend)

    def triples(self) -> List[Triple]:
        """Return all triples sorted deterministically."""
        return sorted(self._backend.iter_triples())
