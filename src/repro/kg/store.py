"""An indexed, in-memory triple store — a facade over pluggable backends.

The store's public query surface is :meth:`match` (``None`` wildcards,
mirroring SPARQL basic graph patterns), plus batched variants
(:meth:`match_many`, :meth:`tails_many`, :meth:`degree_many`), count fast
paths and an iterator form (:meth:`iter_match`) that never materializes a
list.  Storage lives behind the :class:`~repro.kg.backend.GraphBackend`
protocol; the default :class:`~repro.kg.backend.ColumnarBackend` interns
identifiers to contiguous int ids and answers pattern queries from numpy
CSR adjacency slices, while :class:`~repro.kg.backend.SetBackend` keeps
the original dict-of-set design for parity testing.

``match`` returns results in backend-defined (deterministic per process)
order; pass ``sort=True`` when a deterministic sorted order is required.
Insertion is idempotent: adding a duplicate triple is a no-op.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.kg.backend import (
    DEFAULT_BACKEND,
    GraphBackend,
    Pattern,
    make_backend,
)
from repro.kg.triple import Triple


class TripleStore:
    """A set of triples with pattern indexes behind a pluggable backend."""

    def __init__(self, triples: Iterable[Triple] = (),
                 backend: Union[str, GraphBackend] = DEFAULT_BACKEND) -> None:
        if isinstance(backend, str):
            self.backend_name = backend
            self._backend: GraphBackend = make_backend(backend)
        else:
            self.backend_name = getattr(backend, "name", type(backend).__name__)
            self._backend = backend
        self.add_many(triples)

    @property
    def backend(self) -> GraphBackend:
        """The storage backend (id-level access for the hot callers)."""
        return self._backend

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        """Add a triple; return True if it was new, False if already present."""
        return self._backend.add(triple.head, triple.relation, triple.tail)

    def add_many(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return the count of newly inserted ones.

        Delegates to the backend's bulk path — the sharded backend
        partitions the batch and loads shards in parallel.
        """
        return self._backend.add_many(triples)

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present; return True when something was removed."""
        return self._backend.discard(triple.head, triple.relation, triple.tail)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, triple: Triple) -> bool:
        return self._backend.contains(triple.head, triple.relation, triple.tail)

    def __len__(self) -> int:
        return len(self._backend)

    def __iter__(self) -> Iterator[Triple]:
        return self._backend.iter_triples()

    def match(
        self,
        head: Optional[str] = None,
        relation: Optional[str] = None,
        tail: Optional[str] = None,
        sort: bool = False,
    ) -> List[Triple]:
        """Return all triples matching a pattern; ``None`` is a wildcard.

        The most selective available index is consulted, so bound patterns
        never scan.  Results come back in backend order; pass ``sort=True``
        for the deterministic sorted order the seed store used to return.
        """
        return self._backend.match(head, relation, tail, sort=sort)

    def iter_match(
        self,
        head: Optional[str] = None,
        relation: Optional[str] = None,
        tail: Optional[str] = None,
    ) -> Iterator[Triple]:
        """Iterate over matching triples without materializing a list."""
        return self._backend.iter_match(head, relation, tail)

    def match_many(self, patterns: Sequence[Pattern],
                   sort: bool = False) -> List[List[Triple]]:
        """Answer a batch of patterns in one call (one result list each)."""
        return self._backend.match_many(patterns, sort=sort)

    def count(
        self,
        head: Optional[str] = None,
        relation: Optional[str] = None,
        tail: Optional[str] = None,
    ) -> int:
        """Count triples matching a pattern without materializing results."""
        return self._backend.count(head, relation, tail)

    def tails(self, head: str, relation: str) -> List[str]:
        """Return all tails t such that (head, relation, t) is in the store."""
        return self._backend.tails(head, relation)

    def heads(self, relation: str, tail: str) -> List[str]:
        """Return all heads h such that (h, relation, tail) is in the store."""
        return self._backend.heads(relation, tail)

    def count_many(self, patterns: Sequence[Pattern]) -> List[int]:
        """Batched :meth:`count` over patterns (one backend call).

        The query planner's selectivity ordering runs on this — the
        sharded backend routes head-bound patterns to their owner shard
        and answers the batch in one pass per shard.
        """
        return self._backend.count_many(patterns)

    def tails_many(self, pairs: Sequence[Tuple[str, str]]) -> List[List[str]]:
        """Batched :meth:`tails` over (head, relation) pairs."""
        return self._backend.tails_many(pairs)

    def degree_many(self, nodes: Sequence[str]) -> List[int]:
        """Batched :meth:`degree` over nodes."""
        return self._backend.degree_many(nodes)

    def relations(self) -> List[str]:
        """Return all relation identifiers with at least one triple."""
        return self._backend.relations()

    def entities(self) -> List[str]:
        """Return all identifiers appearing as head or tail of some triple."""
        return self._backend.entities()

    def heads_only(self) -> List[str]:
        """Return all identifiers appearing in head position."""
        return self._backend.heads_only()

    def relation_frequencies(self) -> Dict[str, int]:
        """Return relation → triple-count (the long-tail histogram of Fig. 5)."""
        return self._backend.relation_frequencies()

    def degree(self, node: str) -> int:
        """Return total degree (out-degree + in-degree) of a node."""
        return self._backend.degree(node)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: "str | Path") -> "Path":
        """Persist the store as an on-disk, memory-mappable directory.

        Backends of the columnar family write their own consolidated
        state; other backends (e.g. ``set``) are first copied through an
        in-memory :class:`~repro.kg.backend.ColumnarBackend`.  Reopen
        with :meth:`TripleStore.open`.
        """
        backend = self._backend
        if not hasattr(backend, "save"):
            from repro.kg.backend import ColumnarBackend

            columnar = ColumnarBackend()
            for triple in backend.iter_triples():
                columnar.add(triple.head, triple.relation, triple.tail)
            backend = columnar
        return backend.save(directory)

    @classmethod
    def open(cls, directory: "str | Path") -> "TripleStore":
        """Open a store directory written by :meth:`save`.

        Dispatches on the header magic: sharded directories reopen as a
        :class:`~repro.kg.sharded_backend.ShardedBackend`, single-store
        directories as an :class:`~repro.kg.mmap_backend.MmapBackend`.
        """
        from repro.kg.mmap_backend import MmapBackend, peek_store_magic
        from repro.kg.sharded_backend import SHARDED_MAGIC, ShardedBackend

        if peek_store_magic(directory) == SHARDED_MAGIC:
            return cls(backend=ShardedBackend.open(directory))
        return cls(backend=MmapBackend.open(directory))

    def copy(self) -> "TripleStore":
        """Return an independent, fully writable copy of the store.

        Copies stay on the same backend kind, with one exception: a copy
        of an mmap-backed store materializes as an in-memory
        :class:`~repro.kg.backend.ColumnarBackend`.  An empty
        ``MmapBackend`` clone would route every write through the dict-
        free overlay (binary searches per insert) and keep none of the
        on-disk base it was cloned from — the columnar backend is the
        correct in-memory equivalent.
        """
        from repro.kg.backend import ColumnarBackend
        from repro.kg.mmap_backend import MmapBackend

        clone_backend = self._backend.clone_empty()
        if isinstance(clone_backend, MmapBackend):
            clone_backend = ColumnarBackend(
                delta_threshold=clone_backend.delta_threshold)
        return TripleStore(self._backend.iter_triples(), backend=clone_backend)

    def triples(self) -> List[Triple]:
        """Return all triples sorted deterministically."""
        return sorted(self._backend.iter_triples())
