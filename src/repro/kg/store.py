"""An indexed, in-memory triple store.

The store keeps six single- and two-key indexes (SPO / POS / OSP style) so
that every triple-pattern lookup used by the construction pipeline, the
query engine and the benchmark samplers is a dictionary access rather than
a scan.  Insertion is idempotent: adding a duplicate triple is a no-op.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.kg.triple import Triple


class TripleStore:
    """A set of triples with pattern indexes.

    The public query surface is :meth:`match`, which accepts ``None`` as a
    wildcard for any of the three positions, mirroring SPARQL basic graph
    patterns with a single triple pattern.
    """

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: Set[Triple] = set()
        self._by_head: Dict[str, Set[Triple]] = defaultdict(set)
        self._by_relation: Dict[str, Set[Triple]] = defaultdict(set)
        self._by_tail: Dict[str, Set[Triple]] = defaultdict(set)
        self._by_head_relation: Dict[Tuple[str, str], Set[Triple]] = defaultdict(set)
        self._by_relation_tail: Dict[Tuple[str, str], Set[Triple]] = defaultdict(set)
        self._by_head_tail: Dict[Tuple[str, str], Set[Triple]] = defaultdict(set)
        for triple in triples:
            self.add(triple)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        """Add a triple; return True if it was new, False if already present."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_head[triple.head].add(triple)
        self._by_relation[triple.relation].add(triple)
        self._by_tail[triple.tail].add(triple)
        self._by_head_relation[(triple.head, triple.relation)].add(triple)
        self._by_relation_tail[(triple.relation, triple.tail)].add(triple)
        self._by_head_tail[(triple.head, triple.tail)].add(triple)
        return True

    def add_many(self, triples: Iterable[Triple]) -> int:
        """Add many triples; return the count of newly inserted ones."""
        return sum(1 for triple in triples if self.add(triple))

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present; return True when something was removed."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._by_head[triple.head].discard(triple)
        self._by_relation[triple.relation].discard(triple)
        self._by_tail[triple.tail].discard(triple)
        self._by_head_relation[(triple.head, triple.relation)].discard(triple)
        self._by_relation_tail[(triple.relation, triple.tail)].discard(triple)
        self._by_head_tail[(triple.head, triple.tail)].discard(triple)
        return True

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def match(
        self,
        head: Optional[str] = None,
        relation: Optional[str] = None,
        tail: Optional[str] = None,
    ) -> List[Triple]:
        """Return all triples matching a pattern; ``None`` is a wildcard.

        The most selective available index is consulted, so fully bound and
        doubly bound patterns never scan.
        """
        if head is not None and relation is not None and tail is not None:
            candidate = Triple(head, relation, tail)
            return [candidate] if candidate in self._triples else []
        if head is not None and relation is not None:
            return sorted(self._by_head_relation.get((head, relation), ()))
        if relation is not None and tail is not None:
            return sorted(self._by_relation_tail.get((relation, tail), ()))
        if head is not None and tail is not None:
            return sorted(self._by_head_tail.get((head, tail), ()))
        if head is not None:
            return sorted(self._by_head.get(head, ()))
        if relation is not None:
            return sorted(self._by_relation.get(relation, ()))
        if tail is not None:
            return sorted(self._by_tail.get(tail, ()))
        return sorted(self._triples)

    def count(
        self,
        head: Optional[str] = None,
        relation: Optional[str] = None,
        tail: Optional[str] = None,
    ) -> int:
        """Count triples matching a pattern without materializing a sorted list."""
        if head is None and relation is None and tail is None:
            return len(self._triples)
        if head is not None and relation is not None and tail is not None:
            return 1 if Triple(head, relation, tail) in self._triples else 0
        if head is not None and relation is not None:
            return len(self._by_head_relation.get((head, relation), ()))
        if relation is not None and tail is not None:
            return len(self._by_relation_tail.get((relation, tail), ()))
        if head is not None and tail is not None:
            return len(self._by_head_tail.get((head, tail), ()))
        if head is not None:
            return len(self._by_head.get(head, ()))
        if relation is not None:
            return len(self._by_relation.get(relation, ()))
        return len(self._by_tail.get(tail, ()))

    def tails(self, head: str, relation: str) -> List[str]:
        """Return all tails t such that (head, relation, t) is in the store."""
        return sorted(t.tail for t in self._by_head_relation.get((head, relation), ()))

    def heads(self, relation: str, tail: str) -> List[str]:
        """Return all heads h such that (h, relation, tail) is in the store."""
        return sorted(t.head for t in self._by_relation_tail.get((relation, tail), ()))

    def relations(self) -> List[str]:
        """Return all relation identifiers with at least one triple."""
        return sorted(rel for rel, triples in self._by_relation.items() if triples)

    def entities(self) -> List[str]:
        """Return all identifiers appearing as head or tail of some triple."""
        nodes = {key for key, triples in self._by_head.items() if triples}
        nodes.update(key for key, triples in self._by_tail.items() if triples)
        return sorted(nodes)

    def heads_only(self) -> List[str]:
        """Return all identifiers appearing in head position."""
        return sorted(key for key, triples in self._by_head.items() if triples)

    def relation_frequencies(self) -> Dict[str, int]:
        """Return relation → triple-count (the long-tail histogram of Fig. 5)."""
        return {rel: len(triples) for rel, triples in self._by_relation.items() if triples}

    def degree(self, node: str) -> int:
        """Return total degree (out-degree + in-degree) of a node."""
        return len(self._by_head.get(node, ())) + len(self._by_tail.get(node, ()))

    def copy(self) -> "TripleStore":
        """Return a deep-indexed copy of the store."""
        return TripleStore(self._triples)

    def triples(self) -> List[Triple]:
        """Return all triples sorted deterministically."""
        return sorted(self._triples)
