"""Shard routing: head-id hashing, batch grouping, scatter/gather merge.

The partitioning rule and the route/broadcast/merge skeleton used by
every sharded deployment live here as **pure functions**, so the
in-process :class:`~repro.kg.sharded_backend.ShardedBackend` and the
distributed :class:`~repro.kg.cluster.ClusterBackend` (N shard *server*
processes behind one coordinator) route identically — a triple's owner
shard is a property of its head id and the shard count, never of which
side of a socket the decision is made on.

Partitioning rule
-----------------
A triple ``(h, r, t)`` lives in shard
``((id(h) * 2654435761) & 0xFFFFFFFF) % n_shards`` (Knuth's
multiplicative hash over the interned head id, so consecutive ids do not
stripe).  Because the rule only looks at the head, head-bound operations
route to exactly one shard; everything else fans out and merges.

The scatter/gather skeleton
---------------------------
:func:`scatter_gather` is the shared shape of every batched operation:
classify each item (owner shard / broadcast / statically empty), build
exactly ONE job per touched shard answering that shard's routed group
plus the broadcast set, run the jobs through a caller-supplied runner
(the sharded backend's ad-hoc thread pool, the cluster's persistent
pool doing wire I/O), and merge each broadcast item's per-shard parts.
One job per shard is a hard invariant: an in-process shard's lazy
attach/rebuild is not thread-safe within a fan-out, and a remote
shard's connection serves one request at a time.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.kg.backend import Interner

#: Knuth's multiplicative hash constant (mod 2**32).
HASH_MULTIPLIER = 2654435761
HASH_MASK = (1 << 32) - 1

_T = TypeVar("_T")

#: ``classify`` return value: the item fans out to every shard.
BROADCAST = object()

#: A runner takes (thunks, parallel-allowed) and returns their results
#: in submission order.
Runner = Callable[[Sequence[Callable[[], object]], bool], List]

#: Batches at least this large run their per-shard jobs threaded; below
#: it, thread dispatch costs more than the work it hides.
PARALLEL_BATCH_THRESHOLD = 32


def shard_of_id(head_id: int, n_shards: int) -> int:
    """The shard owning one interned head id."""
    return ((head_id * HASH_MULTIPLIER) & HASH_MASK) % n_shards


def shard_of_ids(head_ids: np.ndarray, n_shards: int) -> np.ndarray:
    """Vectorized shard assignment for an int64 array of head ids."""
    mixed = (head_ids.astype(np.uint64) * np.uint64(HASH_MULTIPLIER)) \
        & np.uint64(HASH_MASK)
    return (mixed % np.uint64(n_shards)).astype(np.int64)


def run_serially(thunks: Sequence[Callable[[], _T]],
                 parallel: bool = False) -> List[_T]:
    """The trivial :data:`Runner`: call every thunk in order."""
    return [thunk() for thunk in thunks]


def scatter_gather(items: Sequence, *, n_shards: int,
                   classify: Callable,
                   empty: Callable[[], _T],
                   shard_call: Callable[[int, List], List[_T]],
                   run: Runner = run_serially,
                   broadcast_call: Optional[Callable[[int, List],
                                                     List[_T]]] = None,
                   merge: Optional[Callable[[List[_T]], _T]] = None
                   ) -> List[_T]:
    """Route/broadcast/merge a batch across shards, one job per shard.

    ``classify(item)`` returns the owner shard index, :data:`BROADCAST`
    to fan the item out to every shard, or ``None`` when the answer is
    statically ``empty()`` (an unknown head symbol).  Routed groups go
    to their shard via ``shard_call(shard_index, group)``; broadcast
    items go to every shard via ``broadcast_call`` (default:
    ``shard_call``) and each item's per-shard results are combined with
    ``merge`` in shard-index order — deterministic, so merged results
    are identical no matter where the shards live.  The per-shard jobs
    are handed to ``run`` with a parallel hint for batches of
    ≥ :data:`PARALLEL_BATCH_THRESHOLD` items.
    """
    results: List[Optional[_T]] = [None] * len(items)
    routed: Dict[int, List[int]] = {}
    broadcast: List[int] = []
    for position, item in enumerate(items):
        where = classify(item)
        if where is None:
            results[position] = empty()
        elif where is BROADCAST:
            broadcast.append(position)
        else:
            routed.setdefault(where, []).append(position)
    broadcast_items = [items[position] for position in broadcast]
    if broadcast_call is None:
        broadcast_call = shard_call
    job_shards = list(range(n_shards)) if broadcast else sorted(routed)

    def make_thunk(shard_index: int) -> Callable[[], Tuple[List[_T], List[_T]]]:
        group = [items[position] for position in routed.get(shard_index, ())]

        def thunk() -> Tuple[List[_T], List[_T]]:
            routed_part = shard_call(shard_index, group) if group else []
            broadcast_part = broadcast_call(shard_index, broadcast_items) \
                if broadcast_items else []
            return routed_part, broadcast_part
        return thunk

    parts = run([make_thunk(shard_index) for shard_index in job_shards],
                len(items) >= PARALLEL_BATCH_THRESHOLD)
    broadcast_parts: List[List[_T]] = []
    for shard_index, (routed_part, broadcast_part) in zip(job_shards, parts):
        for position, value in zip(routed.get(shard_index, ()), routed_part):
            results[position] = value
        broadcast_parts.append(broadcast_part)
    for offset, position in enumerate(broadcast):
        results[position] = merge([part[offset]
                                   for part in broadcast_parts if part])
    return results


# --------------------------------------------------------------------------- #
# merge helpers — re-establish the documented guarantees on gathered parts
# --------------------------------------------------------------------------- #
def concat_id_blocks(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-shard ``(k, 3)`` id blocks in shard order."""
    blocks = [block for block in blocks if len(block)]
    if not blocks:
        return np.zeros((0, 3), dtype=np.int64)
    return blocks[0] if len(blocks) == 1 else np.concatenate(blocks)


def merge_triple_lists(parts: Sequence[List], sort: bool = False) -> List:
    """Flatten per-shard triple lists; ``sort=True`` restores the
    canonical ascending ``(head, relation, tail)`` order."""
    merged = [triple for part in parts for triple in part]
    if sort:
        merged.sort()
    return merged


def merge_sorted_unique(parts: Sequence[List[str]]) -> List[str]:
    """Union per-shard symbol lists into one sorted deduplicated list."""
    collected: set = set()
    for part in parts:
        collected.update(part)
    return sorted(collected)


def merge_frequency_dicts(parts: Sequence[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-shard ``symbol -> count`` tallies."""
    totals: Dict[str, int] = {}
    for part in parts:
        for symbol, count in part.items():
            totals[symbol] = totals.get(symbol, 0) + count
    return totals


def interner_fingerprint(entity_interner: Interner,
                         relation_interner: Interner) -> str:
    """A cheap digest of both interner tables' exact contents.

    Two parties whose fingerprints match assign identical ids to
    identical symbols, so raw id patterns and id blocks can cross the
    wire between them without translation.  The coordinator compares its
    fingerprint against each shard server's at handshake time; any
    mismatch forces the string-level (translating) query path.
    """
    state = 0
    for interner in (entity_interner, relation_interner):
        for symbol in interner.symbol_table():
            encoded = symbol.encode("utf-8")
            state = zlib.crc32(len(encoded).to_bytes(4, "little"), state)
            state = zlib.crc32(encoded, state)
        state = zlib.crc32(b"\x00", state)
    return f"{len(entity_interner)}:{len(relation_interner)}:{state:08x}"
