"""Graph statistics mirroring Table I of the paper.

Table I reports, for the full OpenBG: the number of core classes, core
concepts, relation types, products and triples; per-class/concept level
breakdowns of the taxonomy (level1..level5, total, leaf counts); and
per-relation triple counts grouped by property kind (object / data / meta).
:func:`compute_statistics` reproduces the same accounting over any
:class:`~repro.kg.graph.KnowledgeGraph` built by this library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.kg.graph import KnowledgeGraph
from repro.kg.namespaces import MetaProperty


@dataclass
class TaxonomyBreakdown:
    """Per-level node counts for one core class/concept taxonomy."""

    root: str
    level_counts: Dict[int, int] = field(default_factory=dict)
    total: int = 0
    leaves: int = 0

    def as_row(self, max_level: int = 5) -> List[str]:
        """Render the breakdown as a printable row (levels 1..max_level)."""
        cells = [self.root]
        for level in range(1, max_level + 1):
            count = self.level_counts.get(level, 0)
            cells.append(str(count) if count else "/")
        cells.append(f"{self.total} / {self.leaves}")
        return cells


@dataclass
class GraphStatistics:
    """The full Table-I-style statistics bundle."""

    num_core_classes: int
    num_core_concepts: int
    num_relation_types: int
    num_products: int
    num_triples: int
    taxonomy: Dict[str, TaxonomyBreakdown]
    object_property_counts: Dict[str, int]
    data_property_counts: Dict[str, int]
    meta_property_counts: Dict[str, int]

    def overall_rows(self) -> List[List[str]]:
        """Rows for the "Overall" block of Table I."""
        return [
            ["# core classes", str(self.num_core_classes)],
            ["# core concepts", str(self.num_core_concepts)],
            ["# relation types", str(self.num_relation_types)],
            ["# products (instances of categories)", str(self.num_products)],
            ["# triples", str(self.num_triples)],
        ]

    def format_table(self) -> str:
        """Render the whole statistics bundle as a printable table."""
        lines = [f"=== {'Overall':^40} ==="]
        for name, value in self.overall_rows():
            lines.append(f"{name:<45}{value:>12}")
        lines.append("=== Core Class/Concept taxonomy (levels 1-5 | total/leaf) ===")
        header = ["root"] + [f"L{i}" for i in range(1, 6)] + ["all/leaf"]
        lines.append(" | ".join(f"{h:>12}" for h in header))
        for breakdown in self.taxonomy.values():
            lines.append(" | ".join(f"{c:>12}" for c in breakdown.as_row()))
        for title, counts in (
            ("object properties", self.object_property_counts),
            ("data properties", self.data_property_counts),
            ("meta properties", self.meta_property_counts),
        ):
            lines.append(f"=== {title} ===")
            for relation, count in sorted(counts.items(), key=lambda kv: -kv[1]):
                lines.append(f"  # {relation:<35}{count:>12}")
        return "\n".join(lines)


def _taxonomy_breakdown(graph: KnowledgeGraph, root: str) -> TaxonomyBreakdown:
    """Compute per-level node counts for the taxonomy rooted at ``root``.

    Level 1 holds the direct children of the root, matching the paper's
    convention where e.g. Category has 93 level-1 nodes.
    """
    breakdown = TaxonomyBreakdown(root=root)
    level = 1
    frontier = graph.children(root)
    seen = {root}
    while frontier:
        new_frontier: List[str] = []
        count_at_level = 0
        for node in frontier:
            if node in seen:
                continue
            seen.add(node)
            count_at_level += 1
            children = [child for child in graph.children(node) if child not in seen]
            if children:
                new_frontier.extend(children)
            else:
                breakdown.leaves += 1
        if count_at_level:
            breakdown.level_counts[level] = count_at_level
            breakdown.total += count_at_level
        frontier = new_frontier
        level += 1
        if level > 16:  # safety bound against accidental cycles
            break
    return breakdown


def compute_statistics(graph: KnowledgeGraph,
                       taxonomy_roots: List[str] | None = None) -> GraphStatistics:
    """Compute Table-I-style statistics for ``graph``.

    ``taxonomy_roots`` defaults to the eight core classes/concepts of the
    OpenBG ontology when present in the graph.
    """
    if taxonomy_roots is None:
        default_roots = ["Category", "Brand", "Place",
                         "Scene", "Crowd", "Theme", "Time", "MarketSegment"]
        taxonomy_roots = [root for root in default_roots
                          if root in graph.classes or root in graph.concepts]

    frequencies = graph.relation_frequencies()
    meta_names = {prop.value for prop in MetaProperty}
    object_counts = {rel: count for rel, count in frequencies.items()
                     if rel in graph.object_properties}
    meta_counts = {rel: count for rel, count in frequencies.items() if rel in meta_names}
    data_counts = {rel: count for rel, count in frequencies.items()
                   if rel not in object_counts and rel not in meta_counts}

    # Products are the entities typed as some descendant of Category.
    category_nodes = set()
    if "Category" in graph.classes:
        category_nodes = set(graph.descendants("Category")) | {"Category"}
    num_products = 0
    for entity in graph.entities:
        types = set(graph.types_of(entity))
        if types & category_nodes:
            num_products += 1

    taxonomy = {root: _taxonomy_breakdown(graph, root) for root in taxonomy_roots}
    return GraphStatistics(
        num_core_classes=len(graph.classes),
        num_core_concepts=len(graph.concepts),
        num_relation_types=len(graph.object_properties) + len(graph.data_properties)
        + len(meta_counts),
        num_products=num_products,
        num_triples=len(graph.store),
        taxonomy=taxonomy,
        object_property_counts=object_counts,
        data_property_counts=data_counts,
        meta_property_counts=meta_counts,
    )
