"""On-disk, memory-mapped columnar graph storage.

The billion-scale business KG the paper describes cannot live in a
Python process heap, so this module persists the
:class:`~repro.kg.backend.ColumnarBackend` state — interner tables,
``int64`` triple columns, the three sort permutations and their CSR
offsets — as flat files under a directory and serves queries straight
from ``numpy.memmap`` views of them:

* ``header.json`` — versioned header (magic, format version, dtype,
  element counts per file); written **last** so an interrupted save
  never leaves a directory that looks openable.
* ``entities.json`` / ``relations.json`` — interner symbols in id order.
* ``triples.i64`` — the (n, 3) column block, row-major.
* ``perm_spo.i64`` / ``perm_pos.i64`` / ``perm_osp.i64`` — sort
  permutations.
* ``head_offsets.i64`` / ``rel_offsets.i64`` / ``tail_offsets.i64`` —
  CSR group offsets.

:class:`MmapBackend` extends :class:`ColumnarBackend`: the base block is
a read-only memmap instead of in-heap arrays, membership tests are
binary searches on the ``spo`` permutation instead of a Python dict, and
mutations land in the same in-memory delta overlay the columnar backend
uses (so an opened store stays fully mutable).  When the overlay
outgrows ``delta_threshold`` — or a caller touches the flat id surface —
the live base rows and the overlay are consolidated into in-heap arrays;
:meth:`save` writes that consolidated state back to disk.

``MmapBackend()`` without a directory starts empty (an overlay over a
zero-row base) and is registered in :data:`~repro.kg.backend.BACKENDS`
as ``"mmap"``, so ``TripleStore(backend="mmap")`` and the CLI's
``--backend mmap`` work like any other backend; build → ``save`` →
:meth:`open` is the bulk-load-once, query-from-disk lifecycle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import StorageError
from repro.kg.backend import BACKENDS, ColumnarBackend, Interner
from repro.kg.triple import Triple

#: Identifies the directory layout; never reuse across incompatible formats.
MAGIC = "repro-kg-columnar"

#: Bump when the file layout changes; :func:`load_header` rejects mismatches.
FORMAT_VERSION = 1

HEADER_FILE = "header.json"
ENTITIES_FILE = "entities.json"
RELATIONS_FILE = "relations.json"

#: Array files: name -> (element-count key derivation, shape builder).
_INT64 = np.dtype(np.int64)


def _array_specs(num_triples: int, num_entities: int,
                 num_relations: int) -> Dict[str, Tuple[int, Tuple[int, ...]]]:
    """name -> (element count, memmap shape) for every array file."""
    return {
        "triples.i64": (3 * num_triples, (num_triples, 3)),
        "perm_spo.i64": (num_triples, (num_triples,)),
        "perm_pos.i64": (num_triples, (num_triples,)),
        "perm_osp.i64": (num_triples, (num_triples,)),
        "head_offsets.i64": (num_entities + 1, (num_entities + 1,)),
        "rel_offsets.i64": (num_relations + 1, (num_relations + 1,)),
        "tail_offsets.i64": (num_entities + 1, (num_entities + 1,)),
    }


def write_backend_dir(backend: ColumnarBackend, directory: str | Path) -> Path:
    """Persist a columnar-family backend as a memory-mappable directory.

    Consolidates any pending overlay first, then writes the interner
    tables, the column block, the sort permutations and the CSR offsets.
    The header is written last so a crash mid-save leaves no directory
    that :func:`load_header` would accept.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    backend._ensure_index()
    if isinstance(backend, MmapBackend):
        backend._detach_from(directory)
    # Invalidate any existing header BEFORE touching array files: a crash
    # mid-overwrite must not leave a stale-but-valid header pointing at a
    # mix of old and new columns.
    (directory / HEADER_FILE).unlink(missing_ok=True)
    num_triples = len(backend._cols)
    num_entities = len(backend.entity_interner)
    num_relations = len(backend.relation_interner)
    (directory / ENTITIES_FILE).write_text(
        json.dumps(backend.entity_interner.symbols(), ensure_ascii=False),
        encoding="utf-8")
    (directory / RELATIONS_FILE).write_text(
        json.dumps(backend.relation_interner.symbols(), ensure_ascii=False),
        encoding="utf-8")
    arrays = {
        "triples.i64": backend._cols,
        "perm_spo.i64": backend._perm_spo,
        "perm_pos.i64": backend._perm_pos,
        "perm_osp.i64": backend._perm_osp,
        "head_offsets.i64": backend._head_offsets,
        "rel_offsets.i64": backend._rel_offsets,
        "tail_offsets.i64": backend._tail_offsets,
    }
    for name, array in arrays.items():
        np.ascontiguousarray(array, dtype=np.int64).tofile(directory / name)
    header = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "dtype": _INT64.str,
        "num_triples": num_triples,
        "num_entities": num_entities,
        "num_relations": num_relations,
    }
    # Atomic header write (temp + rename): the directory only becomes
    # openable again once every data file is fully on disk.
    header_tmp = directory / (HEADER_FILE + ".tmp")
    header_tmp.write_text(json.dumps(header, indent=1), encoding="utf-8")
    header_tmp.replace(directory / HEADER_FILE)
    return directory


def load_header(directory: str | Path) -> dict:
    """Read and validate a store directory's header.

    Checks magic, format version, dtype and the byte size of every array
    file against the counts the header declares, so corruption and
    truncation surface at open time as :class:`~repro.errors.StorageError`
    instead of as garbage query results later.
    """
    directory = Path(directory)
    header_path = directory / HEADER_FILE
    if not header_path.is_file():
        raise StorageError(
            f"{directory}: missing {HEADER_FILE} — not a graph store directory")
    try:
        header = json.loads(header_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"{header_path}: unreadable header: {exc}") from exc
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise StorageError(f"{header_path}: bad magic — not a graph store header")
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"{directory}: format version mismatch — store has {version!r}, "
            f"this build reads {FORMAT_VERSION}")
    if header.get("dtype") != _INT64.str:
        raise StorageError(
            f"{directory}: dtype mismatch — store has {header.get('dtype')!r}, "
            f"this platform reads {_INT64.str!r}")
    for key in ("num_triples", "num_entities", "num_relations"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            raise StorageError(f"{directory}: header field {key!r} is invalid")
    specs = _array_specs(header["num_triples"], header["num_entities"],
                         header["num_relations"])
    for name, (count, _shape) in specs.items():
        path = directory / name
        if not path.is_file():
            raise StorageError(f"{directory}: missing array file {name}")
        expected = count * _INT64.itemsize
        actual = path.stat().st_size
        if actual != expected:
            raise StorageError(
                f"{path}: expected {expected} bytes ({count} int64 values), "
                f"found {actual} — truncated or corrupt")
    for name in (ENTITIES_FILE, RELATIONS_FILE):
        if not (directory / name).is_file():
            raise StorageError(f"{directory}: missing interner file {name}")
    return header


def _load_symbols(directory: Path, name: str, expected: int) -> list:
    path = directory / name
    try:
        symbols = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"{path}: unreadable interner table: {exc}") from exc
    if not isinstance(symbols, list) or len(symbols) != expected:
        raise StorageError(
            f"{path}: expected {expected} symbols, "
            f"found {len(symbols) if isinstance(symbols, list) else type(symbols).__name__}")
    return symbols


class MmapBackend(ColumnarBackend):
    """A :class:`ColumnarBackend` whose base block is memory-mapped files.

    ``MmapBackend(directory)`` opens a saved store: the header and the
    interner tables are read eagerly (they are needed for every symbol
    lookup), the seven array files are attached lazily as read-only
    ``np.memmap`` views on first query, so opening costs O(header) and
    bulk column data never has to fit in the heap.  Without a directory
    the backend starts empty and behaves like an in-memory columnar
    store that consolidates through the overlay.

    Differences from the parent:

    * membership (and therefore ``add``/``discard`` dedup) is a binary
      search on the base ``spo`` permutation plus an overlay lookup —
      there is no in-heap dict of all rows;
    * consolidation rebuilds into in-heap arrays (the mapped files are
      immutable); :meth:`save` writes the consolidated state back out;
    * :meth:`clone_empty` returns an **empty in-memory** ``MmapBackend``
      (a copied store does not inherit the source's files).
    """

    name = "mmap"

    def __init__(self, directory: Optional[str | Path] = None, *,
                 delta_threshold: int = 1024) -> None:
        super().__init__(delta_threshold=delta_threshold)
        self._directory: Optional[Path] = None
        self._header: Optional[dict] = None
        # The parent's _rows dict is intentionally unused: membership
        # goes through _find_base_row + the overlay.
        self._dirty = False
        if directory is not None:
            self._directory = Path(directory)
            self._header = load_header(self._directory)
            self.entity_interner = Interner(_load_symbols(
                self._directory, ENTITIES_FILE, self._header["num_entities"]))
            self.relation_interner = Interner(_load_symbols(
                self._directory, RELATIONS_FILE, self._header["num_relations"]))
            if len(self.entity_interner) != self._header["num_entities"] \
                    or len(self.relation_interner) != self._header["num_relations"]:
                raise StorageError(
                    f"{self._directory}: interner tables contain duplicate symbols")

    @classmethod
    def open(cls, directory: str | Path, *, delta_threshold: int = 1024) -> "MmapBackend":
        """Open a store directory written by :func:`write_backend_dir`."""
        return cls(directory, delta_threshold=delta_threshold)

    @property
    def directory(self) -> Optional[Path]:
        """The backing store directory, or ``None`` for an in-memory store."""
        return self._directory

    # ------------------------------------------------------------------ #
    # base attachment / consolidation
    # ------------------------------------------------------------------ #
    def _attach(self) -> None:
        """Attach the base block: memmap the files, or install empty arrays."""
        if self._directory is None:
            self._install_cols(np.zeros((0, 3), dtype=np.int64))
            return
        header = self._header
        specs = _array_specs(header["num_triples"], header["num_entities"],
                             header["num_relations"])

        def mapped(name: str) -> np.ndarray:
            count, shape = specs[name]
            if count == 0:
                return np.zeros(shape, dtype=np.int64)
            return np.memmap(self._directory / name, dtype=np.int64,
                             mode="r", shape=shape)

        self._cols = mapped("triples.i64")
        self._perm_spo = mapped("perm_spo.i64")
        self._perm_pos = mapped("perm_pos.i64")
        self._perm_osp = mapped("perm_osp.i64")
        self._head_offsets = mapped("head_offsets.i64")
        self._rel_offsets = mapped("rel_offsets.i64")
        self._tail_offsets = mapped("tail_offsets.i64")

    def _ensure_attached(self) -> None:
        if self._cols is None:
            self._attach()

    def _ensure_base(self) -> None:
        self._ensure_attached()
        if self._overlay_size() > self.delta_threshold:
            self._rebuild()

    def _ensure_index(self) -> None:
        self._ensure_attached()
        if self._delta_add or self._num_deleted:
            self._rebuild()

    def _rebuild_source(self) -> np.ndarray:
        """Live base rows (stored order) followed by overlay adds (sorted)."""
        self._ensure_attached()
        base = np.asarray(self._cols)
        if self._num_deleted:
            base = base[~self._deleted_mask]
        delta = self._delta_cols()
        if len(delta):
            return np.concatenate((np.ascontiguousarray(base), delta))
        return np.array(base, dtype=np.int64)

    def _detach_from(self, directory: Path) -> None:
        """Copy the base into the heap if it is mapped from ``directory``.

        Called before :meth:`save` overwrites files that this very
        backend may still have mapped (truncating a mapped file is
        undefined behaviour territory).
        """
        if self._directory is None or self._cols is None:
            return
        if self._directory.resolve() != Path(directory).resolve():
            return
        for attr in ("_cols", "_perm_spo", "_perm_pos", "_perm_osp",
                     "_head_offsets", "_rel_offsets", "_tail_offsets"):
            value = getattr(self, attr)
            if isinstance(value, np.memmap):
                setattr(self, attr, np.array(value, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # mutation & membership (no _rows dict)
    # ------------------------------------------------------------------ #
    def add(self, head: str, relation: str, tail: str) -> bool:
        if not (head and relation and tail):
            raise ValueError(
                f"triple components must be non-empty, got ({head!r}, {relation!r}, {tail!r})")
        key = (self.entity_interner.intern(head),
               self.relation_interner.intern(relation),
               self.entity_interner.intern(tail))
        self._ensure_attached()
        if key in self._delta_add:
            return False
        base_row = self._find_base_row(key)
        if base_row is not None:
            if self._deleted_mask is not None and self._deleted_mask[base_row]:
                self._deleted_mask[base_row] = False
                self._num_deleted -= 1
                return True
            return False
        self._delta_add[key] = None
        self._delta_block = None
        return True

    def discard(self, head: str, relation: str, tail: str) -> bool:
        key = self._key_of(head, relation, tail)
        if key is None:
            return False
        self._ensure_attached()
        if key in self._delta_add:
            del self._delta_add[key]
            self._delta_block = None
            return True
        base_row = self._find_base_row(key)
        if base_row is None:
            return False
        if self._deleted_mask is None:
            self._deleted_mask = np.zeros(len(self._cols), dtype=bool)
        if self._deleted_mask[base_row]:
            return False
        self._deleted_mask[base_row] = True
        self._num_deleted += 1
        return True

    def contains(self, head: str, relation: str, tail: str) -> bool:
        key = self._key_of(head, relation, tail)
        if key is None:
            return False
        self._ensure_attached()
        if key in self._delta_add:
            return True
        base_row = self._find_base_row(key)
        if base_row is None:
            return False
        return not (self._deleted_mask is not None and self._deleted_mask[base_row])

    def __len__(self) -> int:
        self._ensure_attached()
        return len(self._cols) - self._num_deleted + len(self._delta_add)

    def iter_triples(self) -> Iterator[Triple]:
        self._ensure_attached()
        entity = self.entity_interner._id_to_symbol
        relation = self.relation_interner._id_to_symbol
        new_triple = Triple.unchecked
        mask = self._deleted_mask
        chunk = 4096
        for start in range(0, len(self._cols), chunk):
            block = np.asarray(self._cols[start:start + chunk])
            if mask is not None:
                block = block[~mask[start:start + chunk]]
            for head_id, relation_id, tail_id in block.tolist():
                yield new_triple(entity[head_id], relation[relation_id],
                                 entity[tail_id])
        for head_id, relation_id, tail_id in self._delta_add:
            yield new_triple(entity[head_id], relation[relation_id],
                             entity[tail_id])

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: str | Path) -> Path:
        """Consolidate and persist to ``directory`` (safe over its own files)."""
        return write_backend_dir(self, directory)


BACKENDS[MmapBackend.name] = MmapBackend
