"""On-disk, memory-mapped columnar graph storage.

The billion-scale business KG the paper describes cannot live in a
Python process heap, so this module persists the
:class:`~repro.kg.backend.ColumnarBackend` state — interner tables,
``int64`` triple columns, the three sort permutations and their CSR
offsets — as flat files under a directory and serves queries straight
from ``numpy.memmap`` views of them:

* ``header.json`` — versioned header (magic, format version, dtype,
  element counts per file); written **last** so an interrupted save
  never leaves a directory that looks openable.
* ``entities.offsets.i64`` + ``entities.blob.utf8`` (and the
  ``relations.*`` pair) — interner symbols in id order as an
  mmap-friendly binary layout: ``offsets`` holds ``n + 1`` int64 byte
  offsets into ``blob``, the concatenation of all UTF-8 encoded
  symbols.  Unlike the JSON tables of format version 1 this loads
  without parsing (one ``fromfile`` + byte slicing) and the blob can be
  paged in lazily by the OS.
* ``triples.i64`` — the (n, 3) column block, row-major.
* ``perm_spo.i64`` / ``perm_pos.i64`` / ``perm_osp.i64`` — sort
  permutations.
* ``head_offsets.i64`` / ``rel_offsets.i64`` / ``tail_offsets.i64`` —
  CSR group offsets.

:class:`MmapBackend` extends :class:`ColumnarBackend`: the base block is
a read-only memmap instead of in-heap arrays, membership tests are
binary searches on the ``spo`` permutation instead of a Python dict, and
mutations land in the same in-memory delta overlay the columnar backend
uses (so an opened store stays fully mutable).  When the overlay
outgrows ``delta_threshold`` — or a caller touches the flat id surface —
the live base rows and the overlay are consolidated into in-heap arrays;
:meth:`save` writes that consolidated state back to disk.

``MmapBackend()`` without a directory starts empty (an overlay over a
zero-row base) and is registered in :data:`~repro.kg.backend.BACKENDS`
as ``"mmap"``, so ``TripleStore(backend="mmap")`` and the CLI's
``--backend mmap`` work like any other backend; build → ``save`` →
:meth:`open` is the bulk-load-once, query-from-disk lifecycle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import StorageError
from repro.kg.backend import BACKENDS, ColumnarBackend, Interner
from repro.kg.triple import Triple

#: Identifies the directory layout; never reuse across incompatible formats.
MAGIC = "repro-kg-columnar"

#: Bump when the file layout changes; :func:`load_header` rejects mismatches.
#: Version 2 replaced the JSON interner tables with the binary
#: offsets + blob layout and added the ``interners`` header field.
FORMAT_VERSION = 2

HEADER_FILE = "header.json"
ENTITY_OFFSETS_FILE = "entities.offsets.i64"
ENTITY_BLOB_FILE = "entities.blob.utf8"
RELATION_OFFSETS_FILE = "relations.offsets.i64"
RELATION_BLOB_FILE = "relations.blob.utf8"

#: ``interners`` header values: tables live next to the arrays, or are
#: provided by the enclosing store (the sharded layout keeps one global
#: pair instead of duplicating them into every shard directory).
INTERNERS_INLINE = "inline"
INTERNERS_EXTERNAL = "external"

#: Array files: name -> (element-count key derivation, shape builder).
_INT64 = np.dtype(np.int64)


def _array_specs(num_triples: int, num_entities: int,
                 num_relations: int) -> Dict[str, Tuple[int, Tuple[int, ...]]]:
    """name -> (element count, memmap shape) for every array file."""
    return {
        "triples.i64": (3 * num_triples, (num_triples, 3)),
        "perm_spo.i64": (num_triples, (num_triples,)),
        "perm_pos.i64": (num_triples, (num_triples,)),
        "perm_osp.i64": (num_triples, (num_triples,)),
        "head_offsets.i64": (num_entities + 1, (num_entities + 1,)),
        "rel_offsets.i64": (num_relations + 1, (num_relations + 1,)),
        "tail_offsets.i64": (num_entities + 1, (num_entities + 1,)),
    }


def write_interner_files(interner: Interner, directory: Path,
                         offsets_name: str, blob_name: str) -> int:
    """Write one interner as the binary offsets + blob pair.

    Returns the blob's byte length (recorded in the header so the files
    are size-validated at open time).  A zero-symbol interner writes a
    one-element offsets file and an **empty** blob file — readers must
    never ``np.memmap`` the blob (zero-byte mappings are rejected);
    :func:`read_interner_files` uses ``read_bytes`` instead.
    """
    encoded = [symbol.encode("utf-8") for symbol in interner.symbols()]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(piece) for piece in encoded], out=offsets[1:])
    blob = b"".join(encoded)
    offsets.tofile(directory / offsets_name)
    (directory / blob_name).write_bytes(blob)
    return len(blob)


def read_interner_files(directory: Path, offsets_name: str, blob_name: str,
                        expected_symbols: int) -> Interner:
    """Load one interner from its binary offsets + blob pair."""
    offsets_path = directory / offsets_name
    offsets = np.fromfile(offsets_path, dtype=np.int64)
    if len(offsets) != expected_symbols + 1 or (len(offsets) and offsets[0] != 0) \
            or np.any(np.diff(offsets) < 0):
        raise StorageError(f"{offsets_path}: corrupt interner offsets")
    blob_path = directory / blob_name
    blob = blob_path.read_bytes()
    if int(offsets[-1]) != len(blob):
        raise StorageError(
            f"{blob_path}: expected {int(offsets[-1])} bytes, found {len(blob)} "
            f"— truncated or corrupt")
    bounds = offsets.tolist()
    try:
        symbols = [blob[bounds[index]:bounds[index + 1]].decode("utf-8")
                   for index in range(expected_symbols)]
    except UnicodeDecodeError as exc:
        raise StorageError(f"{blob_path}: corrupt interner blob: {exc}") from exc
    interner = Interner(symbols)
    if len(interner) != expected_symbols:
        raise StorageError(f"{blob_path}: interner table contains duplicate symbols")
    return interner


def write_backend_dir(backend: ColumnarBackend, directory: str | Path, *,
                      interners: str = INTERNERS_INLINE) -> Path:
    """Persist a columnar-family backend as a memory-mappable directory.

    Consolidates any pending overlay first, then writes the interner
    tables (unless ``interners=INTERNERS_EXTERNAL`` — the sharded layout
    stores one global pair outside the shard directories), the column
    block, the sort permutations and the CSR offsets.  The header is
    written last so a crash mid-save leaves no directory that
    :func:`load_header` would accept.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    backend._ensure_index()
    if len(backend._head_offsets) != len(backend.entity_interner) + 1 \
            or len(backend._rel_offsets) != len(backend.relation_interner) + 1:
        # The interner grew without leaving an overlay behind (symbols
        # interned then discarded, or a *shared* interner grown by a
        # sibling shard): the CSR offset arrays are sized for the old
        # symbol counts.  Queries tolerate that via bounds checks, but
        # the on-disk header sizes files by the interner — rebuild so
        # arrays and header agree.
        backend._rebuild()
    if isinstance(backend, MmapBackend):
        backend._detach_from(directory)
    # Invalidate any existing header BEFORE touching array files: a crash
    # mid-overwrite must not leave a stale-but-valid header pointing at a
    # mix of old and new columns.
    (directory / HEADER_FILE).unlink(missing_ok=True)
    num_triples = len(backend._cols)
    num_entities = len(backend.entity_interner)
    num_relations = len(backend.relation_interner)
    blob_bytes = {}
    if interners == INTERNERS_INLINE:
        blob_bytes["entity_blob_bytes"] = write_interner_files(
            backend.entity_interner, directory, ENTITY_OFFSETS_FILE, ENTITY_BLOB_FILE)
        blob_bytes["relation_blob_bytes"] = write_interner_files(
            backend.relation_interner, directory,
            RELATION_OFFSETS_FILE, RELATION_BLOB_FILE)
    arrays = {
        "triples.i64": backend._cols,
        "perm_spo.i64": backend._perm_spo,
        "perm_pos.i64": backend._perm_pos,
        "perm_osp.i64": backend._perm_osp,
        "head_offsets.i64": backend._head_offsets,
        "rel_offsets.i64": backend._rel_offsets,
        "tail_offsets.i64": backend._tail_offsets,
    }
    for name, array in arrays.items():
        # Empty arrays (a zero-triple store) write zero-byte files; the
        # open side special-cases them instead of memory-mapping.
        np.ascontiguousarray(array, dtype=np.int64).tofile(directory / name)
    header = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "dtype": _INT64.str,
        "num_triples": num_triples,
        "num_entities": num_entities,
        "num_relations": num_relations,
        "interners": interners,
        **blob_bytes,
    }
    # Atomic header write (temp + rename): the directory only becomes
    # openable again once every data file is fully on disk.
    header_tmp = directory / (HEADER_FILE + ".tmp")
    header_tmp.write_text(json.dumps(header, indent=1), encoding="utf-8")
    header_tmp.replace(directory / HEADER_FILE)
    return directory


def load_header(directory: str | Path) -> dict:
    """Read and validate a store directory's header.

    Checks magic, format version, dtype and the byte size of every array
    file against the counts the header declares, so corruption and
    truncation surface at open time as :class:`~repro.errors.StorageError`
    instead of as garbage query results later.
    """
    directory = Path(directory)
    header_path = directory / HEADER_FILE
    if not header_path.is_file():
        raise StorageError(
            f"{directory}: missing {HEADER_FILE} — not a graph store directory")
    try:
        header = json.loads(header_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"{header_path}: unreadable header: {exc}") from exc
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise StorageError(f"{header_path}: bad magic — not a graph store header")
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise StorageError(
            f"{directory}: format version mismatch — store has {version!r}, "
            f"this build reads {FORMAT_VERSION}")
    if header.get("dtype") != _INT64.str:
        raise StorageError(
            f"{directory}: dtype mismatch — store has {header.get('dtype')!r}, "
            f"this platform reads {_INT64.str!r}")
    for key in ("num_triples", "num_entities", "num_relations"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            raise StorageError(f"{directory}: header field {key!r} is invalid")
    interners = header.get("interners", INTERNERS_INLINE)
    if interners not in (INTERNERS_INLINE, INTERNERS_EXTERNAL):
        raise StorageError(f"{directory}: header field 'interners' is invalid")
    sizes = {name: count * _INT64.itemsize
             for name, (count, _shape)
             in _array_specs(header["num_triples"], header["num_entities"],
                             header["num_relations"]).items()}
    if interners == INTERNERS_INLINE:
        for key in ("entity_blob_bytes", "relation_blob_bytes"):
            if not isinstance(header.get(key), int) or header[key] < 0:
                raise StorageError(f"{directory}: header field {key!r} is invalid")
        sizes[ENTITY_OFFSETS_FILE] = (header["num_entities"] + 1) * _INT64.itemsize
        sizes[RELATION_OFFSETS_FILE] = (header["num_relations"] + 1) * _INT64.itemsize
        sizes[ENTITY_BLOB_FILE] = header["entity_blob_bytes"]
        sizes[RELATION_BLOB_FILE] = header["relation_blob_bytes"]
    for name, expected in sizes.items():
        path = directory / name
        if not path.is_file():
            raise StorageError(f"{directory}: missing array file {name}")
        actual = path.stat().st_size
        if actual != expected:
            raise StorageError(
                f"{path}: expected {expected} bytes, "
                f"found {actual} — truncated or corrupt")
    return header


def peek_store_magic(directory: str | Path) -> "str | None":
    """The ``magic`` string of a store directory's header, if readable.

    Returns ``None`` when there is no parseable header at all — callers
    fall through to a format-specific ``open`` whose error messages are
    more precise than anything this sniffer could raise.
    """
    header_path = Path(directory) / HEADER_FILE
    try:
        header = json.loads(header_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return header.get("magic") if isinstance(header, dict) else None


class MmapBackend(ColumnarBackend):
    """A :class:`ColumnarBackend` whose base block is memory-mapped files.

    ``MmapBackend(directory)`` opens a saved store: the header and the
    interner tables are read eagerly (they are needed for every symbol
    lookup), the seven array files are attached lazily as read-only
    ``np.memmap`` views on first query, so opening costs O(header) and
    bulk column data never has to fit in the heap.  Without a directory
    the backend starts empty and behaves like an in-memory columnar
    store that consolidates through the overlay.

    Differences from the parent:

    * membership (and therefore ``add``/``discard`` dedup) is a binary
      search on the base ``spo`` permutation plus an overlay lookup —
      there is no in-heap dict of all rows;
    * consolidation rebuilds into in-heap arrays (the mapped files are
      immutable); :meth:`save` writes the consolidated state back out;
    * :meth:`clone_empty` returns an **empty in-memory** ``MmapBackend``
      (a copied store does not inherit the source's files).
    """

    name = "mmap"

    def __init__(self, directory: Optional[str | Path] = None, *,
                 delta_threshold: int = 1024,
                 interners: Optional[Tuple[Interner, Interner]] = None) -> None:
        super().__init__(delta_threshold=delta_threshold)
        self._directory: Optional[Path] = None
        self._header: Optional[dict] = None
        # The parent's _rows dict is intentionally unused: membership
        # goes through _find_base_row + the overlay.
        self._dirty = False
        if interners is not None:
            self.entity_interner, self.relation_interner = interners
        if directory is not None:
            self._directory = Path(directory)
            self._header = load_header(self._directory)
            if self._header.get("interners") == INTERNERS_EXTERNAL:
                if interners is None:
                    raise StorageError(
                        f"{self._directory}: store was written with external "
                        f"interner tables (a shard of a sharded store) — open "
                        f"the enclosing sharded directory instead")
                if len(self.entity_interner) != self._header["num_entities"] \
                        or len(self.relation_interner) != self._header["num_relations"]:
                    raise StorageError(
                        f"{self._directory}: shard header disagrees with the "
                        f"shared interner tables — corrupt or mixed-up shard")
            elif interners is not None:
                raise StorageError(
                    f"{self._directory}: store has inline interner tables; "
                    f"opening it with externally supplied interners would "
                    f"desynchronize symbol ids")
            else:
                self.entity_interner = read_interner_files(
                    self._directory, ENTITY_OFFSETS_FILE, ENTITY_BLOB_FILE,
                    self._header["num_entities"])
                self.relation_interner = read_interner_files(
                    self._directory, RELATION_OFFSETS_FILE, RELATION_BLOB_FILE,
                    self._header["num_relations"])

    @classmethod
    def open(cls, directory: str | Path, *, delta_threshold: int = 1024) -> "MmapBackend":
        """Open a store directory written by :func:`write_backend_dir`."""
        return cls(directory, delta_threshold=delta_threshold)

    @property
    def directory(self) -> Optional[Path]:
        """The backing store directory, or ``None`` for an in-memory store."""
        return self._directory

    # ------------------------------------------------------------------ #
    # base attachment / consolidation
    # ------------------------------------------------------------------ #
    def _attach(self) -> None:
        """Attach the base block: memmap the files, or install empty arrays."""
        if self._directory is None:
            self._install_cols(np.zeros((0, 3), dtype=np.int64))
            return
        header = self._header
        specs = _array_specs(header["num_triples"], header["num_entities"],
                             header["num_relations"])

        def mapped(name: str) -> np.ndarray:
            count, shape = specs[name]
            if count == 0:
                return np.zeros(shape, dtype=np.int64)
            return np.memmap(self._directory / name, dtype=np.int64,
                             mode="r", shape=shape)

        self._cols = mapped("triples.i64")
        self._perm_spo = mapped("perm_spo.i64")
        self._perm_pos = mapped("perm_pos.i64")
        self._perm_osp = mapped("perm_osp.i64")
        self._head_offsets = mapped("head_offsets.i64")
        self._rel_offsets = mapped("rel_offsets.i64")
        self._tail_offsets = mapped("tail_offsets.i64")

    def _ensure_attached(self) -> None:
        if self._cols is None:
            self._attach()

    def _ensure_base(self) -> None:
        self._ensure_attached()
        if self._overlay_size() > self.delta_threshold:
            self._rebuild()

    def _ensure_index(self) -> None:
        self._ensure_attached()
        if self._delta_add or self._num_deleted:
            self._rebuild()

    def _rebuild_source(self) -> np.ndarray:
        """Live base rows (stored order) followed by overlay adds (sorted)."""
        self._ensure_attached()
        base = np.asarray(self._cols)
        if self._num_deleted:
            base = base[~self._deleted_mask]
        delta = self._delta_cols()
        if len(delta):
            return np.concatenate((np.ascontiguousarray(base), delta))
        return np.array(base, dtype=np.int64)

    def _detach_from(self, directory: Path) -> None:
        """Copy the base into the heap if it is mapped from ``directory``.

        Called before :meth:`save` overwrites files that this very
        backend may still have mapped (truncating a mapped file is
        undefined behaviour territory).
        """
        if self._directory is None or self._cols is None:
            return
        if self._directory.resolve() != Path(directory).resolve():
            return
        for attr in ("_cols", "_perm_spo", "_perm_pos", "_perm_osp",
                     "_head_offsets", "_rel_offsets", "_tail_offsets"):
            value = getattr(self, attr)
            if isinstance(value, np.memmap):
                setattr(self, attr, np.array(value, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # mutation & membership (no _rows dict)
    # ------------------------------------------------------------------ #
    def add(self, head: str, relation: str, tail: str) -> bool:
        if not (head and relation and tail):
            raise ValueError(
                f"triple components must be non-empty, got ({head!r}, {relation!r}, {tail!r})")
        key = (self.entity_interner.intern(head),
               self.relation_interner.intern(relation),
               self.entity_interner.intern(tail))
        self._ensure_attached()
        if key in self._delta_add:
            return False
        base_row = self._find_base_row(key)
        if base_row is not None:
            if self._deleted_mask is not None and self._deleted_mask[base_row]:
                self._deleted_mask[base_row] = False
                self._num_deleted -= 1
                return True
            return False
        self._delta_add[key] = None
        self._delta_block = None
        return True

    def discard(self, head: str, relation: str, tail: str) -> bool:
        key = self._key_of(head, relation, tail)
        if key is None:
            return False
        self._ensure_attached()
        if key in self._delta_add:
            del self._delta_add[key]
            self._delta_block = None
            return True
        base_row = self._find_base_row(key)
        if base_row is None:
            return False
        if self._deleted_mask is None:
            self._deleted_mask = np.zeros(len(self._cols), dtype=bool)
        if self._deleted_mask[base_row]:
            return False
        self._deleted_mask[base_row] = True
        self._num_deleted += 1
        return True

    def contains(self, head: str, relation: str, tail: str) -> bool:
        key = self._key_of(head, relation, tail)
        if key is None:
            return False
        self._ensure_attached()
        if key in self._delta_add:
            return True
        base_row = self._find_base_row(key)
        if base_row is None:
            return False
        return not (self._deleted_mask is not None and self._deleted_mask[base_row])

    def __len__(self) -> int:
        self._ensure_attached()
        return len(self._cols) - self._num_deleted + len(self._delta_add)

    def iter_triples(self) -> Iterator[Triple]:
        self._ensure_attached()
        entity = self.entity_interner._id_to_symbol
        relation = self.relation_interner._id_to_symbol
        new_triple = Triple.unchecked
        mask = self._deleted_mask
        chunk = 4096
        for start in range(0, len(self._cols), chunk):
            block = np.asarray(self._cols[start:start + chunk])
            if mask is not None:
                block = block[~mask[start:start + chunk]]
            for head_id, relation_id, tail_id in block.tolist():
                yield new_triple(entity[head_id], relation[relation_id],
                                 entity[tail_id])
        for head_id, relation_id, tail_id in self._delta_add:
            yield new_triple(entity[head_id], relation[relation_id],
                             entity[tail_id])

    # ------------------------------------------------------------------ #
    # bulk loading
    # ------------------------------------------------------------------ #
    def bulk_load_ids(self, rows: np.ndarray) -> int:
        """Merge a (k, 3) int64 block of already-interned id triples.

        One consolidation replaces k individual ``add`` calls: the live
        base rows, any overlay adds and the new block are concatenated,
        sorted and deduplicated with pure numpy (all of which release the
        GIL — this is the per-shard unit of work the sharded backend fans
        out over a thread pool), then installed as the new base.  Returns
        the number of rows that were actually new.  Ids must come from
        this backend's interners; callers (``ShardedBackend.add_many``)
        intern before partitioning.
        """
        rows = np.ascontiguousarray(rows, dtype=np.int64).reshape(-1, 3)
        if not len(rows):
            return 0
        before = len(self)
        self._ensure_attached()
        existing = self._rebuild_source()
        combined = np.concatenate((existing, rows)) if len(existing) else rows
        self._install_cols(_unique_rows(combined))
        return len(self) - before

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: str | Path) -> Path:
        """Consolidate and persist to ``directory`` (safe over its own files)."""
        return write_backend_dir(self, directory)


def _unique_rows(rows: np.ndarray) -> np.ndarray:
    """Deduplicate a (k, 3) block, returning rows sorted by (h, r, t)."""
    if len(rows) <= 1:
        return rows
    rows = rows[np.lexsort((rows[:, 2], rows[:, 1], rows[:, 0]))]
    keep = np.empty(len(rows), dtype=bool)
    keep[0] = True
    np.any(rows[1:] != rows[:-1], axis=1, out=keep[1:])
    return rows[keep]


BACKENDS[MmapBackend.name] = MmapBackend
