"""The wire protocol shared by :mod:`repro.kg.server` and :mod:`repro.kg.client`.

One frame = a 4-byte big-endian unsigned length prefix followed by that
many bytes of UTF-8 JSON encoding a single object.  Requests carry an
``op`` plus op-specific fields and a client-chosen ``id``; responses
echo the ``id`` and carry either ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": {"type": ..., "message": ...}}``.

Design choices, in order of importance:

* **hostility is normal** — every decode path raises
  :class:`~repro.errors.ProtocolError` with a specific message instead
  of letting ``struct``/``json``/``KeyError`` noise escape; a server
  must be able to treat any of these as "this connection is garbage,
  drop it" without crashing;
* **frames are bounded** — a length prefix larger than ``max_bytes``
  fails *before* any allocation, so a hostile 4-byte header cannot make
  the peer allocate gigabytes;
* **errors travel typed** — the error ``type`` field round-trips
  through :data:`WIRE_ERRORS`, so a server-side
  :class:`~repro.errors.CursorError` re-raises as a ``CursorError`` in
  the client process, and query-boundary ``except`` clauses behave the
  same for local and remote engines.

Two codecs share that framing:

* **JSON** (the default and the fallback): the frame body is UTF-8
  JSON.  Every server and client speaks it; old peers speak nothing
  else.  Triples cross the wire as ``[head, relation, tail]`` arrays,
  patterns with ``null`` wildcards, bindings as plain objects.
* **binary** (negotiated per connection with one ``hello`` exchange):
  the frame body starts with a one-byte tag — :data:`TAG_JSON` for a
  JSON payload (all requests, errors, and small control results) or
  :data:`TAG_BINARY` for a packed response.  A binary response ships
  result rows as dense **little-endian int64 id blocks** plus an
  **interner delta**: only the id→symbol entries this connection has
  not been sent yet.  The client decodes blocks zero-copy via
  ``np.frombuffer`` and resolves strings from its connection-local
  symbol cache, so a steady-state response (warm cache) is one memcpy
  instead of per-row JSON stringify/parse on both sides.

Binary response body layout (everything after the tag little-endian)::

    u8 tag='B'  u8 version  u8 shape  u8 pad  i64 request_id
    entity-delta  relation-delta        # delta := u32 count,
    u32 item_count                      #   count x i64 ids,
    item_count x item                   #   count x u32 byte lens,
                                        #   concatenated utf-8 blob
    item := u8 kind
      kind 0 (json):      u32 len, utf-8 JSON bytes (any JSON value)
      kind 1/2 (bindings/triples block):
        u8 flags (bit0 = page exhausted)
        u16 ncols, [kind 1 only] ncols x (u8 space, u16 len, name)
        u64 nrows, nrows*ncols x i64 row-major id block

``shape`` says how the items assemble back into the JSON-equivalent
result: 0 = the single item IS the result, 1 = the result is the list
of items, 2 = a cursor page ``{"rows": item, "exhausted": flag}``.
The negotiation ``hello`` itself (and its response) always travels as
a plain JSON frame, which is why a pre-binary server answers it with a
typed ``ProtocolError`` response a client can treat as "JSON then".
"""

from __future__ import annotations

import base64
import json
import socket
import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.errors import (
    CursorError,
    ProtocolError,
    QueryError,
    ReproError,
    SerializationError,
    ShardUnavailableError,
    StorageError,
    ValidationError,
)
from repro.kg.triple import Triple

#: Struct layout of the length prefix: 4-byte big-endian unsigned.
_LENGTH = struct.Struct(">I")

#: Default cap on one frame's payload, bytes.  Generous for result
#: pages (the server pages big results through cursors anyway) while
#: keeping a hostile length prefix from allocating gigabytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Error types that re-raise as themselves on the far side of the wire.
WIRE_ERRORS: Dict[str, Type[ReproError]] = {
    "ReproError": ReproError,
    "QueryError": QueryError,
    "CursorError": CursorError,
    "ProtocolError": ProtocolError,
    "ShardUnavailableError": ShardUnavailableError,
    "SerializationError": SerializationError,
    "StorageError": StorageError,
    "ValidationError": ValidationError,
}


def encode_frame(payload: dict, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message to its on-wire bytes (length prefix + JSON)."""
    try:
        body = json.dumps(payload, ensure_ascii=False,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable message payload: {exc}") from exc
    if len(body) > max_bytes:
        raise ProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{max_bytes}-byte frame cap; page large results through a "
            f"cursor instead")
    return _LENGTH.pack(len(body)) + body


def encode_wire_triples(triples: Sequence[Triple]) -> List[List[str]]:
    """Triples as their wire form: ``[head, relation, tail]`` arrays.

    The body of the ``add_many`` / ``remove_many`` write ops (and of
    every triples-valued response).  Write requests travel as JSON on
    both codecs — binary frames flow server-to-client only.
    """
    return [[triple.head, triple.relation, triple.tail]
            for triple in triples]


def decode_wire_triples(value: object, *,
                        field: str = "triples") -> List[Triple]:
    """Decode and validate a wire triples array into :class:`Triple`\\ s.

    Hostile input gets a :class:`~repro.errors.ProtocolError` naming the
    offending element — never a half-decoded batch: a write op is
    validated in full before anything is enqueued or WAL-logged.
    """
    if not isinstance(value, list):
        raise ProtocolError(
            f"field {field!r} must be an array of [head, relation, tail] "
            f"arrays, got {value!r}")
    triples: List[Triple] = []
    for index, row in enumerate(value):
        if not isinstance(row, (list, tuple)) or len(row) != 3:
            raise ProtocolError(
                f"{field}[{index}] must be a 3-element array, got {row!r}")
        head, relation, tail = row
        for term in row:
            if not isinstance(term, str) or isinstance(term, bool):
                raise ProtocolError(
                    f"{field}[{index}] terms must be strings, got {term!r}")
        try:
            triples.append(Triple(head, relation, tail))
        except ValueError as exc:
            raise ProtocolError(f"{field}[{index}]: {exc}") from None
    return triples


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF *before* any byte.

    EOF in the middle of the requested span is a truncated frame and
    raises — the peer hung up mid-message, which the caller must not
    confuse with a clean close between frames.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_bytes(sock: socket.socket,
                     max_bytes: int = MAX_FRAME_BYTES) -> Optional[bytes]:
    """Read one frame's raw body bytes; ``None`` on clean EOF at a
    frame boundary.

    Raises :class:`~repro.errors.ProtocolError` for truncated prefix or
    body and oversized or empty declared length.  Codec-level decoding
    (JSON parse, binary unpack) is the caller's concern.
    """
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_bytes:
        raise ProtocolError(
            f"declared frame length {length} exceeds the {max_bytes}-byte "
            f"cap (hostile or corrupt length prefix)")
    body = _recv_exact(sock, length)
    if body is None:  # pragma: no cover - _recv_exact raises instead
        raise ProtocolError("connection closed before frame body")
    return body


def decode_json_body(body: bytes) -> dict:
    """Parse a frame body as the JSON codec: a single UTF-8 object."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}")
    return message


def read_frame(sock: socket.socket,
               max_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`~repro.errors.ProtocolError` for every malformed
    shape: truncated prefix or body, oversized or empty declared
    length, bytes that are not valid UTF-8 JSON, and JSON that is not
    an object.
    """
    body = read_frame_bytes(sock, max_bytes=max_bytes)
    if body is None:
        return None
    return decode_json_body(body)


def send_frame(sock: socket.socket, payload: dict,
               max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Encode and write one frame (blocking until fully sent)."""
    sock.sendall(encode_frame(payload, max_bytes=max_bytes))


#: Raw bytes per ``snapshot_ship`` chunk.  The chunk rides inside a JSON
#: frame as base64 (4/3 expansion), so 8 MiB of file bytes stays well
#: under the :data:`MAX_FRAME_BYTES` cap with headroom for the envelope.
SNAPSHOT_CHUNK_BYTES = 8 * 1024 * 1024


def encode_snapshot_chunk(data: bytes) -> dict:
    """The payload fields one ``snapshot_ship`` chunk response carries."""
    return {"data": base64.b64encode(data).decode("ascii"),
            "crc32": zlib.crc32(data)}


def decode_snapshot_chunk(chunk: object) -> bytes:
    """Decode and integrity-check one ``snapshot_ship`` chunk response.

    A snapshot transfer rebuilds a store the receiver will trust as its
    own durable state, so every chunk is checksummed end to end; any
    mismatch or malformed field raises :class:`~repro.errors.ProtocolError`
    (the fetcher restarts the transfer, it never installs damaged bytes).
    """
    if not isinstance(chunk, dict):
        raise ProtocolError(
            f"snapshot chunk must be an object, got {type(chunk).__name__}")
    encoded = chunk.get("data")
    checksum = chunk.get("crc32")
    if not isinstance(encoded, str) or not isinstance(checksum, int) \
            or isinstance(checksum, bool):
        raise ProtocolError("snapshot chunk is missing data/crc32 fields")
    try:
        data = base64.b64decode(encoded.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ProtocolError(
            f"snapshot chunk carries invalid base64: {exc}") from exc
    if zlib.crc32(data) != checksum:
        raise ProtocolError(
            "snapshot chunk failed its CRC32 check (corrupted in transit); "
            "restart the fetch")
    return data


def error_to_wire(exc: BaseException) -> dict:
    """The ``error`` object a failure response carries."""
    name = type(exc).__name__
    return {"type": name if name in WIRE_ERRORS else "ReproError",
            "message": f"{str(exc) or name}"
                       if name in WIRE_ERRORS else f"{name}: {exc}"}


def error_from_wire(error: object) -> ReproError:
    """Rebuild the typed exception a failure response describes."""
    if not isinstance(error, dict):
        return ReproError(f"malformed server error payload: {error!r}")
    kind = WIRE_ERRORS.get(error.get("type", ""), ReproError)
    return kind(str(error.get("message", "unknown server error")))


# --------------------------------------------------------------------------
# Binary codec
# --------------------------------------------------------------------------

#: Version byte of the binary response layout.  Bumped on any change;
#: a decoder refuses versions it does not know.
BINARY_PROTOCOL_VERSION = 1

#: Codec names as they appear in the ``hello`` negotiation.
CODEC_JSON = "json"
CODEC_BINARY = "binary"

#: First body byte on a *negotiated binary* connection.  ``J`` marks a
#: JSON payload (requests, errors, small control results), ``B`` a
#: packed response.  Neither is valid leading JSON, so a tagged frame
#: sent to a JSON-only peer fails with a typed ProtocolError instead
#: of being misread.
TAG_JSON = 0x4A    # 'J'
TAG_BINARY = 0x42  # 'B'

#: ``shape`` byte: how decoded items assemble into the result.
SHAPE_SINGLE = 0   # the one item IS the result
SHAPE_LIST = 1     # the result is the list of items
SHAPE_PAGE = 2     # cursor page {"rows": item, "exhausted": flag}

#: ``kind`` byte of one item.
ITEM_JSON = 0      # arbitrary JSON value (fallback / non-block results)
ITEM_BINDINGS = 1  # id block with named, per-space typed columns
ITEM_TRIPLES = 2   # id block of (head, relation, tail) rows

#: Block ``flags`` bits.
FLAG_EXHAUSTED = 0x01

_HEADER = struct.Struct("<BBBBq")   # tag, version, shape, pad, request_id
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_ITEM_BLOCK = struct.Struct("<BBH")  # kind, flags, ncols

#: Column-space byte inside a bindings block.
_SPACE_ENTITY = 0
_SPACE_RELATION = 1

_TRIPLE_NAMES = ("head", "relation", "tail")
_TRIPLE_KINDS = ("e", "r", "e")


def encode_tagged_json(payload: dict,
                       max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message for a binary connection: length prefix,
    :data:`TAG_JSON`, then the UTF-8 JSON body."""
    try:
        body = json.dumps(payload, ensure_ascii=False,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable message payload: {exc}") from exc
    if len(body) + 1 > max_bytes:
        raise ProtocolError(
            f"frame payload of {len(body) + 1} bytes exceeds the "
            f"{max_bytes}-byte frame cap; page large results through a "
            f"cursor instead")
    return _LENGTH.pack(len(body) + 1) + bytes((TAG_JSON,)) + body


class DecodedBlock:
    """A zero-copy view of one id block from a binary response.

    ``rows`` is the ``(nrows, ncols)`` little-endian int64 array mapped
    straight out of the frame body with ``np.frombuffer`` — no per-row
    Python objects exist until a caller asks for them.  Bulk consumers
    (samplers, embedding pipelines, scatter/gather engines) use
    ``rows`` plus the connection symbol caches directly;
    :meth:`to_bindings` / :meth:`to_triples` materialize the exact
    objects the JSON codec would have produced.
    """

    __slots__ = ("names", "kinds", "rows", "is_triples", "exhausted",
                 "_entity", "_relation")

    def __init__(self, names: Tuple[str, ...], kinds: Tuple[str, ...],
                 rows: "np.ndarray", *, is_triples: bool, exhausted: bool,
                 entity_symbols: Dict[int, str],
                 relation_symbols: Dict[int, str]) -> None:
        self.names = names
        self.kinds = kinds
        self.rows = rows
        self.is_triples = is_triples
        self.exhausted = exhausted
        self._entity = entity_symbols
        self._relation = relation_symbols

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def entity_symbols(self) -> Dict[int, str]:
        """The connection-local entity id→symbol cache (live dict)."""
        return self._entity

    @property
    def relation_symbols(self) -> Dict[int, str]:
        """The connection-local relation id→symbol cache (live dict)."""
        return self._relation

    def _column_symbols(self, col: int) -> List[str]:
        cache = self._entity if self.kinds[col] == "e" else self._relation
        try:
            return [cache[i] for i in self.rows[:, col].tolist()]
        except KeyError as exc:
            raise ProtocolError(
                f"binary response references id {exc.args[0]} with no "
                f"symbol mapping on this connection (interner-delta "
                f"desync)") from exc

    def to_rows(self):
        """Materialize what the JSON codec would have shipped."""
        return self.to_triples() if self.is_triples else self.to_bindings()

    def to_bindings(self) -> List[Dict[str, str]]:
        """Resolve the block into the binding dicts ``execute`` returns."""
        if self.is_triples:
            raise ProtocolError("triples block cannot decode as bindings")
        count = len(self.rows)
        names = self.names
        if not names:
            return [{} for _ in range(count)]
        cols = [self._column_symbols(j) for j in range(len(names))]
        # Dict displays beat dict(zip(...)) ~3x on the hot row loop.
        if len(names) == 1:
            (n0,), (c0,) = names, cols
            return [{n0: a} for a in c0]
        if len(names) == 2:
            (n0, n1), (c0, c1) = names, cols
            return [{n0: a, n1: b} for a, b in zip(c0, c1)]
        if len(names) == 3:
            (n0, n1, n2), (c0, c1, c2) = names, cols
            return [{n0: a, n1: b, n2: c} for a, b, c in zip(c0, c1, c2)]
        return [dict(zip(names, vals)) for vals in zip(*cols)]

    def to_triples(self) -> List[Triple]:
        """Resolve the block into the :class:`Triple` list ``match``
        returns."""
        if not self.is_triples:
            raise ProtocolError("bindings block cannot decode as triples")
        heads, relations, tails = (self._column_symbols(0),
                                   self._column_symbols(1),
                                   self._column_symbols(2))
        unchecked = Triple.unchecked
        return [unchecked(h, r, t)
                for h, r, t in zip(heads, relations, tails)]


def _delta_bytes(ids: "np.ndarray", symbols: List[str]) -> bytes:
    """One interner delta: count, ids, byte lengths, utf-8 blob."""
    encoded = [s.encode("utf-8") for s in symbols]
    lengths = np.fromiter((len(b) for b in encoded), dtype="<u4",
                          count=len(encoded))
    return b"".join((_U32.pack(len(encoded)),
                     ids.astype("<i8", copy=False).tobytes(),
                     lengths.tobytes(),
                     b"".join(encoded)))


class BinaryResponseEncoder:
    """Per-connection encoder for :data:`TAG_BINARY` response frames.

    Holds the connection's "already sent" id masks for both symbol
    spaces; every :meth:`encode` call ships only the interner entries
    the peer has not seen yet.  Responses must therefore be encoded in
    the order they are written to the socket — the server serializes
    per-connection processing anyway, which is exactly the guarantee
    this state needs.
    """

    def __init__(self, entity_interner, relation_interner,
                 max_bytes: int = MAX_FRAME_BYTES) -> None:
        self._interners = {"e": entity_interner, "r": relation_interner}
        self._sent = {"e": np.zeros(0, dtype=bool),
                      "r": np.zeros(0, dtype=bool)}
        self._max_bytes = max_bytes

    def _delta_for(self, space: str, id_arrays: List["np.ndarray"]):
        """(new_ids, symbols) this response must carry for one space."""
        if not id_arrays:
            return np.zeros(0, dtype=np.int64), []
        ids = np.unique(np.concatenate(
            [a.ravel() for a in id_arrays]) if len(id_arrays) > 1
            else id_arrays[0].ravel())
        if not len(ids):
            return np.zeros(0, dtype=np.int64), []
        sent = self._sent[space]
        if int(ids[-1]) >= len(sent):
            grown = np.zeros(int(ids[-1]) + 1, dtype=bool)
            grown[:len(sent)] = sent
            self._sent[space] = sent = grown
        new_ids = ids[~sent[ids]]
        table = self._interners[space].symbol_table()
        try:
            symbols = [table[i] for i in new_ids.tolist()]
        except IndexError as exc:
            raise ProtocolError(
                f"result block references {space!r}-space id beyond the "
                f"interner table ({len(table)} symbols)") from exc
        return new_ids, symbols

    def encode(self, request_id: int, shape: int, items: Sequence,
               max_bytes: Optional[int] = None) -> bytes:
        """Encode one response into a complete frame (prefix included).

        ``items`` entries are either ``("json", value)`` or
        ``("block", block, flags)`` where ``block`` exposes ``names``
        (or ``None`` for triples), ``kinds``, ``rows`` (int64 ndarray)
        and ``triples`` (bool).  Raises ProtocolError without touching
        connection state if the frame would exceed the cap, so an
        oversized-result error never desyncs the delta masks.
        """
        cap = self._max_bytes if max_bytes is None else max_bytes
        pending = {"e": [], "r": []}
        encoded_items = []
        for item in items:
            if item[0] == "json":
                try:
                    body = json.dumps(item[1], ensure_ascii=False,
                                      separators=(",", ":")).encode("utf-8")
                except (TypeError, ValueError) as exc:
                    raise ProtocolError(
                        f"unencodable message payload: {exc}") from exc
                encoded_items.append(
                    bytes((ITEM_JSON,)) + _U32.pack(len(body)) + body)
                continue
            _, block, flags = item
            rows = np.ascontiguousarray(block.rows, dtype="<i8")
            kinds = tuple(block.kinds)
            for col, kind in enumerate(kinds):
                if len(rows):
                    pending[kind].append(rows[:, col])
            if block.triples:
                head = _ITEM_BLOCK.pack(ITEM_TRIPLES, flags, len(kinds))
            else:
                names = b"".join(
                    bytes((_SPACE_ENTITY if kind == "e"
                           else _SPACE_RELATION,))
                    + _U16.pack(len(encoded_name)) + encoded_name
                    for kind, encoded_name in zip(
                        kinds, (n.encode("utf-8") for n in block.names)))
                head = _ITEM_BLOCK.pack(ITEM_BINDINGS, flags,
                                        len(kinds)) + names
            encoded_items.append(
                head + _U64.pack(len(rows)) + rows.tobytes())
        new_e, symbols_e = self._delta_for("e", pending["e"])
        new_r, symbols_r = self._delta_for("r", pending["r"])
        body = b"".join((
            _HEADER.pack(TAG_BINARY, BINARY_PROTOCOL_VERSION, shape, 0,
                         request_id),
            _delta_bytes(new_e, symbols_e),
            _delta_bytes(new_r, symbols_r),
            _U32.pack(len(encoded_items)),
            *encoded_items))
        if len(body) > cap:
            raise ProtocolError(
                f"frame payload of {len(body)} bytes exceeds the "
                f"{cap}-byte frame cap; page large results through a "
                f"cursor instead")
        # Size check passed: only now commit the delta to the masks.
        if len(new_e):
            self._sent["e"][new_e] = True
        if len(new_r):
            self._sent["r"][new_r] = True
        return _LENGTH.pack(len(body)) + body


class BinaryResponseDecoder:
    """Per-connection decoder mirroring :class:`BinaryResponseEncoder`.

    Accumulates the interner deltas into id→symbol dict caches that
    live as long as the connection; every :class:`DecodedBlock` handed
    out references those caches.
    """

    def __init__(self) -> None:
        self.entity_symbols: Dict[int, str] = {}
        self.relation_symbols: Dict[int, str] = {}

    def _apply_delta(self, body: bytes, offset: int,
                     cache: Dict[int, str]) -> int:
        (count,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        ids = np.frombuffer(body, dtype="<i8", count=count, offset=offset)
        offset += 8 * count
        lengths = np.frombuffer(body, dtype="<u4", count=count,
                                offset=offset)
        offset += 4 * count
        try:
            for symbol_id, nbytes in zip(ids.tolist(), lengths.tolist()):
                cache[symbol_id] = body[offset:offset + nbytes].decode(
                    "utf-8")
                offset += nbytes
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                f"interner delta carries invalid UTF-8: {exc}") from exc
        return offset

    def _decode_item(self, body: bytes, offset: int):
        (kind,) = struct.unpack_from("<B", body, offset)
        offset += 1
        if kind == ITEM_JSON:
            (nbytes,) = _U32.unpack_from(body, offset)
            offset += _U32.size
            try:
                value = json.loads(body[offset:offset + nbytes].decode(
                    "utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    f"embedded JSON item is invalid: {exc}") from exc
            return value, offset + nbytes
        if kind not in (ITEM_BINDINGS, ITEM_TRIPLES):
            raise ProtocolError(f"unknown binary item kind {kind}")
        flags, ncols = struct.unpack_from("<BH", body, offset)
        offset += 3
        if kind == ITEM_TRIPLES:
            if ncols != 3:
                raise ProtocolError(
                    f"triples block must have 3 columns, got {ncols}")
            names, kinds = _TRIPLE_NAMES, _TRIPLE_KINDS
        else:
            names, kinds = [], []
            for _ in range(ncols):
                space, name_len = struct.unpack_from("<BH", body, offset)
                offset += 3
                if space not in (_SPACE_ENTITY, _SPACE_RELATION):
                    raise ProtocolError(
                        f"unknown column space byte {space}")
                kinds.append("e" if space == _SPACE_ENTITY else "r")
                try:
                    names.append(body[offset:offset + name_len].decode(
                        "utf-8"))
                except UnicodeDecodeError as exc:
                    raise ProtocolError(
                        f"column name is invalid UTF-8: {exc}") from exc
                offset += name_len
            names, kinds = tuple(names), tuple(kinds)
        (nrows,) = _U64.unpack_from(body, offset)
        offset += _U64.size
        span = 8 * nrows * ncols
        if offset + span > len(body):
            raise ProtocolError(
                f"id block declares {nrows}x{ncols} rows but the frame "
                f"has only {len(body) - offset} bytes left")
        rows = np.frombuffer(body, dtype="<i8", count=nrows * ncols,
                             offset=offset).reshape(nrows, ncols)
        offset += span
        block = DecodedBlock(
            names, kinds, rows,
            is_triples=(kind == ITEM_TRIPLES),
            exhausted=bool(flags & FLAG_EXHAUSTED),
            entity_symbols=self.entity_symbols,
            relation_symbols=self.relation_symbols)
        return block, offset

    def decode(self, body: bytes) -> dict:
        """Decode one :data:`TAG_BINARY` body into the response dict the
        JSON codec would have produced (blocks left as
        :class:`DecodedBlock` for the caller to materialize or use
        zero-copy)."""
        try:
            tag, version, shape, _, request_id = _HEADER.unpack_from(body, 0)
            if tag != TAG_BINARY:  # pragma: no cover - caller dispatches
                raise ProtocolError(f"not a binary frame (tag {tag:#x})")
            if version != BINARY_PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported binary protocol version {version} "
                    f"(this client speaks {BINARY_PROTOCOL_VERSION})")
            offset = self._apply_delta(body, _HEADER.size,
                                       self.entity_symbols)
            offset = self._apply_delta(body, offset, self.relation_symbols)
            (item_count,) = _U32.unpack_from(body, offset)
            offset += _U32.size
            items = []
            for _ in range(item_count):
                item, offset = self._decode_item(body, offset)
                items.append(item)
        except struct.error as exc:
            raise ProtocolError(
                f"truncated or corrupt binary frame: {exc}") from exc
        if shape == SHAPE_SINGLE:
            if len(items) != 1:
                raise ProtocolError(
                    f"single-shape response carries {len(items)} items")
            result = items[0]
        elif shape == SHAPE_LIST:
            result = items
        elif shape == SHAPE_PAGE:
            if len(items) != 1:
                raise ProtocolError(
                    f"page-shape response carries {len(items)} items")
            page = items[0]
            if not isinstance(page, DecodedBlock):
                raise ProtocolError("page-shape response must carry a block")
            result = {"rows": page, "exhausted": page.exhausted}
        else:
            raise ProtocolError(f"unknown binary response shape {shape}")
        return {"id": request_id, "ok": True, "result": result}
