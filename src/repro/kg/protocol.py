"""The wire protocol shared by :mod:`repro.kg.server` and :mod:`repro.kg.client`.

One frame = a 4-byte big-endian unsigned length prefix followed by that
many bytes of UTF-8 JSON encoding a single object.  Requests carry an
``op`` plus op-specific fields and a client-chosen ``id``; responses
echo the ``id`` and carry either ``{"ok": true, "result": ...}`` or
``{"ok": false, "error": {"type": ..., "message": ...}}``.

Design choices, in order of importance:

* **hostility is normal** — every decode path raises
  :class:`~repro.errors.ProtocolError` with a specific message instead
  of letting ``struct``/``json``/``KeyError`` noise escape; a server
  must be able to treat any of these as "this connection is garbage,
  drop it" without crashing;
* **frames are bounded** — a length prefix larger than ``max_bytes``
  fails *before* any allocation, so a hostile 4-byte header cannot make
  the peer allocate gigabytes;
* **errors travel typed** — the error ``type`` field round-trips
  through :data:`WIRE_ERRORS`, so a server-side
  :class:`~repro.errors.CursorError` re-raises as a ``CursorError`` in
  the client process, and query-boundary ``except`` clauses behave the
  same for local and remote engines.

The payload is JSON rather than a packed binary layout on purpose: the
values shipped (symbols, binding dicts) are strings end-to-end, and the
framing is what gives streaming + robustness.  Triples cross the wire
as ``[head, relation, tail]`` arrays, patterns with ``null`` wildcards,
bindings as plain objects.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional, Type

from repro.errors import (
    CursorError,
    ProtocolError,
    QueryError,
    ReproError,
    SerializationError,
    StorageError,
    ValidationError,
)

#: Struct layout of the length prefix: 4-byte big-endian unsigned.
_LENGTH = struct.Struct(">I")

#: Default cap on one frame's payload, bytes.  Generous for result
#: pages (the server pages big results through cursors anyway) while
#: keeping a hostile length prefix from allocating gigabytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Error types that re-raise as themselves on the far side of the wire.
WIRE_ERRORS: Dict[str, Type[ReproError]] = {
    "ReproError": ReproError,
    "QueryError": QueryError,
    "CursorError": CursorError,
    "ProtocolError": ProtocolError,
    "SerializationError": SerializationError,
    "StorageError": StorageError,
    "ValidationError": ValidationError,
}


def encode_frame(payload: dict, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message to its on-wire bytes (length prefix + JSON)."""
    try:
        body = json.dumps(payload, ensure_ascii=False,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable message payload: {exc}") from exc
    if len(body) > max_bytes:
        raise ProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{max_bytes}-byte frame cap; page large results through a "
            f"cursor instead")
    return _LENGTH.pack(len(body)) + body


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF *before* any byte.

    EOF in the middle of the requested span is a truncated frame and
    raises — the peer hung up mid-message, which the caller must not
    confuse with a clean close between frames.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket,
               max_bytes: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`~repro.errors.ProtocolError` for every malformed
    shape: truncated prefix or body, oversized or empty declared
    length, bytes that are not valid UTF-8 JSON, and JSON that is not
    an object.
    """
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_bytes:
        raise ProtocolError(
            f"declared frame length {length} exceeds the {max_bytes}-byte "
            f"cap (hostile or corrupt length prefix)")
    body = _recv_exact(sock, length)
    if body is None:  # pragma: no cover - _recv_exact raises instead
        raise ProtocolError("connection closed before frame body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(message).__name__}")
    return message


def send_frame(sock: socket.socket, payload: dict,
               max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Encode and write one frame (blocking until fully sent)."""
    sock.sendall(encode_frame(payload, max_bytes=max_bytes))


def error_to_wire(exc: BaseException) -> dict:
    """The ``error`` object a failure response carries."""
    name = type(exc).__name__
    return {"type": name if name in WIRE_ERRORS else "ReproError",
            "message": f"{str(exc) or name}"
                       if name in WIRE_ERRORS else f"{name}: {exc}"}


def error_from_wire(error: object) -> ReproError:
    """Rebuild the typed exception a failure response describes."""
    if not isinstance(error, dict):
        return ReproError(f"malformed server error payload: {error!r}")
    kind = WIRE_ERRORS.get(error.get("type", ""), ReproError)
    return kind(str(error.get("message", "unknown server error")))
