"""Pluggable storage backends for the triple store.

The seed implementation kept a Python ``set`` of :class:`Triple` objects
plus six dict-of-set indexes — allocation heavy and string-compare bound
once every upper layer starts hot-looping over pattern queries.  This
module introduces the storage seam the ROADMAP asks for:

* :class:`Interner` — a shared string ↔ contiguous ``int`` id table,
* :class:`GraphBackend` — the protocol every backend implements,
* :class:`SetBackend` — the original dict-of-set design (kept for parity
  testing and as a reference implementation),
* :class:`ColumnarBackend` — the default: triples live in parallel numpy
  ``int64`` columns with CSR-style adjacency indexes per head, relation
  and tail, plus (head, relation) / (relation, tail) / (tail, head)
  subgroup lookups via binary search.  Pattern queries slice arrays and
  only materialize :class:`Triple` objects (or sort) when asked.

Index maintenance is **incremental**: mutations land in a small sorted
delta overlay (added rows + a deleted-row mask over the base block) that
is merged into every query result, and the expensive full CSR rebuild is
deferred until the overlay outgrows ``delta_threshold``.  Interleaved
mutate-then-query loops (the dedup stage's
``add_missing_taxonomy_links`` → ``parents()`` pattern) therefore pay
O(overlay) per query instead of one full O(n log n) rebuild per
mutation burst.

Backends answer the same string-level query surface, and the columnar
backend additionally exposes an integer-id surface (``id_triples``,
``match_ids``, the interners) that the sampling and embedding layers use
to stay in ID-array land end-to-end.  The id surface describes one flat,
fully indexed column block, so touching it first folds any pending
overlay back into the base (a single consolidation, amortized across the
read-heavy phases that use it).

:class:`~repro.kg.mmap_backend.MmapBackend` (``repro.kg.mmap_backend``)
extends the columnar design with an on-disk, memory-mapped base block
behind the same protocol; it registers itself in :data:`BACKENDS` under
the name ``"mmap"``.  :class:`~repro.kg.sharded_backend.ShardedBackend`
(``repro.kg.sharded_backend``, registered as ``"sharded"``) hash-
partitions triples on the head-entity id across several columnar-family
shards that share one global interner pair, parallelizing bulk loads,
saves/opens and batched queries across cores.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.kg.triple import Triple

#: A (head, relation, tail) pattern; ``None`` is a wildcard.
Pattern = Tuple[Optional[str], Optional[str], Optional[str]]

#: An id-level (head_id, relation_id, tail_id) pattern; ``None`` is a
#: wildcard.  Ids come from the backend's interners.
IdPattern = Tuple[Optional[int], Optional[int], Optional[int]]


class Interner:
    """An append-only string ↔ contiguous int-id table.

    The same structure as :class:`~repro.kg.vocab.Vocabulary` but kept
    separate so the storage layer has no dependency on the embedding
    vocabulary semantics (and can later grow backend-specific features
    such as shard-local id spaces).
    """

    __slots__ = ("_symbol_to_id", "_id_to_symbol")

    def __init__(self, symbols: Iterable[str] = ()) -> None:
        self._symbol_to_id: Dict[str, int] = {}
        self._id_to_symbol: List[str] = []
        for symbol in symbols:
            self.intern(symbol)

    def intern(self, symbol: str) -> int:
        """Return the id of ``symbol``, assigning the next free id if new."""
        existing = self._symbol_to_id.get(symbol)
        if existing is not None:
            return existing
        new_id = len(self._id_to_symbol)
        self._symbol_to_id[symbol] = new_id
        self._id_to_symbol.append(symbol)
        return new_id

    def lookup(self, symbol: str) -> Optional[int]:
        """Return the id of ``symbol`` or ``None`` when it was never interned."""
        return self._symbol_to_id.get(symbol)

    def symbol_of(self, identifier: int) -> str:
        """Return the symbol with id ``identifier``."""
        return self._id_to_symbol[identifier]

    def symbols(self) -> List[str]:
        """All interned symbols in id order (a copy)."""
        return list(self._id_to_symbol)

    def symbol_table(self) -> Sequence[str]:
        """The live id → symbol table (treat as read-only).

        The zero-copy batch counterpart of :meth:`symbol_of` — hot
        stringification loops index it directly instead of paying a
        method call per id.
        """
        return self._id_to_symbol

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._symbol_to_id

    def __len__(self) -> int:
        return len(self._id_to_symbol)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_symbol)


@runtime_checkable
class GraphBackend(Protocol):
    """The storage contract behind :class:`~repro.kg.store.TripleStore`.

    All query methods accept ``None`` as a wildcard.  ``match`` returns
    triples in backend-defined order unless ``sort=True`` is requested;
    ``tails`` / ``heads`` stay sorted because their callers rely on
    deterministic small result lists.
    """

    def add(self, head: str, relation: str, tail: str) -> bool: ...

    def add_many(self, triples: Iterable[Triple]) -> int: ...

    def discard(self, head: str, relation: str, tail: str) -> bool: ...

    def contains(self, head: str, relation: str, tail: str) -> bool: ...

    def clone_empty(self) -> "GraphBackend": ...

    def __len__(self) -> int: ...

    def iter_triples(self) -> Iterator[Triple]: ...

    def match(self, head: Optional[str] = None, relation: Optional[str] = None,
              tail: Optional[str] = None, sort: bool = False) -> List[Triple]: ...

    def iter_match(self, head: Optional[str] = None, relation: Optional[str] = None,
                   tail: Optional[str] = None) -> Iterator[Triple]: ...

    def count(self, head: Optional[str] = None, relation: Optional[str] = None,
              tail: Optional[str] = None) -> int: ...

    def tails(self, head: str, relation: str) -> List[str]: ...

    def heads(self, relation: str, tail: str) -> List[str]: ...

    def degree(self, node: str) -> int: ...

    def entities(self) -> List[str]: ...

    def relations(self) -> List[str]: ...

    def heads_only(self) -> List[str]: ...

    def relation_frequencies(self) -> Dict[str, int]: ...

    def match_many(self, patterns: Sequence[Pattern],
                   sort: bool = False) -> List[List[Triple]]: ...

    def tails_many(self, pairs: Sequence[Tuple[str, str]]) -> List[List[str]]: ...

    def degree_many(self, nodes: Sequence[str]) -> List[int]: ...

    def count_many(self, patterns: Sequence[Pattern]) -> List[int]: ...


@runtime_checkable
class IdQueryBackend(Protocol):
    """The integer-id query surface of the columnar backend family.

    Backends that intern symbols to contiguous int64 ids additionally
    answer pattern queries entirely in id space — the query executor
    (:mod:`repro.kg.executor`) interns a query's constants once and then
    joins numpy id arrays without materializing a single
    :class:`Triple` or string.  ``SetBackend`` does not implement this
    surface; callers fall back to the string-level protocol
    (see :func:`supports_id_queries`).
    """

    entity_interner: Interner
    relation_interner: Interner

    def match_ids(self, head_id: Optional[int] = None,
                  relation_id: Optional[int] = None,
                  tail_id: Optional[int] = None) -> np.ndarray: ...

    def match_ids_many(self, patterns: Sequence[IdPattern]) -> List[np.ndarray]: ...

    def count_ids(self, head_id: Optional[int] = None,
                  relation_id: Optional[int] = None,
                  tail_id: Optional[int] = None) -> int: ...


def supports_id_queries(backend: object) -> bool:
    """True when ``backend`` exposes the id-level query surface."""
    return isinstance(backend, IdQueryBackend)


class _BatchedQueriesMixin:
    """Default batched implementations shared by all backends.

    Backends override the single-pattern primitives; the batched surface
    composes them so every backend speaks the same batched API even before
    it grows a vectorized fast path.
    """

    def match_many(self, patterns: Sequence[Pattern],
                   sort: bool = False) -> List[List[Triple]]:
        """One result list per (head, relation, tail) pattern."""
        return [self.match(head, relation, tail, sort=sort)
                for head, relation, tail in patterns]

    def tails_many(self, pairs: Sequence[Tuple[str, str]]) -> List[List[str]]:
        """One sorted tail list per (head, relation) pair."""
        return [self.tails(head, relation) for head, relation in pairs]

    def degree_many(self, nodes: Sequence[str]) -> List[int]:
        """Total degree per node."""
        return [self.degree(node) for node in nodes]

    def count_many(self, patterns: Sequence[Pattern]) -> List[int]:
        """One match count per (head, relation, tail) pattern.

        The query planner orders a conjunctive query's patterns by these
        counts in a single batched call; the sharded backend overrides
        this to route head-bound patterns to their owner shard.
        """
        return [self.count(head, relation, tail)
                for head, relation, tail in patterns]

    def add_many(self, triples: Iterable[Triple]) -> int:
        """Add a batch of triples; returns how many were actually new.

        Backends with a vectorized bulk-load path (the sharded backend)
        override this; the default simply loops :meth:`add`.
        """
        add = self.add
        return sum(1 for triple in triples
                   if add(triple.head, triple.relation, triple.tail))

    def discard_many(self, triples: Iterable[Triple]) -> int:
        """Remove a batch of triples; returns how many were present.

        The bulk counterpart of :meth:`discard` — the WAL replay path
        and ``TripleStore.remove_many`` both fold removals through it.
        The sharded backend overrides this to group the batch by owner
        shard first.
        """
        discard = self.discard
        return sum(1 for triple in triples
                   if discard(triple.head, triple.relation, triple.tail))

    def clone_empty(self) -> "GraphBackend":
        """A fresh empty backend of the same kind and configuration.

        Backends with constructor arguments (e.g. a future on-disk
        backend) must override this so :meth:`TripleStore.copy` can
        reproduce their configuration.
        """
        return type(self)()


class SetBackend(_BatchedQueriesMixin):
    """The original dict-of-set store, kept as the parity reference.

    Six single- and two-key indexes (SPO / POS / OSP style) make every
    pattern lookup a dictionary access rather than a scan.  Index buckets
    are insertion-ordered dicts rather than sets so unsorted ``match``
    results are deterministic for a deterministic insertion sequence
    (plain sets would leak ``PYTHONHASHSEED`` into query order).
    """

    name = "set"

    def __init__(self) -> None:
        self._triples: Dict[Triple, None] = {}
        self._by_head: Dict[str, Dict[Triple, None]] = defaultdict(dict)
        self._by_relation: Dict[str, Dict[Triple, None]] = defaultdict(dict)
        self._by_tail: Dict[str, Dict[Triple, None]] = defaultdict(dict)
        self._by_head_relation: Dict[Tuple[str, str], Dict[Triple, None]] = defaultdict(dict)
        self._by_relation_tail: Dict[Tuple[str, str], Dict[Triple, None]] = defaultdict(dict)
        self._by_head_tail: Dict[Tuple[str, str], Dict[Triple, None]] = defaultdict(dict)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, head: str, relation: str, tail: str) -> bool:
        triple = Triple(head, relation, tail)
        if triple in self._triples:
            return False
        self._triples[triple] = None
        self._by_head[head][triple] = None
        self._by_relation[relation][triple] = None
        self._by_tail[tail][triple] = None
        self._by_head_relation[(head, relation)][triple] = None
        self._by_relation_tail[(relation, tail)][triple] = None
        self._by_head_tail[(head, tail)][triple] = None
        return True

    def discard(self, head: str, relation: str, tail: str) -> bool:
        triple = Triple(head, relation, tail)
        if triple not in self._triples:
            return False
        del self._triples[triple]
        self._by_head[head].pop(triple, None)
        self._by_relation[relation].pop(triple, None)
        self._by_tail[tail].pop(triple, None)
        self._by_head_relation[(head, relation)].pop(triple, None)
        self._by_relation_tail[(relation, tail)].pop(triple, None)
        self._by_head_tail[(head, tail)].pop(triple, None)
        return True

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def contains(self, head: str, relation: str, tail: str) -> bool:
        return Triple(head, relation, tail) in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def iter_triples(self) -> Iterator[Triple]:
        return iter(self._triples)

    def _candidates(self, head: Optional[str], relation: Optional[str],
                    tail: Optional[str]) -> Iterable[Triple]:
        if head is not None and relation is not None and tail is not None:
            candidate = Triple(head, relation, tail)
            return (candidate,) if candidate in self._triples else ()
        if head is not None and relation is not None:
            return self._by_head_relation.get((head, relation), ())
        if relation is not None and tail is not None:
            return self._by_relation_tail.get((relation, tail), ())
        if head is not None and tail is not None:
            return self._by_head_tail.get((head, tail), ())
        if head is not None:
            return self._by_head.get(head, ())
        if relation is not None:
            return self._by_relation.get(relation, ())
        if tail is not None:
            return self._by_tail.get(tail, ())
        return self._triples

    def match(self, head: Optional[str] = None, relation: Optional[str] = None,
              tail: Optional[str] = None, sort: bool = False) -> List[Triple]:
        candidates = self._candidates(head, relation, tail)
        return sorted(candidates) if sort else list(candidates)

    def iter_match(self, head: Optional[str] = None, relation: Optional[str] = None,
                   tail: Optional[str] = None) -> Iterator[Triple]:
        return iter(self._candidates(head, relation, tail))

    def count(self, head: Optional[str] = None, relation: Optional[str] = None,
              tail: Optional[str] = None) -> int:
        # Every branch of _candidates returns a sized container.
        return len(self._candidates(head, relation, tail))

    def tails(self, head: str, relation: str) -> List[str]:
        return sorted(t.tail for t in self._by_head_relation.get((head, relation), ()))

    def heads(self, relation: str, tail: str) -> List[str]:
        return sorted(t.head for t in self._by_relation_tail.get((relation, tail), ()))

    def degree(self, node: str) -> int:
        return len(self._by_head.get(node, ())) + len(self._by_tail.get(node, ()))

    def entities(self) -> List[str]:
        nodes = {key for key, triples in self._by_head.items() if triples}
        nodes.update(key for key, triples in self._by_tail.items() if triples)
        return sorted(nodes)

    def relations(self) -> List[str]:
        return sorted(rel for rel, triples in self._by_relation.items() if triples)

    def heads_only(self) -> List[str]:
        return sorted(key for key, triples in self._by_head.items() if triples)

    def relation_frequencies(self) -> Dict[str, int]:
        return {rel: len(triples) for rel, triples in self._by_relation.items() if triples}


class ColumnarBackend(_BatchedQueriesMixin):
    """Interned-id columnar store with CSR adjacency indexes.

    Triples are held as an insertion-ordered dict of ``(h, r, t)`` int-id
    keys (O(1) membership and dedup) and, lazily on first query after a
    mutation, as three parallel ``int64`` numpy columns with three sort
    permutations:

    * ``spo`` — sorted by (head, relation, tail): per-head CSR offsets,
      (head, relation) subranges via ``searchsorted`` on the relation
      column inside the head slice;
    * ``pos`` — sorted by (relation, tail, head): per-relation CSR
      offsets, (relation, tail) subranges;
    * ``osp`` — sorted by (tail, head, relation): per-tail CSR offsets,
      (tail, head) subranges.

    Pattern queries therefore slice arrays; strings only appear when a
    caller asks for :class:`Triple` objects.

    **Incremental index maintenance.**  Once a base index exists,
    mutations do not invalidate it.  Adds accumulate in a small sorted
    delta block, deletes flip bits in a deleted-row mask over the base,
    and every query merges base slices (minus deleted rows) with a
    vectorized scan of the delta.  A full rebuild only happens when the
    overlay (added + deleted rows) exceeds ``delta_threshold``, or when a
    caller touches the flat id surface (:meth:`id_triples`,
    :meth:`match_id_rows`, the sort ranks), which by contract describes a
    single consolidated column block.  :attr:`rebuild_count` counts full
    rebuilds so tests and benchmarks can assert the deferral actually
    happens; ``delta_threshold=0`` restores the old eager
    rebuild-per-mutation-burst behaviour.
    """

    name = "columnar"

    def __init__(self, delta_threshold: int = 1024) -> None:
        self.entity_interner = Interner()
        self.relation_interner = Interner()
        # Insertion-ordered so iteration and the column layout are
        # deterministic for a deterministic construction sequence.
        self._rows: Dict[Tuple[int, int, int], None] = {}
        self.delta_threshold = int(delta_threshold)
        #: Number of full index (re)builds performed so far.
        self.rebuild_count = 0
        self._dirty = True
        self._cols: Optional[np.ndarray] = None  # (n, 3) int64
        self._perm_spo: Optional[np.ndarray] = None
        self._perm_pos: Optional[np.ndarray] = None
        self._perm_osp: Optional[np.ndarray] = None
        self._head_offsets: Optional[np.ndarray] = None
        self._rel_offsets: Optional[np.ndarray] = None
        self._tail_offsets: Optional[np.ndarray] = None
        self._entity_rank: Optional[np.ndarray] = None
        self._relation_rank: Optional[np.ndarray] = None
        # Delta overlay over the base block: rows added since the last
        # rebuild (insertion-ordered dict + lazily sorted block) and a
        # deleted-row mask over the base columns.
        self._delta_add: Dict[Tuple[int, int, int], None] = {}
        self._delta_block: Optional[np.ndarray] = None
        self._deleted_mask: Optional[np.ndarray] = None
        self._num_deleted = 0

    def clone_empty(self) -> "GraphBackend":
        return type(self)(delta_threshold=self.delta_threshold)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, head: str, relation: str, tail: str) -> bool:
        if not (head and relation and tail):
            raise ValueError(
                f"triple components must be non-empty, got ({head!r}, {relation!r}, {tail!r})")
        key = (self.entity_interner.intern(head),
               self.relation_interner.intern(relation),
               self.entity_interner.intern(tail))
        if key in self._rows:
            return False
        self._rows[key] = None
        if self._dirty:
            return True
        if self._overlay_size() >= self.delta_threshold:
            # The overlay is already at the rebuild threshold, so the next
            # query rebuilds from _rows regardless — stop paying per-insert
            # binary searches and fall back to the dirty flag (O(1) adds,
            # the bulk-load fast path).
            self._dirty = True
            self._delta_add.clear()
            self._delta_block = None
            self._deleted_mask = None
            self._num_deleted = 0
            return True
        base_row = self._find_base_row(key)
        if base_row is not None and self._deleted_mask is not None \
                and self._deleted_mask[base_row]:
            # Re-adding a base row that was overlay-deleted: resurrect it
            # in place instead of growing the delta.
            self._deleted_mask[base_row] = False
            self._num_deleted -= 1
        else:
            self._delta_add[key] = None
            self._delta_block = None
        return True

    def discard(self, head: str, relation: str, tail: str) -> bool:
        key = self._key_of(head, relation, tail)
        if key is None or key not in self._rows:
            return False
        del self._rows[key]
        if self._dirty:
            return True
        if key in self._delta_add:
            del self._delta_add[key]
            self._delta_block = None
            return True
        base_row = self._find_base_row(key)
        if base_row is None:  # pragma: no cover - _rows and base agree
            self._dirty = True
            return True
        if self._deleted_mask is None:
            self._deleted_mask = np.zeros(len(self._cols), dtype=bool)
        self._deleted_mask[base_row] = True
        self._num_deleted += 1
        return True

    def _key_of(self, head: str, relation: str,
                tail: str) -> Optional[Tuple[int, int, int]]:
        head_id = self.entity_interner.lookup(head)
        relation_id = self.relation_interner.lookup(relation)
        tail_id = self.entity_interner.lookup(tail)
        if head_id is None or relation_id is None or tail_id is None:
            return None
        return (head_id, relation_id, tail_id)

    # ------------------------------------------------------------------ #
    # index maintenance
    # ------------------------------------------------------------------ #
    def _install_cols(self, cols: np.ndarray) -> None:
        """Install ``cols`` as the base block and (re)build all indexes.

        Also resets the delta overlay: after installation the base block
        alone describes the store.
        """
        num_entities = len(self.entity_interner)
        num_relations = len(self.relation_interner)
        heads, rels, tails = cols[:, 0], cols[:, 1], cols[:, 2]
        entity_ids = np.arange(num_entities + 1, dtype=np.int64)
        relation_ids = np.arange(num_relations + 1, dtype=np.int64)
        perm_spo = np.lexsort((tails, rels, heads))
        perm_pos = np.lexsort((heads, tails, rels))
        perm_osp = np.lexsort((rels, heads, tails))
        self._cols = cols
        self._perm_spo = perm_spo
        self._perm_pos = perm_pos
        self._perm_osp = perm_osp
        self._head_offsets = np.searchsorted(heads[perm_spo], entity_ids)
        self._rel_offsets = np.searchsorted(rels[perm_pos], relation_ids)
        self._tail_offsets = np.searchsorted(tails[perm_osp], entity_ids)
        self._entity_rank = None
        self._relation_rank = None
        self._delta_add.clear()
        self._delta_block = None
        self._deleted_mask = None
        self._num_deleted = 0
        self._dirty = False
        self.rebuild_count += 1

    def _rebuild_source(self) -> np.ndarray:
        """The full (n, 3) id block to rebuild the base from."""
        if self._rows:
            return np.fromiter(
                (component for row in self._rows for component in row),
                dtype=np.int64, count=3 * len(self._rows),
            ).reshape(-1, 3)
        return np.zeros((0, 3), dtype=np.int64)

    def _rebuild(self) -> None:
        self._install_cols(self._rebuild_source())

    def _overlay_size(self) -> int:
        return len(self._delta_add) + self._num_deleted

    def _ensure_base(self) -> None:
        """Make sure a base index exists; consolidate an oversized overlay."""
        if self._dirty or self._overlay_size() > self.delta_threshold:
            self._rebuild()

    def _ensure_index(self) -> None:
        """Fully consolidate: fold any pending overlay into the base block.

        The flat id surface (:meth:`id_triples`, :meth:`match_id_rows`,
        the sort ranks) describes exactly one column block, so it calls
        this instead of :meth:`_ensure_base`.
        """
        if self._dirty or self._delta_add or self._num_deleted:
            self._rebuild()

    # ------------------------------------------------------------------ #
    # delta overlay
    # ------------------------------------------------------------------ #
    def _find_base_row(self, key: Tuple[int, int, int]) -> Optional[int]:
        """Row index of ``key`` in the base block (deleted or not), else None."""
        head_id, relation_id, tail_id = key
        rows = self._slice(self._perm_spo, self._head_offsets, head_id)
        rows = self._subrange(rows, 1, relation_id)
        rows = self._subrange(rows, 2, tail_id)
        return int(rows[0]) if len(rows) else None

    def _delta_cols(self) -> np.ndarray:
        """The overlay's added rows as a (d, 3) block sorted by (h, r, t)."""
        if self._delta_block is None:
            if self._delta_add:
                block = np.fromiter(
                    (component for row in self._delta_add for component in row),
                    dtype=np.int64, count=3 * len(self._delta_add),
                ).reshape(-1, 3)
                block = block[np.lexsort((block[:, 2], block[:, 1], block[:, 0]))]
            else:
                block = np.zeros((0, 3), dtype=np.int64)
            self._delta_block = block
        return self._delta_block

    def _live_base_rows(self, head_id: Optional[int], relation_id: Optional[int],
                        tail_id: Optional[int]) -> np.ndarray:
        """Base rows matching an id pattern, minus overlay-deleted rows."""
        rows = self._base_match_rows(head_id, relation_id, tail_id)
        if self._num_deleted:
            rows = rows[~self._deleted_mask[rows]]
        return rows

    def _delta_match(self, head_id: Optional[int], relation_id: Optional[int],
                     tail_id: Optional[int]) -> np.ndarray:
        """Overlay-added rows matching an id pattern (vectorized scan)."""
        delta = self._delta_cols()
        if not len(delta):
            return delta
        mask = np.ones(len(delta), dtype=bool)
        if head_id is not None:
            mask &= delta[:, 0] == head_id
        if relation_id is not None:
            mask &= delta[:, 1] == relation_id
        if tail_id is not None:
            mask &= delta[:, 2] == tail_id
        return delta[mask]

    def _merged_ids(self, head_id: Optional[int] = None,
                    relation_id: Optional[int] = None,
                    tail_id: Optional[int] = None) -> np.ndarray:
        """The (k, 3) id triples matching a pattern, overlay included."""
        self._ensure_base()
        base = self._cols[self._live_base_rows(head_id, relation_id, tail_id)]
        delta = self._delta_match(head_id, relation_id, tail_id)
        if not len(delta):
            return base
        if not len(base):
            return delta
        return np.concatenate((base, delta))

    def _merged_count(self, head_id: Optional[int], relation_id: Optional[int],
                      tail_id: Optional[int]) -> int:
        self._ensure_base()
        return int(len(self._live_base_rows(head_id, relation_id, tail_id))
                   + len(self._delta_match(head_id, relation_id, tail_id)))

    # ------------------------------------------------------------------ #
    # id-level query surface
    # ------------------------------------------------------------------ #
    def id_triples(self) -> np.ndarray:
        """The full (n, 3) int64 array of (head, relation, tail) ids.

        The returned array is the backend's live column block — treat it
        as read-only.
        """
        self._ensure_index()
        return self._cols

    def _slice(self, perm: np.ndarray, offsets: np.ndarray,
               group_id: int) -> np.ndarray:
        if group_id < 0 or group_id >= len(offsets) - 1:
            return perm[0:0]
        return perm[offsets[group_id]:offsets[group_id + 1]]

    def _subrange(self, rows: np.ndarray, column: int, value: int) -> np.ndarray:
        """Narrow ``rows`` (already sorted by ``column``) to one value."""
        keys = self._cols[rows, column]
        lo = int(np.searchsorted(keys, value, side="left"))
        hi = int(np.searchsorted(keys, value, side="right"))
        return rows[lo:hi]

    def match_id_rows(self, head_id: Optional[int] = None,
                      relation_id: Optional[int] = None,
                      tail_id: Optional[int] = None) -> np.ndarray:
        """Row indices into :meth:`id_triples` matching an id pattern."""
        self._ensure_index()
        return self._base_match_rows(head_id, relation_id, tail_id)

    def _base_match_rows(self, head_id: Optional[int] = None,
                         relation_id: Optional[int] = None,
                         tail_id: Optional[int] = None) -> np.ndarray:
        """Base-block row indices matching an id pattern (ignores overlay)."""
        if head_id is not None:
            rows = self._slice(self._perm_spo, self._head_offsets, head_id)
            if relation_id is not None:
                rows = self._subrange(rows, 1, relation_id)
                if tail_id is not None:
                    rows = self._subrange(rows, 2, tail_id)
            elif tail_id is not None:
                rows = self._slice(self._perm_osp, self._tail_offsets, tail_id)
                rows = self._subrange(rows, 0, head_id)
            return rows
        if relation_id is not None:
            rows = self._slice(self._perm_pos, self._rel_offsets, relation_id)
            if tail_id is not None:
                rows = self._subrange(rows, 2, tail_id)
            return rows
        if tail_id is not None:
            return self._slice(self._perm_osp, self._tail_offsets, tail_id)
        return self._perm_spo

    def match_ids(self, head_id: Optional[int] = None,
                  relation_id: Optional[int] = None,
                  tail_id: Optional[int] = None) -> np.ndarray:
        """The (k, 3) id triples matching an id pattern."""
        self._ensure_index()
        return self._cols[self.match_id_rows(head_id, relation_id, tail_id)]

    def match_ids_many(self, patterns: Sequence[IdPattern]) -> List[np.ndarray]:
        """One (k, 3) id block per id pattern.

        The batched entry point the ID-space query executor drives; the
        sharded backend overrides it to route head-bound patterns to
        their owner shard and fan the rest out across shards.
        """
        self._ensure_index()
        return [self._cols[self._base_match_rows(head_id, relation_id, tail_id)]
                for head_id, relation_id, tail_id in patterns]

    def count_ids(self, head_id: Optional[int] = None,
                  relation_id: Optional[int] = None,
                  tail_id: Optional[int] = None) -> int:
        """Number of triples matching an id pattern (no materialization)."""
        self._ensure_index()
        return int(len(self._base_match_rows(head_id, relation_id, tail_id)))

    def entity_sort_rank(self) -> np.ndarray:
        """Rank of each entity id in lexicographic symbol order.

        ``rank[id]`` is the position the entity's symbol would take in
        ``sorted(symbols)``; used by the sampling layer to reproduce
        string-sorted orderings without materializing strings per triple.
        Python's own ``sorted`` is used (not numpy's code-point unicode
        sort) so the ordering matches ``sorted()`` everywhere else.
        """
        self._ensure_index()
        if self._entity_rank is None or len(self._entity_rank) != len(self.entity_interner):
            symbols = self.entity_interner.symbols()
            order = sorted(range(len(symbols)), key=symbols.__getitem__)
            rank = np.empty(len(symbols), dtype=np.int64)
            rank[np.asarray(order, dtype=np.int64)] = np.arange(len(symbols), dtype=np.int64)
            self._entity_rank = rank
        return self._entity_rank

    def relation_sort_rank(self) -> np.ndarray:
        """Rank of each relation id in lexicographic symbol order."""
        self._ensure_index()
        if self._relation_rank is None \
                or len(self._relation_rank) != len(self.relation_interner):
            symbols = self.relation_interner.symbols()
            order = sorted(range(len(symbols)), key=symbols.__getitem__)
            rank = np.empty(len(symbols), dtype=np.int64)
            rank[np.asarray(order, dtype=np.int64)] = np.arange(len(symbols), dtype=np.int64)
            self._relation_rank = rank
        return self._relation_rank

    def _resolve(self, head: Optional[str], relation: Optional[str],
                 tail: Optional[str]) -> Optional[Tuple[Optional[int], Optional[int], Optional[int]]]:
        """Translate a string pattern to ids; ``None`` if any constant is unknown."""
        head_id = relation_id = tail_id = None
        if head is not None:
            head_id = self.entity_interner.lookup(head)
            if head_id is None:
                return None
        if relation is not None:
            relation_id = self.relation_interner.lookup(relation)
            if relation_id is None:
                return None
        if tail is not None:
            tail_id = self.entity_interner.lookup(tail)
            if tail_id is None:
                return None
        return head_id, relation_id, tail_id

    def _materialize(self, ids: np.ndarray) -> List[Triple]:
        """Turn a (k, 3) id block into Triple objects in one batched conversion."""
        if not len(ids):
            return []
        entity = self.entity_interner._id_to_symbol
        relation = self.relation_interner._id_to_symbol
        new_triple = Triple.unchecked
        return [new_triple(entity[head_id], relation[relation_id], entity[tail_id])
                for head_id, relation_id, tail_id in ids.tolist()]

    # ------------------------------------------------------------------ #
    # string-level query surface
    # ------------------------------------------------------------------ #
    def contains(self, head: str, relation: str, tail: str) -> bool:
        key = self._key_of(head, relation, tail)
        return key is not None and key in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def iter_triples(self) -> Iterator[Triple]:
        entity = self.entity_interner._id_to_symbol
        relation = self.relation_interner._id_to_symbol
        new_triple = Triple.unchecked
        for head_id, relation_id, tail_id in self._rows:
            yield new_triple(entity[head_id], relation[relation_id], entity[tail_id])

    def match(self, head: Optional[str] = None, relation: Optional[str] = None,
              tail: Optional[str] = None, sort: bool = False) -> List[Triple]:
        if head is not None and relation is not None and tail is not None:
            return [Triple(head, relation, tail)] if self.contains(head, relation, tail) else []
        resolved = self._resolve(head, relation, tail)
        if resolved is None:
            return []
        result = self._materialize(self._merged_ids(*resolved))
        if sort:
            result.sort()
        return result

    def iter_match(self, head: Optional[str] = None, relation: Optional[str] = None,
                   tail: Optional[str] = None) -> Iterator[Triple]:
        if head is not None and relation is not None and tail is not None:
            if self.contains(head, relation, tail):
                yield Triple(head, relation, tail)
            return
        resolved = self._resolve(head, relation, tail)
        if resolved is None:
            return
        ids = self._merged_ids(*resolved)
        entity = self.entity_interner._id_to_symbol
        relation_symbols = self.relation_interner._id_to_symbol
        new_triple = Triple.unchecked
        for head_id, relation_id, tail_id in ids.tolist():
            yield new_triple(entity[head_id], relation_symbols[relation_id],
                             entity[tail_id])

    def count(self, head: Optional[str] = None, relation: Optional[str] = None,
              tail: Optional[str] = None) -> int:
        if head is not None and relation is not None and tail is not None:
            return 1 if self.contains(head, relation, tail) else 0
        if head is None and relation is None and tail is None:
            return len(self)
        resolved = self._resolve(head, relation, tail)
        if resolved is None:
            return 0
        return self._merged_count(*resolved)

    def tails(self, head: str, relation: str) -> List[str]:
        resolved = self._resolve(head, relation, None)
        if resolved is None:
            return []
        ids = self._merged_ids(resolved[0], resolved[1], None)
        symbols = self.entity_interner._id_to_symbol
        return sorted(symbols[tail_id] for tail_id in ids[:, 2].tolist())

    def heads(self, relation: str, tail: str) -> List[str]:
        resolved = self._resolve(None, relation, tail)
        if resolved is None:
            return []
        ids = self._merged_ids(None, resolved[1], resolved[2])
        symbols = self.entity_interner._id_to_symbol
        return sorted(symbols[head_id] for head_id in ids[:, 0].tolist())

    def degree(self, node: str) -> int:
        node_id = self.entity_interner.lookup(node)
        if node_id is None:
            return 0
        self._ensure_base()
        total = 0
        out_rows = self._slice(self._perm_spo, self._head_offsets, node_id)
        in_rows = self._slice(self._perm_osp, self._tail_offsets, node_id)
        if self._num_deleted:
            total += int(len(out_rows) - self._deleted_mask[out_rows].sum())
            total += int(len(in_rows) - self._deleted_mask[in_rows].sum())
        else:
            total += len(out_rows) + len(in_rows)
        delta = self._delta_cols()
        if len(delta):
            total += int((delta[:, 0] == node_id).sum() + (delta[:, 2] == node_id).sum())
        return total

    def _entity_degree_counts(self) -> Tuple[np.ndarray, np.ndarray]:
        """(out_degree, in_degree) per entity id, overlay included."""
        self._ensure_base()
        out_counts = np.diff(self._head_offsets)
        in_counts = np.diff(self._tail_offsets)
        num_entities = len(self.entity_interner)
        if self._num_deleted:
            deleted = np.flatnonzero(self._deleted_mask)
            out_counts = out_counts - np.bincount(self._cols[deleted, 0],
                                                  minlength=len(out_counts))
            in_counts = in_counts - np.bincount(self._cols[deleted, 2],
                                                minlength=len(in_counts))
        if len(out_counts) < num_entities:
            grow = np.zeros(num_entities - len(out_counts), dtype=np.int64)
            out_counts = np.concatenate((out_counts, grow))
            in_counts = np.concatenate((in_counts, grow))
        delta = self._delta_cols()
        if len(delta):
            out_counts = out_counts + np.bincount(delta[:, 0], minlength=num_entities)
            in_counts = in_counts + np.bincount(delta[:, 2], minlength=num_entities)
        return out_counts, in_counts

    def _relation_counts(self) -> np.ndarray:
        """Triple count per relation id, overlay included."""
        self._ensure_base()
        counts = np.diff(self._rel_offsets)
        num_relations = len(self.relation_interner)
        if self._num_deleted:
            deleted = np.flatnonzero(self._deleted_mask)
            counts = counts - np.bincount(self._cols[deleted, 1],
                                          minlength=len(counts))
        if len(counts) < num_relations:
            counts = np.concatenate(
                (counts, np.zeros(num_relations - len(counts), dtype=np.int64)))
        delta = self._delta_cols()
        if len(delta):
            counts = counts + np.bincount(delta[:, 1], minlength=num_relations)
        return counts

    def degree_many(self, nodes: Sequence[str]) -> List[int]:
        out_counts, in_counts = self._entity_degree_counts()
        result: List[int] = []
        for node in nodes:
            node_id = self.entity_interner.lookup(node)
            if node_id is None or node_id >= len(out_counts):
                result.append(0)
            else:
                result.append(int(out_counts[node_id] + in_counts[node_id]))
        return result

    def entities(self) -> List[str]:
        out_counts, in_counts = self._entity_degree_counts()
        active = (out_counts > 0) | (in_counts > 0)
        symbol = self.entity_interner.symbol_of
        return sorted(symbol(int(entity_id)) for entity_id in np.flatnonzero(active))

    def relations(self) -> List[str]:
        active = self._relation_counts() > 0
        symbol = self.relation_interner.symbol_of
        return sorted(symbol(int(relation_id)) for relation_id in np.flatnonzero(active))

    def heads_only(self) -> List[str]:
        out_counts, _in_counts = self._entity_degree_counts()
        symbol = self.entity_interner.symbol_of
        return sorted(symbol(int(entity_id)) for entity_id in np.flatnonzero(out_counts > 0))

    def relation_frequencies(self) -> Dict[str, int]:
        counts = self._relation_counts()
        symbol = self.relation_interner.symbol_of
        return {symbol(int(relation_id)): int(counts[relation_id])
                for relation_id in np.flatnonzero(counts > 0)}

    def save(self, directory: "str | Path") -> Path:
        """Persist the (consolidated) store as a memory-mappable directory.

        Returns the directory path; reopen with
        :meth:`repro.kg.mmap_backend.MmapBackend.open`.
        """
        from repro.kg.mmap_backend import write_backend_dir
        return write_backend_dir(self, directory)


#: Registered backend implementations, keyed by their CLI name.
BACKENDS: Dict[str, type] = {
    SetBackend.name: SetBackend,
    ColumnarBackend.name: ColumnarBackend,
}

#: The backend used when callers don't pick one explicitly.
DEFAULT_BACKEND = ColumnarBackend.name


def make_backend(name: str, **options) -> GraphBackend:
    """Instantiate a registered backend by name.

    Keyword options are forwarded to the backend constructor (e.g.
    ``make_backend("sharded", n_shards=8)``).
    """
    try:
        backend_class = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown graph backend {name!r} (known: {known})") from None
    return backend_class(**options)
