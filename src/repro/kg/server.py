"""A TCP query server in front of :class:`~repro.kg.service.QueryService`.

The network milestone of the ROADMAP's query layer: remote clients speak
the length-prefixed JSON protocol of :mod:`repro.kg.protocol` to a
:class:`KGServer`, which owns one :class:`~repro.kg.service.QueryService`
over an (opened or in-memory) :class:`~repro.kg.store.TripleStore`.

Concurrency model — thread-per-connection feeding one dispatcher:

* ``socketserver.ThreadingTCPServer`` gives every connection its own
  handler thread; each request a handler decodes turns into ONE
  blocking :class:`QueryService` call;
* the service's single dispatcher thread coalesces whatever the
  connection threads submitted concurrently into batched
  ``execute_many`` / ``match_many`` / ``count_many`` rounds — so N
  remote clients multiplex into the same batched backend calls N
  in-process threads would, and ``QueryService.stats`` shows it;
* huge results never cross the wire in one frame: ``open_cursor`` /
  ``fetch`` / ``close_cursor`` page a server-side cursor (TTL-evicted)
  whose id-row projection stringifies per page.

Abuse tolerance: a malformed, truncated, oversized or garbage frame
gets a ``ProtocolError`` response when the frame boundary is still
trustworthy, and otherwise a best-effort error frame followed by a
connection close — never a server crash, and never a poisoned listener:
the next connection is served normally.  A client disconnecting
mid-request only kills its own handler thread.

::

    with KGServer.open("./store", port=0) as server:
        host, port = server.address
        ... point a RemoteQueryEngine at f"{host}:{port}" ...

The CLI form is ``python -m repro.cli serve --store-dir DIR --port P``.
"""

from __future__ import annotations

import socketserver
import threading
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import ProtocolError
from repro.kg.planner import PatternQuery
from repro.kg.protocol import (
    MAX_FRAME_BYTES,
    error_to_wire,
    read_frame,
    send_frame,
)
from repro.kg.service import DEFAULT_CURSOR_TTL, QueryService
from repro.kg.store import TripleStore
from repro.kg.triple import Triple

#: Default port of the CLI ``serve`` command (0 = ephemeral, for tests).
DEFAULT_PORT = 7468


def _wire_pattern(value: object) -> Tuple[Optional[str], Optional[str],
                                          Optional[str]]:
    """Decode a wire pattern: 3 items, each a string or ``null``."""
    if not isinstance(value, (list, tuple)) or len(value) != 3:
        raise ProtocolError(
            f"pattern must be a 3-element array, got {value!r}")
    decoded = []
    for term in value:
        if term is not None and not isinstance(term, str):
            raise ProtocolError(
                f"pattern terms must be strings or null, got {term!r}")
        decoded.append(term)
    return (decoded[0], decoded[1], decoded[2])


def _wire_query(value: object) -> PatternQuery:
    """Decode a wire query object into a :class:`PatternQuery`."""
    if not isinstance(value, dict):
        raise ProtocolError(f"query must be an object, got {value!r}")
    patterns = value.get("patterns")
    if not isinstance(patterns, list):
        raise ProtocolError("query needs a 'patterns' array")
    for pattern in patterns:
        if not (isinstance(pattern, list) and len(pattern) == 3
                and all(isinstance(term, str) for term in pattern)):
            raise ProtocolError(
                f"query patterns must be [head, relation, tail] string "
                f"arrays, got {pattern!r}")
    select = value.get("select", [])
    if not (isinstance(select, list)
            and all(isinstance(name, str) for name in select)):
        raise ProtocolError(f"query 'select' must be a string array, "
                            f"got {select!r}")
    limit = value.get("limit")
    if limit is not None and not isinstance(limit, int):
        raise ProtocolError(f"query 'limit' must be an integer or null, "
                            f"got {limit!r}")
    try:
        return PatternQuery.from_patterns(patterns, select=select, limit=limit)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def _wire_triples(triples: Sequence[Triple]) -> List[List[str]]:
    return [[triple.head, triple.relation, triple.tail] for triple in triples]


def _field(message: dict, name: str, kinds, kind_label: str):
    """A required, type-checked message field (ProtocolError otherwise)."""
    if name not in message:
        raise ProtocolError(f"message is missing required field {name!r}")
    value = message[name]
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise ProtocolError(
            f"field {name!r} must be {kind_label}, got {value!r}")
    return value


class _Handler(socketserver.BaseRequestHandler):
    """One connection: read frame → serve op → write frame, until EOF."""

    def handle(self) -> None:  # pragma: no cover - exercised over sockets
        server: "KGServer" = self.server.kg_server  # type: ignore[attr-defined]
        sock = self.request
        while not server.closing:
            try:
                message = read_frame(sock, server.max_frame_bytes)
            except ProtocolError as exc:
                # The frame boundary is no longer trustworthy (bad
                # length, truncation, garbage): report and hang up.
                self._best_effort_send(
                    {"id": None, "ok": False, "error": error_to_wire(exc)})
                return
            except OSError:
                return
            if message is None:        # clean EOF between frames
                return
            response = server.handle_message(message)
            try:
                send_frame(sock, response, server.max_frame_bytes)
            except ProtocolError as exc:
                # The *response* did not fit the frame cap.  The frame
                # stream is still intact, so report and keep serving —
                # the client should page through a cursor instead.
                self._best_effort_send({"id": response.get("id"),
                                        "ok": False,
                                        "error": error_to_wire(exc)})
            except OSError:            # client went away mid-response
                return

    def _best_effort_send(self, payload: dict) -> None:  # pragma: no cover
        try:
            send_frame(self.request, payload)
        except (ProtocolError, OSError):
            pass


class _ThreadingServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # Handler threads block in recv on idle keep-alive connections;
    # close() must not wait for clients to hang up first.
    block_on_close = False


class KGServer:
    """Serves a :class:`TripleStore` to remote clients over TCP.

    Parameters
    ----------
    store:
        The store to serve (not mutated while serving).
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port; read the
        actual one from :attr:`address`.
    max_batch / cursor_ttl:
        Forwarded to the owned :class:`QueryService`.
    max_frame_bytes:
        Per-frame payload cap, both directions.

    Use :meth:`start` for a background-thread server (tests, embedding
    in an application) or :meth:`serve_forever` to donate the calling
    thread (the CLI).  Always :meth:`close` (or use as a context
    manager) — it stops the listener and closes the service.
    """

    def __init__(self, store: TripleStore, *, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, max_batch: int = 256,
                 cursor_ttl: float = DEFAULT_CURSOR_TTL,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = int(max_frame_bytes)
        self.closing = False
        self.service = QueryService(store, max_batch=max_batch,
                                    cursor_ttl=cursor_ttl)
        try:
            self._tcp = _ThreadingServer((host, port), _Handler)
        except BaseException:
            self.service.close()
            raise
        self._tcp.kg_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = threading.Event()
        self._close_lock = threading.Lock()

    @classmethod
    def open(cls, directory: Union[str, Path], **kwargs) -> "KGServer":
        """Open a saved store directory (mmap or sharded) and serve it."""
        return cls(TripleStore.open(directory), **kwargs)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — read this after ``port=0``."""
        host, port = self._tcp.server_address[:2]
        return (host, port)

    @property
    def url(self) -> str:
        """The ``host:port`` string clients connect to."""
        host, port = self.address
        return f"{host}:{port}"

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "KGServer":
        """Serve from a daemon background thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("KGServer.start() called twice")
        self._thread = threading.Thread(target=self._run,
                                        name="kg-server", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (the CLI path)."""
        self._run()

    def _run(self) -> None:
        self._serving.set()
        try:
            self._tcp.serve_forever(poll_interval=0.05)
        finally:
            self._serving.clear()

    def close(self) -> None:
        """Stop the listener, drop connections, close the service."""
        with self._close_lock:
            if self.closing:
                return
            self.closing = True
        # A start()ed thread is guaranteed to reach serve_forever, so
        # shutdown() is safe even if close() wins the race to run first
        # (it parks until the loop starts, then stops it immediately).
        # Without a thread, only signal a loop that is actually running
        # — shutdown() on a never-started server would block forever.
        if self._thread is not None:
            self._tcp.shutdown()
            self._thread.join(timeout=10)
        elif self._serving.is_set():
            self._tcp.shutdown()
        self._tcp.server_close()
        self.service.close()

    def __enter__(self) -> "KGServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # request dispatch (called from connection threads)
    # ------------------------------------------------------------------ #
    def handle_message(self, message: dict) -> dict:
        """Serve one decoded request; always returns a response object.

        Anything a hostile or buggy client can provoke — unknown op,
        missing/garbage fields, a query-layer error — comes back as a
        typed error response on the same connection; nothing propagates
        to the connection loop.
        """
        request_id = message.get("id")
        try:
            result = self._dispatch(message)
        except Exception as exc:
            return {"id": request_id, "ok": False, "error": error_to_wire(exc)}
        return {"id": request_id, "ok": True, "result": result}

    def _dispatch(self, message: dict):
        op = message.get("op")
        if op == "ping":
            return "pong"
        if op == "stats":
            return {"service": self.service.stats,
                    "store": {"triples": len(self.service.store),
                              "backend": self.service.store.backend_name}}
        if op == "len":
            return len(self.service.store)
        if op == "execute":
            query = _wire_query(_field(message, "query", dict, "an object"))
            return self.service.execute(
                query, reorder=bool(message.get("reorder", True)))
        if op == "execute_many":
            # Decode the whole batch BEFORE submitting anything: a
            # malformed query mid-list must not leave already-submitted
            # futures executing with nobody waiting on them.
            queries = [_wire_query(query) for query in
                       _field(message, "queries", list, "an array")]
            futures = [self.service.submit(
                query, reorder=bool(message.get("reorder", True)))
                for query in queries]
            return [future.result() for future in futures]
        if op == "match":
            pattern = _wire_pattern(_field(message, "pattern", list,
                                           "an array"))
            return _wire_triples(self.service.lookup_many([pattern])[0])
        if op == "match_many":
            patterns = [_wire_pattern(pattern) for pattern in
                        _field(message, "patterns", list, "an array")]
            return [_wire_triples(triples)
                    for triples in self.service.lookup_many(patterns)]
        if op == "count":
            pattern = _wire_pattern(_field(message, "pattern", list,
                                           "an array"))
            return self.service.count_many([pattern])[0]
        if op == "count_many":
            patterns = [_wire_pattern(pattern) for pattern in
                        _field(message, "patterns", list, "an array")]
            return self.service.count_many(patterns)
        if op == "open_cursor":
            query = _wire_query(_field(message, "query", dict, "an object"))
            return self.service.open_cursor(
                query, reorder=bool(message.get("reorder", True)))
        if op == "open_match_cursor":
            pattern = _wire_pattern(_field(message, "pattern", list,
                                           "an array"))
            return self.service.open_match_cursor(pattern)
        if op == "fetch":
            cursor_id = _field(message, "cursor", str, "a string")
            max_rows = _field(message, "max_rows", int, "an integer")
            page, exhausted = self.service.fetch_cursor(cursor_id, max_rows)
            if page and isinstance(page[0], Triple):
                page = _wire_triples(page)
            return {"rows": page, "exhausted": exhausted}
        if op == "close_cursor":
            self.service.close_cursor(_field(message, "cursor", str,
                                             "a string"))
            return None
        raise ProtocolError(f"unknown op {op!r}")
