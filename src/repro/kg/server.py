"""A TCP query server in front of :class:`~repro.kg.service.QueryService`.

The network milestone of the ROADMAP's query layer: remote clients speak
the length-prefixed protocol of :mod:`repro.kg.protocol` to a
:class:`KGServer`, which owns one :class:`~repro.kg.service.QueryService`
over an (opened or in-memory) :class:`~repro.kg.store.TripleStore`.

Concurrency model — one I/O thread, a small worker pool, one dispatcher:

* a single **selector loop** thread multiplexes the listener and every
  client socket: it accepts, reads, slices complete frames out of
  per-connection buffers and flushes queued responses.  An idle
  connection costs one registered file descriptor and a buffer — not a
  thread — so thousands of open sockets leave the thread count flat;
* complete frames are handed to a bounded **worker pool** (blocking
  :class:`QueryService` calls happen there, never on the I/O thread).
  Each connection is served serially (frame order = response order,
  and the per-connection codec state stays single-writer), but across
  connections the workers submit concurrently, so the service's single
  dispatcher thread still coalesces N remote clients into batched
  ``execute_many`` / ``match_many`` / ``count_many`` backend rounds —
  ``QueryService.stats`` shows it;
* huge results never cross the wire in one frame: ``open_cursor`` /
  ``fetch`` / ``close_cursor`` page a server-side cursor (TTL-evicted).

Codecs: every connection starts as JSON (old clients never notice any
of this).  A client may send one ``{"op": "hello", "codecs":
["binary"]}`` exchange; if the server grants it, the connection
switches to the binary codec of :mod:`repro.kg.protocol` — responses
carry dense int64 id blocks plus interner deltas, and the
:class:`QueryService` is asked for ``raw`` id-space results so the
server never stringifies a row on that path.  ``codec="json"`` pins a
server to JSON (negotiation requests are declined, not errored).

Abuse tolerance: a malformed, truncated, oversized or garbage frame
gets a ``ProtocolError`` response when the frame boundary is still
trustworthy, and otherwise a best-effort error frame followed by a
connection close — never a server crash, and never a poisoned listener:
the next connection is served normally.  A client disconnecting
mid-request only kills its own connection state.

::

    with KGServer.open("./store", port=0) as server:
        host, port = server.address
        ... point a RemoteQueryEngine at f"{host}:{port}" ...

The CLI form is ``python -m repro.cli serve --store-dir DIR --port P``.
"""

from __future__ import annotations

import math
import os
import selectors
import shutil
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Deque, List, Optional, Sequence, Tuple, Union

from repro.errors import ProtocolError
from repro.kg.backend import supports_id_queries
from repro.kg.executor import IdBlock
from repro.kg.planner import PatternQuery
from repro.kg.protocol import (
    BINARY_PROTOCOL_VERSION,
    CODEC_BINARY,
    CODEC_JSON,
    FLAG_EXHAUSTED,
    MAX_FRAME_BYTES,
    SHAPE_LIST,
    SHAPE_PAGE,
    SHAPE_SINGLE,
    SNAPSHOT_CHUNK_BYTES,
    TAG_BINARY,
    TAG_JSON,
    BinaryResponseEncoder,
    decode_json_body,
    decode_snapshot_chunk,
    decode_wire_triples,
    encode_frame,
    encode_snapshot_chunk,
    encode_tagged_json,
    error_to_wire,
)
from repro.kg.routing import interner_fingerprint
from repro.kg.service import (DEFAULT_CACHE_BYTES, DEFAULT_CURSOR_TTL,
                              QueryService)
from repro.kg.store import TripleStore
from repro.kg.triple import Triple
from repro.kg.wal import (OP_ADD, WriteAheadLog, list_snapshot_files,
                          scan_wal, snapshot_dir_name, wal_file_name,
                          write_live_pointer)

#: Default port of the CLI ``serve`` command (0 = ephemeral, for tests).
DEFAULT_PORT = 7468

#: Worker threads running blocking service calls.  Small on purpose:
#: the QueryService dispatcher is the real executor; workers only
#: decode, submit and encode, and a bounded pool keeps a burst of
#: hostile connections from spawning unbounded threads.
DEFAULT_WORKERS = 8

#: How often a replica polls its leader's WAL when caught up, seconds.
DEFAULT_FOLLOW_POLL_INTERVAL = 0.05

#: Soft cap on triples shipped per ``wal_tail`` response (at least one
#: batch always goes out): the follower catches up over several polls
#: instead of one response blowing the frame cap.
_WAL_TAIL_TRIPLE_BUDGET = 50_000

#: Hard cap on batches per ``wal_tail`` response.
_WAL_TAIL_MAX_BATCHES = 4096


def _wire_pattern(value: object) -> Tuple[Optional[str], Optional[str],
                                          Optional[str]]:
    """Decode a wire pattern: 3 items, each a string or ``null``."""
    if not isinstance(value, (list, tuple)) or len(value) != 3:
        raise ProtocolError(
            f"pattern must be a 3-element array, got {value!r}")
    decoded = []
    for term in value:
        if term is not None and not isinstance(term, str):
            raise ProtocolError(
                f"pattern terms must be strings or null, got {term!r}")
        decoded.append(term)
    return (decoded[0], decoded[1], decoded[2])


def _wire_id_pattern(value: object) -> Tuple[Optional[int], Optional[int],
                                             Optional[int]]:
    """Decode a raw id-space pattern: 3 items, each an int or ``null``."""
    if not isinstance(value, (list, tuple)) or len(value) != 3:
        raise ProtocolError(
            f"id pattern must be a 3-element array, got {value!r}")
    decoded = []
    for term in value:
        if term is not None and (not isinstance(term, int)
                                 or isinstance(term, bool)):
            raise ProtocolError(
                f"id pattern terms must be integers or null, got {term!r}")
        decoded.append(term)
    return (decoded[0], decoded[1], decoded[2])


def _wire_query(value: object) -> PatternQuery:
    """Decode a wire query object into a :class:`PatternQuery`."""
    if not isinstance(value, dict):
        raise ProtocolError(f"query must be an object, got {value!r}")
    patterns = value.get("patterns")
    if not isinstance(patterns, list):
        raise ProtocolError("query needs a 'patterns' array")
    for pattern in patterns:
        if not (isinstance(pattern, list) and len(pattern) == 3
                and all(isinstance(term, str) for term in pattern)):
            raise ProtocolError(
                f"query patterns must be [head, relation, tail] string "
                f"arrays, got {pattern!r}")
    select = value.get("select", [])
    if not (isinstance(select, list)
            and all(isinstance(name, str) for name in select)):
        raise ProtocolError(f"query 'select' must be a string array, "
                            f"got {select!r}")
    limit = value.get("limit")
    if limit is not None and not isinstance(limit, int):
        raise ProtocolError(f"query 'limit' must be an integer or null, "
                            f"got {limit!r}")
    try:
        return PatternQuery.from_patterns(patterns, select=select, limit=limit)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def _wire_triples(triples: Sequence[Triple]) -> List[List[str]]:
    return [[triple.head, triple.relation, triple.tail] for triple in triples]


def _field(message: dict, name: str, kinds, kind_label: str):
    """A required, type-checked message field (ProtocolError otherwise)."""
    if name not in message:
        raise ProtocolError(f"message is missing required field {name!r}")
    value = message[name]
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise ProtocolError(
            f"field {name!r} must be {kind_label}, got {value!r}")
    return value


def _resolve_snapshot_member(snapshot: Path, member: str) -> Path:
    """Validate a manifest-relative member path (no traversal, ever)."""
    parts = Path(member).parts
    if (not parts or Path(member).is_absolute()
            or any(part in ("..", ".", "") for part in parts)):
        raise ProtocolError(f"invalid snapshot member path {member!r}")
    return snapshot.joinpath(*parts)


def _manifest_files(manifest: dict) -> List[Tuple[str, int]]:
    """Type-check a ``snapshot_ship`` manifest's file list."""
    files = manifest.get("files")
    if not isinstance(files, list):
        raise ProtocolError(f"snapshot manifest 'files' must be an array, "
                            f"got {files!r}")
    checked: List[Tuple[str, int]] = []
    for entry in files:
        if not isinstance(entry, dict):
            raise ProtocolError(f"snapshot manifest entry {entry!r} is not "
                                f"an object")
        path, size = entry.get("path"), entry.get("size")
        if not isinstance(path, str) or not isinstance(size, int) \
                or isinstance(size, bool) or size < 0:
            raise ProtocolError(
                f"snapshot manifest entry needs a string 'path' and a "
                f"non-negative integer 'size', got {entry!r}")
        checked.append((path, size))
    return checked


def fetch_snapshot(client, directory: Union[str, Path], *,
                   fsync: bool = True, should_abort=None) -> dict:
    """Fetch the leader's current snapshot generation into ``directory``.

    The wire half of replica (re-)bootstrap: pages the leader's
    ``snap-G/`` over ``snapshot_ship`` chunk responses into
    ``snap-G.partial/`` (every chunk CRC-checked, every file
    size-checked), renames it into place, creates a fresh empty
    ``wal-G.log``, and atomically flips ``live.json`` to generation G —
    the commit point.  A crash at any earlier step leaves the pointer
    untouched (the old state, or no store at all, still stands) and the
    next fetch starts over.  Raises
    :class:`~repro.errors.ProtocolError` on any integrity or transfer
    failure — including the leader compacting mid-transfer, which the
    server reports as a generation change; the caller just retries.
    Returns the manifest (``generation``, ``base_seq``, ``files``).
    ``should_abort()`` is polled between chunks so a closing server can
    cut a transfer short.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = client.call("snapshot_ship")
    if not isinstance(manifest, dict):
        raise ProtocolError(f"snapshot manifest must be an object, got "
                            f"{type(manifest).__name__}")
    generation = manifest.get("generation")
    if not isinstance(generation, int) or isinstance(generation, bool) \
            or generation < 0:
        raise ProtocolError(f"snapshot manifest carries invalid generation "
                            f"{generation!r}")
    files = _manifest_files(manifest)
    snapshot = directory / snapshot_dir_name(generation)
    partial = directory / (snapshot_dir_name(generation) + ".partial")
    if partial.exists():
        shutil.rmtree(partial)
    partial.mkdir(parents=True)
    for member, size in files:
        target = _resolve_snapshot_member(partial, member)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "wb") as handle:
            offset = 0
            while True:
                if should_abort is not None and should_abort():
                    raise ProtocolError(
                        "snapshot fetch aborted: this server is stopping")
                chunk = client.call("snapshot_ship", path=member,
                                    offset=offset, generation=generation)
                data = decode_snapshot_chunk(chunk)
                handle.write(data)
                offset += len(data)
                if chunk.get("eof"):
                    break
                if not data:
                    raise ProtocolError(
                        f"snapshot member {member!r} made no progress at "
                        f"offset {offset} without reaching eof")
            if offset != size:
                raise ProtocolError(
                    f"snapshot member {member!r} transferred {offset} "
                    f"bytes, manifest says {size} — restart the fetch")
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
    if snapshot.exists():
        shutil.rmtree(snapshot)
    os.replace(partial, snapshot)
    # Durability of the rename and the new WAL rides on the directory
    # fsyncs WriteAheadLog.create and write_live_pointer already do.
    WriteAheadLog.create(directory / wal_file_name(generation),
                         generation=generation, fsync=fsync).close()
    write_live_pointer(directory, generation, fsync=fsync)
    return manifest


def bootstrap_replica(directory: Union[str, Path], leader: str, *,
                      fsync: bool = True, timeout: float = 30.0) -> int:
    """Build a brand-new replica store by fetching the leader's snapshot.

    The zero-operator bootstrap path: point it at an empty (or missing)
    directory and a leader URL and it produces a live store directory
    at the leader's current generation, ready to open with
    ``KGServer.open(directory, follow=leader)`` — no hand-copied files.
    Returns the bootstrapped generation.
    """
    from repro.kg.client import RemoteClient

    with RemoteClient(leader, codec=CODEC_JSON, timeout=timeout) as client:
        manifest = fetch_snapshot(client, directory, fsync=fsync)
    return int(manifest["generation"])


class _Connection:
    """Per-connection state shared by the I/O thread and one worker.

    The I/O thread owns ``inbuf`` and the selector registration; the
    ``lock`` guards the worker handoff (``pending`` / ``busy``) and the
    outgoing ``outbuf``.  ``pending`` holds complete frame bodies in
    arrival order — or a :class:`ProtocolError` entry when framing
    broke, so the violation response still goes out *after* the
    responses of the valid frames that preceded it.
    """

    __slots__ = ("sock", "peer", "inbuf", "outbuf", "lock", "pending",
                 "busy", "codec", "encoder", "close_after_write",
                 "closed", "input_broken", "mask")

    def __init__(self, sock: socket.socket, peer) -> None:
        self.sock = sock
        self.peer = peer
        self.inbuf = bytearray()
        self.outbuf: Deque[memoryview] = deque()
        self.lock = threading.Lock()
        self.pending: Deque = deque()
        self.busy = False
        self.codec = CODEC_JSON
        self.encoder: Optional[BinaryResponseEncoder] = None
        self.close_after_write = False
        self.closed = False
        self.input_broken = False
        self.mask = selectors.EVENT_READ


#: Selector data sentinel for the wakeup pipe.
_WAKEUP = object()


class KGServer:
    """Serves a :class:`TripleStore` to remote clients over TCP.

    Parameters
    ----------
    store:
        The store to serve.  Mutations arrive only through the
        ``add_many`` / ``remove_many`` / ``compact`` ops and serialize
        through the owned service's dispatcher; a store opened from a
        plain snapshot directory refuses them with a typed
        :class:`~repro.errors.StorageError`.
    host / port:
        Bind address (IPv4 or IPv6 literal).  ``port=0`` picks an
        ephemeral port; read the actual one from :attr:`address`.
    max_batch / cursor_ttl / cache_bytes:
        Forwarded to the owned :class:`QueryService` (``cache_bytes``
        is the hot-query result cache budget; ``0`` disables caching).
    max_frame_bytes:
        Per-frame payload cap, both directions.
    codec:
        ``"auto"`` (default) grants binary negotiation when the backend
        has an id surface; ``"json"`` declines it, pinning every
        connection to the JSON codec.
    workers:
        Size of the pool running blocking service calls.

    Use :meth:`start` for a background-thread server (tests, embedding
    in an application) or :meth:`serve_forever` to donate the calling
    thread (the CLI).  Always :meth:`close` (or use as a context
    manager) — it stops the I/O loop and closes the service.
    """

    def __init__(self, store: TripleStore, *, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, max_batch: int = 256,
                 cursor_ttl: float = DEFAULT_CURSOR_TTL,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 codec: str = "auto",
                 workers: int = DEFAULT_WORKERS,
                 shard_index: Optional[int] = None,
                 n_shards: Optional[int] = None,
                 follow: Optional[str] = None,
                 follow_poll_interval: float =
                 DEFAULT_FOLLOW_POLL_INTERVAL) -> None:
        if codec not in ("auto", CODEC_JSON):
            raise ValueError(
                f"server codec policy must be 'auto' or 'json', got "
                f"{codec!r} (binary is negotiated per connection, never "
                f"forced: old clients must keep working)")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if (shard_index is None) != (n_shards is None):
            raise ValueError(
                "shard_index and n_shards come together: a shard server "
                "must know both which shard it owns and how many exist")
        if shard_index is not None and not 0 <= shard_index < n_shards:
            raise ValueError(
                f"shard_index must be in 0..{n_shards - 1}, got "
                f"{shard_index}")
        if follow is not None and not store.writable:
            raise ValueError(
                "a replica must be able to apply its leader's WAL "
                "batches — open a live store (or an in-memory one), not "
                "a read-only snapshot")
        interval = float(follow_poll_interval)
        if not math.isfinite(interval) or interval <= 0:
            raise ValueError(
                f"follow_poll_interval must be a positive number of "
                f"seconds, got {follow_poll_interval!r} (a non-positive "
                f"interval would busy-spin the follower against its "
                f"leader)")
        self.max_frame_bytes = int(max_frame_bytes)
        self.codec = codec
        self.closing = False
        self.role = "replica" if follow is not None else "leader"
        self.shard_index = shard_index
        self.n_shards = n_shards
        self._follow = follow
        self._follow_poll_interval = interval
        # Guards every read and write of the _replication dict: the
        # replication thread bumps it, stats/role/replication_status
        # snapshot it, and promotion finalizes it — a reader must never
        # see a torn block (e.g. generation from one poll, applied_seq
        # from another).
        self._stats_lock = threading.Lock()
        self._replication = {
            "leader": follow,
            "applied_seq": (store.wal.next_seq - 1
                            if store.wal is not None else 0),
            "generation": None,
            "polls": 0,
            "batches_applied": 0,
            "triples_applied": 0,
            "rebootstraps": 0,
            "last_error": None,
            "running": follow is not None,
        }
        self._stop_replication = threading.Event()
        self._replication_thread: Optional[threading.Thread] = None
        self._promote_lock = threading.Lock()
        # Set by a store swap (re-bootstrap): tells the I/O loop to drop
        # every client connection, because negotiated binary encoders
        # hold references into the replaced store's interners.
        self._drop_connections = False
        self.service = QueryService(store, max_batch=max_batch,
                                    cursor_ttl=cursor_ttl,
                                    cache_bytes=cache_bytes)
        try:
            infos = socket.getaddrinfo(host, port, type=socket.SOCK_STREAM)
            family, _type, proto, _name, sockaddr = infos[0]
            self._listener = socket.socket(family, socket.SOCK_STREAM, proto)
            try:
                self._listener.setsockopt(socket.SOL_SOCKET,
                                          socket.SO_REUSEADDR, 1)
                self._listener.bind(sockaddr)
                self._listener.listen(256)
                self._listener.setblocking(False)
            except BaseException:
                self._listener.close()
                raise
        except BaseException:
            self.service.close()
            raise
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._selector.register(self._wake_recv, selectors.EVENT_READ,
                                _WAKEUP)
        self._connections: set = set()
        self._flush_wanted: set = set()
        self._flush_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(max_workers=int(workers),
                                        thread_name_prefix="kg-server-worker")
        self._thread: Optional[threading.Thread] = None
        self._serving = threading.Event()
        self._close_lock = threading.Lock()
        self._cleaned = False
        if follow is not None:
            self._replication_thread = threading.Thread(
                target=self._replicate, name="kg-server-replication",
                daemon=True)
            self._replication_thread.start()

    @classmethod
    def open(cls, directory: Union[str, Path], **kwargs) -> "KGServer":
        """Open a saved store directory and serve it.

        Live directories (``live.json`` pointer) come up writable with
        their WAL replayed; plain mmap/sharded snapshots come up
        read-only for the write ops.
        """
        return cls(TripleStore.open(directory), **kwargs)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — read this after ``port=0``."""
        host, port = self._listener.getsockname()[:2]
        return (host, port)

    @property
    def url(self) -> str:
        """The ``host:port`` string clients connect to."""
        host, port = self.address
        return f"[{host}]:{port}" if ":" in host else f"{host}:{port}"

    @property
    def connection_count(self) -> int:
        """Currently open client connections (the I/O loop's view)."""
        return len(self._connections)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "KGServer":
        """Serve from a daemon background thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("KGServer.start() called twice")
        self._thread = threading.Thread(target=self._run,
                                        name="kg-server-io", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (the CLI path)."""
        self._run()

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # pipe full = a wakeup is already pending, or closed

    def _reset_connections(self) -> None:
        """Ask the I/O loop to drop every client connection.

        Run after a store swap: a binary-codec connection's response
        encoder captured the *old* store's interner objects at hello
        time, so its delta masks would desync against the adopted
        store.  Clients reconnect (the RemoteClient retries idempotent
        ops transparently) and renegotiate against the new store.
        """
        self._drop_connections = True
        self._wake()

    def close(self) -> None:
        """Stop the I/O loop, drop connections, close the service."""
        with self._close_lock:
            if self.closing:
                return
            self.closing = True
        self._stop_replication.set()
        if self._replication_thread is not None:
            self._replication_thread.join(timeout=10)
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=10)
        elif self._serving.is_set():
            # serve_forever() on some other thread: give its loop a
            # moment to notice the flag and clean up after itself.
            deadline = time.monotonic() + 10
            while self._serving.is_set() and time.monotonic() < deadline:
                time.sleep(0.005)
        # Workers drain fast: their service futures resolve because the
        # service closes only after the pool has been torn down.
        self._pool.shutdown(wait=True)
        self._cleanup()
        self.service.close()

    def _cleanup(self) -> None:
        """Close every socket exactly once (loop exit or never-started)."""
        with self._close_lock:
            if self._cleaned:
                return
            self._cleaned = True
        for conn in list(self._connections):
            self._close_conn(conn)
        for sock in (self._listener, self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        self._selector.close()

    def __enter__(self) -> "KGServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # the I/O loop (single thread; owns the selector)
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        self._serving.set()
        try:
            while not self.closing:
                events = self._selector.select(timeout=0.1)
                for key, mask in events:
                    if key.data is None:
                        self._accept_ready()
                    elif key.data is _WAKEUP:
                        self._drain_wakeups()
                    else:
                        conn = key.data
                        if conn.closed:
                            continue
                        if mask & selectors.EVENT_READ:
                            self._on_readable(conn)
                        if mask & selectors.EVENT_WRITE and not conn.closed:
                            self._flush(conn)
                self._flush_requested()
                if self._drop_connections:
                    self._drop_connections = False
                    for conn in list(self._connections):
                        self._close_conn(conn)
        finally:
            self._serving.clear()
            if self.closing:
                self._cleanup()

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - not fatal
                pass
            conn = _Connection(sock, peer)
            self._connections.add(conn)
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _drain_wakeups(self) -> None:
        while True:
            try:
                if not self._wake_recv.recv(4096):
                    return
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return

    def _flush_requested(self) -> None:
        with self._flush_lock:
            if not self._flush_wanted:
                return
            wanted = list(self._flush_wanted)
            self._flush_wanted.clear()
        for conn in wanted:
            if not conn.closed:
                self._flush(conn)

    def _set_mask(self, conn: _Connection, mask: int) -> None:
        if conn.mask != mask and not conn.closed:
            conn.mask = mask
            try:
                self._selector.modify(conn.sock, mask, conn)
            except (KeyError, ValueError, OSError):  # pragma: no cover
                pass

    def _close_conn(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._connections.discard(conn)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def _on_readable(self, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(1 << 20)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not chunk:
            # Clean EOF at a frame boundary, or the peer vanishing
            # mid-frame/mid-request — either way this connection is
            # done; any in-flight worker response is dropped on write.
            self._close_conn(conn)
            return
        if conn.input_broken:
            return  # framing already failed; ignore further bytes
        conn.inbuf += chunk
        self._parse_frames(conn)

    def _parse_frames(self, conn: _Connection) -> None:
        buffer = conn.inbuf
        appended = False
        while not conn.input_broken:
            if len(buffer) < 4:
                break
            length = int.from_bytes(buffer[:4], "big")
            violation = None
            if length == 0:
                violation = ProtocolError("zero-length frame")
            elif length > self.max_frame_bytes:
                violation = ProtocolError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame_bytes}-byte cap (hostile or corrupt "
                    f"length prefix)")
            if violation is not None:
                # Queue the violation behind the valid frames so their
                # responses still go out first, then stop reading.
                conn.input_broken = True
                with conn.lock:
                    conn.pending.append(violation)
                self._set_mask(conn, conn.mask & ~selectors.EVENT_READ)
                appended = True
                break
            if len(buffer) < 4 + length:
                break
            body = bytes(buffer[4:4 + length])
            del buffer[:4 + length]
            with conn.lock:
                conn.pending.append(body)
            appended = True
        if appended:
            self._maybe_dispatch(conn)

    def _maybe_dispatch(self, conn: _Connection) -> None:
        with conn.lock:
            if conn.busy or conn.close_after_write or not conn.pending:
                return
            conn.busy = True
            entry = conn.pending.popleft()
        try:
            self._pool.submit(self._work, conn, entry)
        except RuntimeError:  # pool already shut down: server is closing
            with conn.lock:
                conn.busy = False

    def _flush(self, conn: _Connection) -> None:
        while True:
            with conn.lock:
                if not conn.outbuf:
                    break
                view = conn.outbuf[0]
            try:
                sent = conn.sock.send(view)
            except (BlockingIOError, InterruptedError):
                self._set_mask(conn, conn.mask | selectors.EVENT_WRITE)
                return
            except OSError:
                self._close_conn(conn)
                return
            with conn.lock:
                if sent == len(view):
                    conn.outbuf.popleft()
                else:
                    conn.outbuf[0] = view[sent:]
        self._set_mask(conn, conn.mask & ~selectors.EVENT_WRITE)
        if conn.close_after_write:
            # Pending-but-undispatched frames are moot once the close
            # decision is made (_maybe_dispatch refuses them); only an
            # in-flight worker or unsent bytes defer the close.
            with conn.lock:
                drained = not conn.outbuf and not conn.busy
            if drained:
                self._close_conn(conn)

    # ------------------------------------------------------------------ #
    # workers (blocking service calls; one frame at a time per conn)
    # ------------------------------------------------------------------ #
    def _schedule_write(self, conn: _Connection, frame: Optional[bytes],
                        close: bool = False) -> None:
        with conn.lock:
            if conn.closed:
                return
            if frame:
                conn.outbuf.append(memoryview(frame))
            if close:
                conn.close_after_write = True
        with self._flush_lock:
            self._flush_wanted.add(conn)
        self._wake()

    def _work(self, conn: _Connection, entry) -> None:
        close = False
        try:
            frame, close = self._serve_frame(conn, entry)
        except BaseException as exc:  # pragma: no cover - last resort
            try:
                response = {"id": None, "ok": False,
                            "error": error_to_wire(exc)}
                frame, close = self._encode_json_response(conn, response), True
            except BaseException:
                frame, close = None, True
        self._schedule_write(conn, frame, close=close)
        with conn.lock:
            finished = close or conn.close_after_write or not conn.pending
            if finished:
                conn.busy = False
            else:
                entry = conn.pending.popleft()
        if finished:
            if conn.close_after_write:
                # The flush that saw busy=True may already have run;
                # request another so the close is never missed.
                with self._flush_lock:
                    self._flush_wanted.add(conn)
                self._wake()
            return
        try:
            self._pool.submit(self._work, conn, entry)
        except RuntimeError:  # closing
            with conn.lock:
                conn.busy = False

    def _serve_frame(self, conn: _Connection,
                     entry) -> Tuple[Optional[bytes], bool]:
        """One frame in, one response frame out (+ close-connection flag)."""
        if isinstance(entry, ProtocolError):
            # Framing violation queued by the I/O thread: the boundary
            # is no longer trustworthy — report best-effort and hang up.
            response = {"id": None, "ok": False, "error": error_to_wire(entry)}
            return self._encode_json_response(conn, response), True
        binary = conn.codec == CODEC_BINARY
        payload = entry
        if binary:
            tag = entry[0]
            if tag == TAG_BINARY:
                # The framing is intact (the length prefix parsed); the
                # client is just confused — typed error, stay alive.
                exc = ProtocolError(
                    "binary frames flow server-to-client only; requests "
                    "are JSON frames tagged 'J'")
                response = {"id": None, "ok": False,
                            "error": error_to_wire(exc)}
                return self._encode_json_response(conn, response), False
            if tag != TAG_JSON:
                exc = ProtocolError(
                    f"unknown frame tag {tag:#04x} on a binary-codec "
                    f"connection")
                response = {"id": None, "ok": False,
                            "error": error_to_wire(exc)}
                return self._encode_json_response(conn, response), True
            payload = entry[1:]
        try:
            message = decode_json_body(payload)
        except ProtocolError as exc:
            # Not JSON: the stream may be garbage — report and hang up
            # (same contract as the pre-codec server).
            response = {"id": None, "ok": False, "error": error_to_wire(exc)}
            return self._encode_json_response(conn, response), True
        if message.get("op") == "hello":
            return self._serve_hello(conn, message), False
        response = self.handle_message(message, raw=binary)
        if conn.codec == CODEC_BINARY:
            return self._encode_binary_response(conn, response), False
        return self._encode_json_response(conn, response), False

    def _serve_hello(self, conn: _Connection, message: dict) -> bytes:
        """Codec negotiation.  Grant binary only when policy and backend
        allow; the reply itself always uses the connection's *current*
        codec, so the client flips exactly after reading the ack."""
        request_id = message.get("id")
        codecs = message.get("codecs", [])
        if not (isinstance(codecs, list)
                and all(isinstance(name, str) for name in codecs)):
            exc = ProtocolError(
                f"hello 'codecs' must be an array of codec names, got "
                f"{codecs!r}")
            return self._encode_json_response(
                conn, {"id": request_id, "ok": False,
                       "error": error_to_wire(exc)})
        backend = self.service.store.backend
        grant = (CODEC_BINARY in codecs and self.codec == "auto"
                 and supports_id_queries(backend))
        granted = CODEC_BINARY if grant else CODEC_JSON
        frame = self._encode_json_response(
            conn, {"id": request_id, "ok": True,
                   "result": {"codec": granted,
                              "protocol": BINARY_PROTOCOL_VERSION}})
        if grant and conn.codec != CODEC_BINARY:
            conn.encoder = BinaryResponseEncoder(
                backend.entity_interner, backend.relation_interner,
                self.max_frame_bytes)
            conn.codec = CODEC_BINARY
        return frame

    def _encode_json_response(self, conn: _Connection,
                              response: dict) -> bytes:
        encode = encode_tagged_json if conn.codec == CODEC_BINARY \
            else encode_frame
        try:
            return encode(response, self.max_frame_bytes)
        except ProtocolError as exc:
            # The *response* did not fit the frame cap.  The stream is
            # still intact, so report and keep serving — the client
            # should page through a cursor instead.
            return encode({"id": response.get("id"), "ok": False,
                           "error": error_to_wire(exc)},
                          self.max_frame_bytes)

    def _encode_binary_response(self, conn: _Connection,
                                response: dict) -> bytes:
        """Pack id-block results; anything else rides as tagged JSON."""
        if response.get("ok"):
            request_id = response.get("id")
            result = response.get("result")
            try:
                if isinstance(result, IdBlock):
                    return conn.encoder.encode(
                        request_id, SHAPE_SINGLE, [("block", result, 0)])
                if isinstance(result, list) and any(
                        isinstance(item, IdBlock) for item in result):
                    items = [("block", item, 0) if isinstance(item, IdBlock)
                             else ("json", item) for item in result]
                    return conn.encoder.encode(request_id, SHAPE_LIST, items)
                if isinstance(result, dict) and isinstance(
                        result.get("rows"), IdBlock):
                    flags = FLAG_EXHAUSTED if result.get("exhausted") else 0
                    return conn.encoder.encode(
                        request_id, SHAPE_PAGE,
                        [("block", result["rows"], flags)])
            except ProtocolError as exc:
                return encode_tagged_json(
                    {"id": request_id, "ok": False,
                     "error": error_to_wire(exc)}, self.max_frame_bytes)
        return self._encode_json_response(conn, response)

    # ------------------------------------------------------------------ #
    # request dispatch (called from worker threads)
    # ------------------------------------------------------------------ #
    def handle_message(self, message: dict, raw: bool = False) -> dict:
        """Serve one decoded request; always returns a response object.

        Anything a hostile or buggy client can provoke — unknown op,
        missing/garbage fields, a query-layer error — comes back as a
        typed error response on the same connection; nothing propagates
        to the connection loop.  With ``raw=True`` (binary-codec
        connections) row results come back as
        :class:`~repro.kg.executor.IdBlock` values for the binary
        encoder; the id must then be a wire-safe integer or the request
        is served materialized instead.
        """
        request_id = message.get("id")
        raw = raw and isinstance(request_id, int) \
            and not isinstance(request_id, bool) \
            and -(1 << 63) <= request_id < (1 << 63)
        try:
            result = self._dispatch(message, raw=raw)
        except Exception as exc:
            return {"id": request_id, "ok": False, "error": error_to_wire(exc)}
        return {"id": request_id, "ok": True, "result": result}

    def _dispatch(self, message: dict, raw: bool = False):
        op = message.get("op")
        if op == "ping":
            return "pong"
        if op == "stats":
            server_info = {"connections": self.connection_count,
                           "workers": self._pool._max_workers,
                           "codec_policy": self.codec,
                           "role": self.role}
            if self.shard_index is not None:
                server_info["shard_index"] = self.shard_index
                server_info["n_shards"] = self.n_shards
            stats = {"service": self.service.stats,
                     "store": {"triples": len(self.service.store),
                               "backend": self.service.store.backend_name},
                     "server": server_info}
            if self.role == "replica":
                stats["replication"] = self._replication_snapshot()
            cluster_stats = getattr(self.service.store.backend,
                                    "cluster_stats", None)
            if callable(cluster_stats):
                stats["cluster"] = cluster_stats()
            return stats
        if op == "role":
            return self._role_info()
        if op == "replication_status":
            return self._replication_status()
        if op == "wal_tail":
            return self._serve_wal_tail(message)
        if op == "snapshot_ship":
            return self._serve_snapshot_ship(message)
        if op == "promote":
            return self._serve_promote()
        if op == "len":
            return len(self.service.store)
        if op == "execute":
            query = _wire_query(_field(message, "query", dict, "an object"))
            return self.service.submit(
                query, reorder=bool(message.get("reorder", True)),
                raw=raw).result()
        if op == "execute_many":
            # Decode the whole batch BEFORE submitting anything: a
            # malformed query mid-list must not leave already-submitted
            # futures executing with nobody waiting on them.
            queries = [_wire_query(query) for query in
                       _field(message, "queries", list, "an array")]
            futures = [self.service.submit(
                query, reorder=bool(message.get("reorder", True)), raw=raw)
                for query in queries]
            return [future.result() for future in futures]
        if op == "match":
            pattern = _wire_pattern(_field(message, "pattern", list,
                                           "an array"))
            if raw:
                result = self.service.submit_lookup(pattern,
                                                    raw=True).result()
                return result if isinstance(result, IdBlock) \
                    else _wire_triples(result)
            return _wire_triples(self.service.lookup_many([pattern])[0])
        if op == "match_many":
            patterns = [_wire_pattern(pattern) for pattern in
                        _field(message, "patterns", list, "an array")]
            if raw:
                futures = [self.service.submit_lookup(pattern, raw=True)
                           for pattern in patterns]
                return [result if isinstance(result, IdBlock)
                        else _wire_triples(result)
                        for result in (future.result()
                                       for future in futures)]
            return [_wire_triples(triples)
                    for triples in self.service.lookup_many(patterns)]
        if op == "match_ids_many":
            patterns = [_wire_id_pattern(pattern) for pattern in
                        _field(message, "patterns", list, "an array")]
            blocks = self.service.match_ids_many(patterns)
            if raw:
                return blocks
            return [block.rows.tolist() for block in blocks]
        if op == "count":
            pattern = _wire_pattern(_field(message, "pattern", list,
                                           "an array"))
            return self.service.count_many([pattern])[0]
        if op == "count_many":
            patterns = [_wire_pattern(pattern) for pattern in
                        _field(message, "patterns", list, "an array")]
            return self.service.count_many(patterns)
        if op == "open_cursor":
            query = _wire_query(_field(message, "query", dict, "an object"))
            return self.service.open_cursor(
                query, reorder=bool(message.get("reorder", True)))
        if op == "open_match_cursor":
            pattern = _wire_pattern(_field(message, "pattern", list,
                                           "an array"))
            return self.service.open_match_cursor(pattern)
        if op == "fetch":
            cursor_id = _field(message, "cursor", str, "a string")
            max_rows = _field(message, "max_rows", int, "an integer")
            page, exhausted = self.service.fetch_cursor(cursor_id, max_rows,
                                                        raw=raw)
            if not isinstance(page, IdBlock) and page \
                    and isinstance(page[0], Triple):
                page = _wire_triples(page)
            return {"rows": page, "exhausted": exhausted}
        if op == "close_cursor":
            self.service.close_cursor(_field(message, "cursor", str,
                                             "a string"))
            return None
        if op in ("add_many", "remove_many", "compact") \
                and self.role == "replica":
            raise ProtocolError(
                f"this server is a read-only replica following "
                f"{self._follow}; send writes to the leader")
        if op == "add_many":
            triples = decode_wire_triples(
                _field(message, "triples", list, "an array"))
            added = self.service.add_many(triples)
            return {"added": added, "epoch": self.service.mutation_epoch}
        if op == "remove_many":
            triples = decode_wire_triples(
                _field(message, "triples", list, "an array"))
            removed = self.service.remove_many(triples)
            return {"removed": removed, "epoch": self.service.mutation_epoch}
        if op == "compact":
            return {"generation": self.service.compact()}
        raise ProtocolError(f"unknown op {op!r}")

    def _role_info(self) -> dict:
        """The ``role`` handshake: who this server is in a cluster.

        The ``fingerprint`` field (id-capable backends only) digests
        both interner tables; a coordinator whose own interners carry
        the same fingerprint knows the server's id space is identical
        to its own and may ship raw id-space queries
        (``match_ids_many``) instead of strings.
        """
        store = self.service.store
        backend = store.backend
        info = {"role": self.role,
                "shard_index": self.shard_index,
                "n_shards": self.n_shards,
                "writable": store.writable,
                "generation": store.live_generation,
                "triples": len(store),
                "backend": store.backend_name}
        if supports_id_queries(backend):
            info["fingerprint"] = interner_fingerprint(
                backend.entity_interner, backend.relation_interner)
        if self.role == "replica":
            info["replication"] = self._replication_snapshot()
        return info

    def _replication_snapshot(self) -> dict:
        """One consistent copy of the replication status block."""
        with self._stats_lock:
            return dict(self._replication)

    def _replication_status(self) -> dict:
        """The ``replication_status`` op: how caught-up this server is.

        The promotion protocol's ballot: a coordinator facing a dead
        leader polls each replica's ``applied_seq`` through this and
        promotes the highest.  Served by leaders too (an
        already-promoted server reports its role so a second
        coordinator repoints instead of re-promoting).
        """
        store = self.service.store
        info = self._replication_snapshot()
        info["role"] = self.role
        info["local_generation"] = store.live_generation
        info["writable"] = store.writable
        return info

    def _serve_wal_tail(self, message: dict) -> dict:
        """Ship WAL batches past ``after_seq`` to a polling follower.

        Re-scans the WAL file per poll: the scanner recovers the
        longest *intact record prefix*, which is exactly the durably
        acked state even while the dispatcher thread is appending to
        the same file.  The response is capped (batches and a triple
        budget) so a far-behind follower catches up over several polls
        instead of one response blowing the frame cap.
        """
        wal = self.service.store.wal
        if wal is None:
            raise ProtocolError(
                "wal_tail requires a live store (this server was opened "
                "from a plain snapshot or in-memory data)")
        after_seq = _field(message, "after_seq", int, "an integer")
        if after_seq < 0:
            raise ProtocolError(f"after_seq must be >= 0, got {after_seq}")
        max_batches = message.get("max_batches", 256)
        if not isinstance(max_batches, int) or isinstance(max_batches, bool) \
                or max_batches < 1:
            raise ProtocolError(
                f"max_batches must be a positive integer, got "
                f"{max_batches!r}")
        scan = scan_wal(wal.path)
        batches: List[list] = []
        budget = _WAL_TAIL_TRIPLE_BUDGET
        for batch in scan.batches:
            if batch.seq <= after_seq:
                continue
            if batches and (budget <= 0
                            or len(batches) >= min(max_batches,
                                                   _WAL_TAIL_MAX_BATCHES)):
                break
            batches.append([batch.seq, batch.op,
                            [list(triple) for triple in batch.triples]])
            budget -= len(batch.triples)
        return {"generation": scan.generation, "next_seq": wal.next_seq,
                "batches": batches}

    def _serve_snapshot_ship(self, message: dict) -> dict:
        """Stream the current snapshot generation to a bootstrapping peer.

        Two request shapes share the op.  Without a ``path`` field it
        returns the **manifest**: the current generation, the WAL
        position the shipped snapshot corresponds to (``base_seq`` — a
        compaction always starts its new WAL at seq 1, so a shipped
        snapshot is always seq 0 of its generation) and the relative
        path + size of every snapshot member file.  With ``path`` /
        ``offset`` / ``generation`` it returns one **chunk**: up to
        :data:`~repro.kg.protocol.SNAPSHOT_CHUNK_BYTES` of that file as
        CRC-checked base64, well under the frame cap.  A chunk request
        for a generation that is no longer current (the leader
        compacted mid-transfer) fails typed — the fetcher restarts from
        a fresh manifest instead of stitching two generations together.
        """
        store = self.service.store
        directory = store.live_directory
        generation = store.live_generation
        if directory is None or generation is None:
            raise ProtocolError(
                "snapshot_ship requires a live store (this server was "
                "opened from a plain snapshot or in-memory data)")
        snapshot = directory / snapshot_dir_name(generation)
        if "path" not in message:
            files = [{"path": member, "size": size}
                     for member, size in list_snapshot_files(snapshot)]
            return {"generation": generation, "base_seq": 0,
                    "chunk_bytes": SNAPSHOT_CHUNK_BYTES, "files": files}
        member = _field(message, "path", str, "a string")
        offset = _field(message, "offset", int, "an integer")
        wanted = _field(message, "generation", int, "an integer")
        if offset < 0:
            raise ProtocolError(f"offset must be >= 0, got {offset}")
        if wanted != generation:
            raise ProtocolError(
                f"snapshot generation changed under the transfer (chunk "
                f"asked for generation {wanted}, this server now serves "
                f"{generation}) — restart the fetch from a fresh manifest")
        target = _resolve_snapshot_member(snapshot, member)
        try:
            with open(target, "rb") as handle:
                handle.seek(offset)
                data = handle.read(SNAPSHOT_CHUNK_BYTES)
                size = os.fstat(handle.fileno()).st_size
        except OSError as exc:
            raise ProtocolError(
                f"cannot read snapshot member {member!r}: {exc} (a "
                f"compaction may have swept it — restart the fetch)"
            ) from exc
        chunk = encode_snapshot_chunk(data)
        chunk.update({"generation": generation, "path": member,
                      "size": size, "eof": offset + len(data) >= size})
        return chunk

    def _serve_promote(self) -> dict:
        """The ``promote`` op: turn this replica into the shard's leader.

        Commit order: stop the replication loop first (no leader batch
        may apply after the cut), then compact — which folds the
        replica's current state into a **new, higher generation** and
        flips its ``live.json`` — then flip the advertised role so the
        write ops open up.  The generation bump is the split-brain
        fence: the dead ex-leader's directory stays on the old
        generation, so a routing layer that recorded the promotion
        generation refuses any endpoint still serving an older one; a
        restarted ex-leader rejoins by following the new leader, which
        re-bootstraps it past the fence.  Idempotent on an
        already-promoted server (reports ``promoted: false``).
        """
        with self._promote_lock:
            if self.role == "leader":
                return {"promoted": False, "role": self.role,
                        "generation": self.service.store.live_generation}
            if self.service.store.live_generation is None:
                raise ProtocolError(
                    "promotion requires a live store directory: an "
                    "in-memory follower has no durable generation to bump "
                    "and cannot take over the shard's write path")
            self._stop_replication.set()
            thread = self._replication_thread
            if thread is not None:
                thread.join(timeout=10)
                if thread.is_alive():
                    raise ProtocolError(
                        "replication loop did not stop within 10s; "
                        "refusing to promote while old-leader batches "
                        "may still be applying")
            generation = self.service.compact()
            with self._stats_lock:
                self._replication["running"] = False
                self._replication["last_error"] = None
            self.role = "leader"
            self._follow = None
            return {"promoted": True, "role": "leader",
                    "generation": generation}

    # ------------------------------------------------------------------ #
    # replication (follower mode)
    # ------------------------------------------------------------------ #
    def _replicate(self) -> None:
        """Follower loop: poll the leader's WAL tail and apply it.

        Each leader batch applies as ONE ``service.add_many`` /
        ``remove_many`` call, so when this replica runs over a live
        store bootstrapped from the leader's snapshot, its own WAL
        sequence numbers stay in lockstep with the leader's and
        ``applied_seq`` survives a replica restart for free.
        Unreachable leaders are retried forever (the replica keeps
        serving reads from its current state).  A *generation* change
        means the leader compacted underneath us: replaying the new log
        over our old snapshot would be wrong, so a live-directory
        replica re-bootstraps itself over the wire
        (:meth:`_rebootstrap`) and resumes on the new generation — only
        an in-memory follower, which has nowhere durable to adopt a
        snapshot into, still stops with the re-bootstrap demand.  Every
        status mutation happens under the stats lock, grouped per batch,
        so a concurrent ``stats`` poll never reads a torn block.
        """
        from repro.kg.client import RemoteClient

        rep = self._replication
        client: Optional[RemoteClient] = None
        # Last leader generation observed, for followers with no local
        # generation (in-memory): they cannot adopt a snapshot, but they
        # must still notice a compaction instead of misreading the new
        # log's restarted sequence numbers as a continuation.
        leader_generation: Optional[int] = None

        def drop_client() -> None:
            nonlocal client
            if client is not None:
                try:
                    client.close()
                except Exception:  # pragma: no cover - best-effort
                    pass
                client = None

        try:
            while not self._stop_replication.is_set():
                with self._stats_lock:
                    applied_seq = rep["applied_seq"]
                try:
                    if client is None:
                        client = RemoteClient(self._follow, codec=CODEC_JSON,
                                              timeout=10.0)
                    result = client.call("wal_tail", after_seq=applied_seq)
                except Exception as exc:
                    with self._stats_lock:
                        rep["last_error"] = f"leader poll failed: {exc}"
                    drop_client()
                    self._stop_replication.wait(self._follow_poll_interval)
                    continue
                generation = result.get("generation")
                # Re-read the local generation every iteration: a
                # re-bootstrap moves it, and comparing against a value
                # captured at loop start would mis-fire forever after.
                local_generation = self.service.store.live_generation
                with self._stats_lock:
                    rep["polls"] += 1
                    rep["generation"] = generation
                if local_generation is not None \
                        and generation != local_generation:
                    try:
                        self._rebootstrap(client)
                    except Exception as exc:
                        with self._stats_lock:
                            rep["last_error"] = (
                                f"re-bootstrap after leader generation "
                                f"change ({local_generation} -> "
                                f"{generation}) failed: {exc}; retrying")
                        drop_client()
                        self._stop_replication.wait(
                            self._follow_poll_interval)
                    continue
                if local_generation is None \
                        and leader_generation is not None \
                        and generation != leader_generation:
                    with self._stats_lock:
                        rep["last_error"] = (
                            f"leader moved to generation {generation}; an "
                            f"in-memory follower cannot adopt a shipped "
                            f"snapshot — restart this replica over a live "
                            f"store directory to follow across "
                            f"compactions")
                    return
                leader_generation = generation
                applied_any = False
                abort = None
                for seq, op, rows in result.get("batches") or []:
                    if seq <= applied_seq:
                        continue
                    if seq != applied_seq + 1:
                        abort = (f"gap in the leader WAL: expected seq "
                                 f"{applied_seq + 1}, got {seq} — "
                                 f"re-bootstrap this replica")
                        break
                    triples = [Triple.unchecked(h, r, t) for h, r, t in rows]
                    try:
                        if op == OP_ADD:
                            self.service.add_many(triples)
                        else:
                            self.service.remove_many(triples)
                    except Exception as exc:
                        abort = f"replay failed: {exc}"
                        break
                    applied_seq = seq
                    # One lock acquisition per applied batch: seq,
                    # batch and triple counters move together or not at
                    # all as far as any stats reader can observe.
                    with self._stats_lock:
                        rep["applied_seq"] = seq
                        rep["batches_applied"] += 1
                        rep["triples_applied"] += len(triples)
                    applied_any = True
                if abort is not None:
                    with self._stats_lock:
                        rep["last_error"] = abort
                    return
                with self._stats_lock:
                    rep["last_error"] = None
                if not applied_any:
                    self._stop_replication.wait(self._follow_poll_interval)
        finally:
            with self._stats_lock:
                rep["running"] = False
            drop_client()

    def _rebootstrap(self, client) -> None:
        """Adopt the leader's current generation over the wire.

        The follower half of snapshot shipping, run from the
        replication thread when the leader's generation moved: fetch
        the new ``snap-G/`` + WAL position into this replica's live
        directory (:func:`fetch_snapshot` — the atomic ``live.json``
        flip is the commit point), open the adopted generation as a
        fresh store, swap it in through the service dispatcher (readers
        never observe half a state), close the replaced store, sweep
        the stale generation, and drop client connections whose binary
        encoders captured the old store's interners.  On return the
        loop resumes tailing the new generation's WAL from the shipped
        ``base_seq``.  In-memory followers cannot adopt a snapshot and
        keep the old stop-with-error behavior (the caller guards).
        """
        store = self.service.store
        directory = store.live_directory
        if directory is None:
            raise ProtocolError(
                "re-bootstrap requires a live store directory")
        wal_fsync = store.wal.fsync if store.wal is not None else True
        manifest = fetch_snapshot(client, directory, fsync=wal_fsync,
                                  should_abort=self._stop_replication.is_set)
        generation = int(manifest["generation"])
        base_seq = manifest.get("base_seq", 0)
        if not isinstance(base_seq, int) or isinstance(base_seq, bool) \
                or base_seq < 0:
            raise ProtocolError(
                f"snapshot manifest carries invalid base_seq {base_seq!r}")
        new_store = TripleStore.open(directory, wal_fsync=wal_fsync)
        old_store = self.service.swap_store(new_store)
        try:
            old_store.close()
        except Exception:  # pragma: no cover - old WAL close best-effort
            pass
        new_store.sweep_stale_generations()
        with self._stats_lock:
            self._replication["generation"] = generation
            self._replication["applied_seq"] = base_seq
            self._replication["rebootstraps"] += 1
            self._replication["last_error"] = None
        self._reset_connections()
