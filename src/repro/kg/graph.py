"""The :class:`KnowledgeGraph` facade.

A :class:`KnowledgeGraph` wraps a :class:`~repro.kg.store.TripleStore` and
adds the semantics OpenBG needs on top of raw triples:

* registration of classes, concepts, entities and relation kinds,
* taxonomy traversal along ``rdfs:subClassOf`` / ``skos:broader``,
* instance-of lookups along ``rdf:type``,
* neighbourhood extraction (used for the Figure 3 snapshot),
* conversion to integer-id tensors for the embedding models,
* export to ``networkx`` for structural analysis.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx
import numpy as np

from repro.errors import OntologyError
from repro.kg.backend import DEFAULT_BACKEND, ColumnarBackend, GraphBackend
from repro.kg.namespaces import MetaProperty, TAXONOMY_PROPERTIES
from repro.kg.store import TripleStore
from repro.kg.triple import Triple
from repro.kg.vocab import Vocabulary


class KnowledgeGraph:
    """A business knowledge graph with ontology-aware helpers."""

    def __init__(self, name: str = "OpenBG",
                 backend: Union[str, GraphBackend] = DEFAULT_BACKEND) -> None:
        self.name = name
        self.store = TripleStore(backend=backend)
        self.classes: Set[str] = set()
        self.concepts: Set[str] = set()
        self.entities: Set[str] = set()
        self.object_properties: Set[str] = set()
        self.data_properties: Set[str] = set()
        self.meta_properties: Set[str] = {prop.value for prop in MetaProperty}
        self.images: Dict[str, np.ndarray] = {}
        self.descriptions: Dict[str, str] = {}
        self.labels: Dict[str, str] = {}
        self._concept_links_cache: Optional[
            Tuple[Tuple[int, int, int],
                  Tuple[Dict[str, List[str]], Dict[str, List[str]]]]] = None

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_class(self, identifier: str, label: Optional[str] = None) -> None:
        """Register a class (Category / Brand / Place or one of their subclasses)."""
        self.classes.add(identifier)
        if label:
            self.labels[identifier] = label

    def register_concept(self, identifier: str, label: Optional[str] = None) -> None:
        """Register a concept (Time / Scene / Theme / Crowd / Market Segment node)."""
        self.concepts.add(identifier)
        if label:
            self.labels[identifier] = label

    def register_entity(self, identifier: str, label: Optional[str] = None) -> None:
        """Register an instance-level entity (a product or item)."""
        self.entities.add(identifier)
        if label:
            self.labels[identifier] = label

    def register_object_property(self, identifier: str) -> None:
        """Register an object property (relation between classes/concepts)."""
        self.object_properties.add(identifier)

    def register_data_property(self, identifier: str) -> None:
        """Register a data property (attribute with literal values)."""
        self.data_properties.add(identifier)

    def attach_image(self, entity: str, features: np.ndarray) -> None:
        """Attach an image feature vector to an entity (multimodal fact)."""
        self.images[entity] = np.asarray(features, dtype=np.float32)
        self.add(Triple(entity, MetaProperty.IMAGE_IS.value, f"image://{entity}"))

    def attach_description(self, entity: str, text: str) -> None:
        """Attach an unstructured textual description (rdfs:comment)."""
        self.descriptions[entity] = text
        self.add(Triple(entity, MetaProperty.COMMENT.value, f"comment://{entity}"))

    # ------------------------------------------------------------------ #
    # triples
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        """Add a triple to the graph; returns True if it was new."""
        self._concept_links_cache = None
        return self.store.add(triple)

    def add_many(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number of new ones."""
        self._concept_links_cache = None
        return self.store.add_many(triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self.store

    def __len__(self) -> int:
        return len(self.store)

    def triples(self) -> List[Triple]:
        """All triples in deterministic order."""
        return self.store.triples()

    def match(self, head: Optional[str] = None, relation: Optional[str] = None,
              tail: Optional[str] = None, sort: bool = False) -> List[Triple]:
        """Pattern matching, delegated to the store."""
        return self.store.match(head, relation, tail, sort=sort)

    # ------------------------------------------------------------------ #
    # conjunctive queries
    # ------------------------------------------------------------------ #
    def query_engine(self) -> "QueryEngine":
        """A :class:`~repro.kg.query.QueryEngine` over this graph's store.

        The engine plans conjunctive pattern queries (batched selectivity
        ordering) and executes them in ID space on columnar-family
        backends; the applications layer runs on this instead of
        hand-rolled triple scans.
        """
        from repro.kg.query import QueryEngine

        return QueryEngine(self.store)

    def concept_links(self) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
        """(concept → products, product → concepts) over concept-link triples.

        A concept link is an object-property edge whose tail is a
        registered concept (``relatedScene`` / ``forCrowd`` /
        ``aboutTheme`` / ``appliedTime`` / ``inMarket_*`` — taxonomy
        meta-properties such as ``skos:broader`` are excluded by
        construction).  Evaluated as one batched single-pattern query
        per registered object property through the ID-space query
        executor; both maps hold sorted, deduplicated lists.

        The result is cached — every application simulator reads this
        index at construction, over a graph that is static by then.
        Callers receive an independent copy (mutating a returned list
        must not corrupt the cache or a sibling consumer).  The cache
        drops on :meth:`add` / :meth:`add_many` and whenever the store
        size or the concept/property registrations change; mutations
        that bypass the graph facade (a direct ``store.add`` paired
        with a size-preserving ``store.discard``) are not tracked.
        """
        from repro.kg.query import PatternQuery

        def copied(pair):
            return ({key: list(values) for key, values in pair[0].items()},
                    {key: list(values) for key, values in pair[1].items()})

        cache_key = (len(self.store), len(self.concepts),
                     len(self.object_properties))
        if self._concept_links_cache is not None \
                and self._concept_links_cache[0] == cache_key:
            return copied(self._concept_links_cache[1])
        by_concept: Dict[str, Set[str]] = {}
        by_product: Dict[str, Set[str]] = {}
        relations = sorted(self.object_properties)
        if not relations or not len(self.store):
            return {}, {}
        queries = [PatternQuery.from_patterns([("?product", relation, "?concept")])
                   for relation in relations]
        for rows in self.query_engine().execute_many(queries):
            for row in rows:
                concept = row["?concept"]
                if concept not in self.concepts:
                    continue
                product = row["?product"]
                by_concept.setdefault(concept, set()).add(product)
                by_product.setdefault(product, set()).add(concept)
        result = ({concept: sorted(products)
                   for concept, products in by_concept.items()},
                  {product: sorted(concepts)
                   for product, concepts in by_product.items()})
        self._concept_links_cache = (cache_key, result)
        return copied(result)

    # ------------------------------------------------------------------ #
    # taxonomy traversal
    # ------------------------------------------------------------------ #
    def parents(self, node: str) -> List[str]:
        """Direct taxonomy parents along subClassOf / broader."""
        result: Set[str] = set()
        for tails in self.store.tails_many([(node, prop) for prop in TAXONOMY_PROPERTIES]):
            result.update(tails)
        return sorted(result)

    def children(self, node: str) -> List[str]:
        """Direct taxonomy children along subClassOf / broader."""
        result: Set[str] = set()
        for triples in self.store.match_many(
                [(None, prop, node) for prop in TAXONOMY_PROPERTIES]):
            result.update(triple.head for triple in triples)
        return sorted(result)

    def ancestors(self, node: str) -> List[str]:
        """All transitive taxonomy ancestors (excluding the node itself)."""
        seen: Set[str] = set()
        frontier = deque(self.parents(node))
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.parents(current))
        return sorted(seen)

    def descendants(self, node: str) -> List[str]:
        """All transitive taxonomy descendants (excluding the node itself)."""
        seen: Set[str] = set()
        frontier = deque(self.children(node))
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.children(current))
        return sorted(seen)

    def is_subclass_of(self, node: str, candidate_ancestor: str) -> bool:
        """True when ``candidate_ancestor`` is a (transitive) taxonomy ancestor."""
        if node == candidate_ancestor:
            return True
        frontier = deque(self.parents(node))
        seen: Set[str] = set()
        while frontier:
            current = frontier.popleft()
            if current == candidate_ancestor:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.parents(current))
        return False

    def taxonomy_depth(self, node: str) -> int:
        """Length of the longest parent chain above ``node`` (root has depth 0).

        Computed iteratively with memoization so DAG-shaped taxonomies stay
        linear-time (the naive recursion is exponential on diamonds) and
        deep chains cannot hit ``RecursionError``.  Cycle edges — which the
        recursion would have followed forever — are ignored.
        """
        memo: Dict[str, int] = {}
        in_progress: Set[str] = {node}
        stack: List[Tuple[str, List[str]]] = [(node, self.parents(node))]
        while stack:
            current, current_parents = stack[-1]
            pending = next((p for p in current_parents
                            if p not in memo and p not in in_progress), None)
            if pending is not None:
                in_progress.add(pending)
                stack.append((pending, self.parents(pending)))
                continue
            memo[current] = max((1 + memo[p] for p in current_parents if p in memo),
                                default=0)
            in_progress.discard(current)
            stack.pop()
        return memo[node]

    def leaves_under(self, node: str) -> List[str]:
        """Taxonomy descendants of ``node`` that have no further children."""
        return sorted(d for d in self.descendants(node) if not self.children(d))

    # ------------------------------------------------------------------ #
    # instances
    # ------------------------------------------------------------------ #
    def instances_of(self, class_id: str, transitive: bool = False) -> List[str]:
        """Entities e with (e, rdf:type, class_id); optionally include subclasses."""
        targets = [class_id]
        if transitive:
            targets.extend(self.descendants(class_id))
        instances: Set[str] = set()
        for target in targets:
            instances.update(self.store.heads(MetaProperty.TYPE.value, target))
        return sorted(instances)

    def types_of(self, entity: str) -> List[str]:
        """Classes c with (entity, rdf:type, c)."""
        return self.store.tails(entity, MetaProperty.TYPE.value)

    # ------------------------------------------------------------------ #
    # neighbourhoods & export
    # ------------------------------------------------------------------ #
    def neighbourhood(self, node: str, hops: int = 1) -> List[Triple]:
        """All triples within ``hops`` undirected hops of ``node`` (Figure 3)."""
        if hops < 1:
            raise OntologyError("neighbourhood requires hops >= 1")
        backend = self.store.backend
        if isinstance(backend, ColumnarBackend):
            return self._neighbourhood_columnar(backend, node, hops)
        frontier: Set[str] = {node}
        seen_nodes: Set[str] = {node}
        collected: Set[Triple] = set()
        for _ in range(hops):
            next_frontier: Set[str] = set()
            for current in frontier:
                for triple in self.store.iter_match(head=current):
                    collected.add(triple)
                    next_frontier.add(triple.tail)
                for triple in self.store.iter_match(tail=current):
                    collected.add(triple)
                    next_frontier.add(triple.head)
            frontier = next_frontier - seen_nodes
            seen_nodes.update(next_frontier)
        return sorted(collected)

    def _neighbourhood_columnar(self, backend: ColumnarBackend, node: str,
                                hops: int) -> List[Triple]:
        """BFS over interned ids; strings appear only in the final result."""
        node_id = backend.entity_interner.lookup(node)
        if node_id is None:
            return []
        ids = backend.id_triples()
        frontier = {int(node_id)}
        seen_nodes = {int(node_id)}
        collected_rows: Set[int] = set()
        for _ in range(hops):
            next_frontier: Set[int] = set()
            for current in frontier:
                out_rows = backend.match_id_rows(head_id=current)
                in_rows = backend.match_id_rows(tail_id=current)
                collected_rows.update(out_rows.tolist())
                collected_rows.update(in_rows.tolist())
                next_frontier.update(ids[out_rows, 2].tolist())
                next_frontier.update(ids[in_rows, 0].tolist())
            frontier = next_frontier - seen_nodes
            seen_nodes.update(next_frontier)
        if not collected_rows:
            return []
        # Deterministic order via symbol ranks — no Triple-object sort.
        rows = np.fromiter(collected_rows, dtype=np.int64, count=len(collected_rows))
        sub = ids[rows]
        entity_rank = backend.entity_sort_rank()
        relation_rank = backend.relation_sort_rank()
        order = np.lexsort((entity_rank[sub[:, 2]], relation_rank[sub[:, 1]],
                            entity_rank[sub[:, 0]]))
        return backend._materialize(sub[order])

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export to a ``networkx.MultiDiGraph`` with relation edge keys."""
        graph = nx.MultiDiGraph(name=self.name)
        for triple in self.store:
            graph.add_edge(triple.head, triple.tail, key=triple.relation,
                           relation=triple.relation)
        return graph

    # ------------------------------------------------------------------ #
    # integer-id views for embedding models
    # ------------------------------------------------------------------ #
    def build_vocabularies(
        self, relations: Optional[Sequence[str]] = None
    ) -> Tuple[Vocabulary, Vocabulary]:
        """Build (entity_vocab, relation_vocab) over the stored triples.

        ``relations`` restricts the relation vocabulary (and therefore the
        triples considered) to the given subset, which is how the benchmark
        builders produce OpenBG500-style relation-filtered views.

        Ids are assigned in sorted-symbol order, so the same graph yields
        the same vocabularies regardless of storage backend or insertion
        order.
        """
        backend = self.store.backend
        if isinstance(backend, ColumnarBackend):
            ids = backend.id_triples()
            if relations is not None:
                allowed_ids = [backend.relation_interner.lookup(rel)
                               for rel in relations]
                allowed_ids = [rel_id for rel_id in allowed_ids if rel_id is not None]
                ids = ids[np.isin(ids[:, 1], np.asarray(allowed_ids, dtype=np.int64))]
            # Vocab ids are assigned in sorted-symbol order so the mapping
            # is identical whichever backend built the graph.
            entity_rank = backend.entity_sort_rank()
            relation_rank = backend.relation_sort_rank()
            entity_ids = np.unique(ids[:, [0, 2]].ravel())
            entity_ids = entity_ids[np.argsort(entity_rank[entity_ids])]
            relation_ids = np.unique(ids[:, 1])
            relation_ids = relation_ids[np.argsort(relation_rank[relation_ids])]
            entity_symbol = backend.entity_interner.symbol_of
            relation_symbol = backend.relation_interner.symbol_of
            entity_vocab = Vocabulary(entity_symbol(int(i)) for i in entity_ids)
            relation_vocab = Vocabulary(relation_symbol(int(i)) for i in relation_ids)
            return entity_vocab, relation_vocab
        allowed = set(relations) if relations is not None else None
        entity_symbols: set = set()
        relation_symbols: set = set()
        for triple in self.store.iter_match():
            if allowed is not None and triple.relation not in allowed:
                continue
            entity_symbols.add(triple.head)
            entity_symbols.add(triple.tail)
            relation_symbols.add(triple.relation)
        return Vocabulary(sorted(entity_symbols)), Vocabulary(sorted(relation_symbols))

    def to_id_array(
        self,
        entity_vocab: Vocabulary,
        relation_vocab: Vocabulary,
        triples: Optional[Iterable[Triple]] = None,
    ) -> np.ndarray:
        """Encode triples to an (n, 3) int64 array of (head, relation, tail) ids.

        Triples whose symbols are missing from the vocabularies are skipped,
        mirroring the standard practice of dropping unseen-entity test triples.
        """
        backend = self.store.backend
        if triples is None and isinstance(backend, ColumnarBackend):
            # Translate the backend's interned ids to vocab ids in bulk:
            # one lookup per *unique* symbol instead of three per triple.
            # Rows come out in sorted-triple order, matching the fallback
            # path (and the set backend) exactly.
            ids = backend.id_triples()
            entity_rank = backend.entity_sort_rank()
            relation_rank = backend.relation_sort_rank()
            ids = ids[np.lexsort((entity_rank[ids[:, 2]], relation_rank[ids[:, 1]],
                                  entity_rank[ids[:, 0]]))]
            entity_map = np.full(len(backend.entity_interner), -1, dtype=np.int64)
            for interned_id, symbol in enumerate(backend.entity_interner):
                vocab_id = entity_vocab.get(symbol)
                if vocab_id is not None:
                    entity_map[interned_id] = vocab_id
            relation_map = np.full(len(backend.relation_interner), -1, dtype=np.int64)
            for interned_id, symbol in enumerate(backend.relation_interner):
                vocab_id = relation_vocab.get(symbol)
                if vocab_id is not None:
                    relation_map[interned_id] = vocab_id
            encoded = np.column_stack((entity_map[ids[:, 0]],
                                       relation_map[ids[:, 1]],
                                       entity_map[ids[:, 2]]))
            return encoded[(encoded >= 0).all(axis=1)]
        rows: List[Tuple[int, int, int]] = []
        source = self.store.triples() if triples is None else triples
        for triple in source:
            head_id = entity_vocab.get(triple.head)
            rel_id = relation_vocab.get(triple.relation)
            tail_id = entity_vocab.get(triple.tail)
            if head_id is None or rel_id is None or tail_id is None:
                continue
            rows.append((head_id, rel_id, tail_id))
        if not rows:
            return np.zeros((0, 3), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def relation_frequencies(self) -> Dict[str, int]:
        """Relation → triple count."""
        return self.store.relation_frequencies()

    def label_of(self, identifier: str) -> str:
        """Human-readable label for an identifier (falls back to the id)."""
        return self.labels.get(identifier, identifier)

    def describe(self) -> Dict[str, int]:
        """Cheap size summary used in logs and examples."""
        return {
            "classes": len(self.classes),
            "concepts": len(self.concepts),
            "entities": len(self.entities),
            "object_properties": len(self.object_properties),
            "data_properties": len(self.data_properties),
            "triples": len(self.store),
            "multimodal_entities": len(self.images),
        }
