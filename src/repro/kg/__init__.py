"""Knowledge-graph substrate: triples, stores, graphs, queries, statistics.

This package replaces the Apache Jena ontology / RDF APIs the paper uses.
It provides an in-memory, fully indexed triple store, a higher-level
:class:`~repro.kg.graph.KnowledgeGraph` facade with vocabulary management
and taxonomy traversal, N-Triples / TSV serialization, a triple-pattern
query engine, and graph statistics mirroring Table I of the paper.
"""

from repro.kg.namespaces import MetaProperty, Namespaces
from repro.kg.triple import Triple
from repro.kg.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    ColumnarBackend,
    GraphBackend,
    Interner,
    SetBackend,
    make_backend,
)
from repro.kg.mmap_backend import MmapBackend
from repro.kg.sharded_backend import ShardedBackend
from repro.kg.store import TripleStore
from repro.kg.vocab import Vocabulary
from repro.kg.graph import KnowledgeGraph
from repro.kg.query import PatternQuery, QueryEngine
from repro.kg.statistics import GraphStatistics, compute_statistics

__all__ = [
    "MetaProperty",
    "Namespaces",
    "Triple",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ColumnarBackend",
    "GraphBackend",
    "Interner",
    "MmapBackend",
    "SetBackend",
    "ShardedBackend",
    "make_backend",
    "TripleStore",
    "Vocabulary",
    "KnowledgeGraph",
    "PatternQuery",
    "QueryEngine",
    "GraphStatistics",
    "compute_statistics",
]
