"""Knowledge-graph substrate: triples, stores, graphs, queries, statistics.

This package replaces the Apache Jena ontology / RDF APIs the paper uses.
It provides an in-memory, fully indexed triple store, a higher-level
:class:`~repro.kg.graph.KnowledgeGraph` facade with vocabulary management
and taxonomy traversal, N-Triples / TSV serialization, a plan/execute
triple-pattern query layer (ID-space vectorized executor + concurrent
:class:`~repro.kg.service.QueryService`), and graph statistics mirroring
Table I of the paper.
"""

from repro.kg.namespaces import MetaProperty, Namespaces
from repro.kg.triple import Triple
from repro.kg.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    ColumnarBackend,
    GraphBackend,
    Interner,
    SetBackend,
    make_backend,
)
from repro.kg.mmap_backend import MmapBackend
from repro.kg.sharded_backend import ShardedBackend
from repro.kg.cluster import ClusterBackend, shard_split
from repro.kg.store import TripleStore
from repro.kg.wal import WriteAheadLog
from repro.kg.vocab import Vocabulary
from repro.kg.graph import KnowledgeGraph
from repro.kg.planner import QueryPlan, plan_queries, plan_query
from repro.kg.query import PatternQuery, QueryEngine
from repro.kg.executor import ResultCursor
from repro.kg.service import QueryService
from repro.kg.server import KGServer
from repro.kg.client import (
    RemoteClient,
    RemoteCursor,
    RemoteQueryEngine,
    RemoteStore,
    connect,
)
from repro.kg.statistics import GraphStatistics, compute_statistics

__all__ = [
    "MetaProperty",
    "Namespaces",
    "Triple",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ClusterBackend",
    "ColumnarBackend",
    "GraphBackend",
    "Interner",
    "MmapBackend",
    "SetBackend",
    "ShardedBackend",
    "make_backend",
    "TripleStore",
    "Vocabulary",
    "KnowledgeGraph",
    "PatternQuery",
    "QueryEngine",
    "QueryPlan",
    "QueryService",
    "KGServer",
    "RemoteClient",
    "RemoteCursor",
    "RemoteQueryEngine",
    "RemoteStore",
    "ResultCursor",
    "WriteAheadLog",
    "connect",
    "plan_queries",
    "plan_query",
    "shard_split",
    "GraphStatistics",
    "compute_statistics",
]
