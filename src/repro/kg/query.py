"""The triple-pattern query facade.

OpenBG's applications need more than single-pattern lookups: joining
products to their brand's place, walking taxonomy chains, filtering by
attribute values.  :class:`QueryEngine` evaluates conjunctive queries of
triple patterns with named variables (a pragmatic subset of SPARQL basic
graph patterns) against a :class:`~repro.kg.store.TripleStore`.

The engine is a thin facade over a plan/execute pipeline:

* :mod:`repro.kg.planner` normalizes patterns, orders them by batched
  selectivity (one ``count_many`` call) and analyzes variables;
* :mod:`repro.kg.executor` evaluates the plan — by default in **ID
  space**: constants interned once, every pattern fetched as an int64
  block from the backend's CSR indexes, the binding frontier carried as
  numpy id columns through vectorized hash joins, strings materialized
  only at projection.  Backends without an id surface (``set``) and
  queries that bind one variable in both entity and relation positions
  fall back to the original symbol-level backtracking evaluator.

Both paths produce identical binding *sets* (row order is
executor-defined).  For a concurrent, batching front-end over the same
pipeline see :class:`repro.kg.service.QueryService`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.kg.executor import (
    Binding,
    ResultCursor,
    execute_backtracking,
    execute_plans,
    execute_plans_cursors,
    require_id_space,
)
from repro.kg.planner import (
    PatternQuery,
    QueryPlan,
    is_variable,
    plan_queries,
    plan_query,
)
from repro.kg.store import TripleStore

__all__ = [
    "Binding",
    "PatternQuery",
    "QueryEngine",
    "QueryPlan",
    "ResultCursor",
    "is_variable",
]

#: Execution strategies accepted by :meth:`QueryEngine.execute`.
STRATEGIES = ("auto", "id", "backtracking")


class QueryEngine:
    """Evaluates :class:`PatternQuery` objects against a :class:`TripleStore`."""

    def __init__(self, store: TripleStore) -> None:
        self.store = store

    def plan(self, query: PatternQuery, reorder: bool = True) -> QueryPlan:
        """Plan a query without executing it (selectivity-ordered steps).

        Raises :class:`~repro.errors.QueryError` when ``select`` names a
        variable no pattern binds.
        """
        return plan_query(self.store, query, reorder=reorder)

    def execute(self, query: PatternQuery, reorder: bool = True,
                strategy: str = "auto",
                limit: Optional[int] = None) -> List[Binding]:
        """Return all variable bindings satisfying every pattern.

        With ``reorder`` (the default) patterns are evaluated in batched
        ``count_many`` selectivity order — fewest matching triples first
        — which is what keeps conjunctive queries fast on skewed stores;
        the binding *set* is unaffected by ordering.  ``strategy`` picks
        the executor: ``"auto"`` (ID-space when the backend and query
        allow it, else backtracking), ``"id"`` (ID-space or raise
        :class:`~repro.errors.QueryError`), or ``"backtracking"`` (the
        legacy symbol-level evaluator, kept as the parity oracle).
        ``limit`` caps the materialized rows (overriding any cap on the
        query itself); ``limit=0`` raises — see
        :func:`repro.kg.planner.validate_limit`.

        A ``select`` naming a variable that never binds raises
        :class:`~repro.errors.QueryError` instead of silently dropping
        the column from result rows.
        """
        return self.execute_many([query], reorder=reorder, strategy=strategy,
                                 limit=limit)[0]

    def execute_many(self, queries: Sequence[PatternQuery], reorder: bool = True,
                     strategy: str = "auto",
                     limit: Optional[int] = None) -> List[List[Binding]]:
        """Execute a batch of queries with batched planning and fetching.

        Planning issues one ``count_many`` over every pattern of every
        query; execution advances all ID-space-executable plans in
        lockstep so each round's pattern fetches collapse into a single
        ``match_ids_many`` backend call.  This is the entry point
        :class:`~repro.kg.service.QueryService` multiplexes concurrent
        clients onto.  ``limit`` (when given) caps every query in the
        batch.
        """
        queries = self._capped(queries, limit)
        if strategy not in STRATEGIES:
            raise QueryError(
                f"unknown execution strategy {strategy!r} (known: "
                f"{', '.join(STRATEGIES)})")
        plans = plan_queries(self.store, queries, reorder=reorder)
        if strategy == "backtracking":
            return [self._capped_rows(execute_backtracking(self.store, plan),
                                      plan.query.limit) for plan in plans]
        if strategy == "id":
            for plan in plans:
                require_id_space(self.store, plan)
        return execute_plans(self.store, plans)

    def cursor(self, query: PatternQuery, reorder: bool = True,
               limit: Optional[int] = None) -> ResultCursor:
        """Execute a query into a :class:`ResultCursor` instead of a list.

        The joins run to completion (the id frontier is compact), but
        string bindings materialize page by page as the caller
        :meth:`~repro.kg.executor.ResultCursor.fetch`\\ es — the
        streaming form huge result sets want, and what the network
        protocol pages over the wire.
        """
        return self.cursor_many([query], reorder=reorder, limit=limit)[0]

    def cursor_many(self, queries: Sequence[PatternQuery],
                    reorder: bool = True,
                    limit: Optional[int] = None) -> List[ResultCursor]:
        """Batched :meth:`cursor` — one lockstep execution, one cursor each."""
        queries = self._capped(queries, limit)
        plans = plan_queries(self.store, queries, reorder=reorder)
        return execute_plans_cursors(self.store, plans)

    @staticmethod
    def _capped(queries: Sequence[PatternQuery],
                limit: Optional[int]) -> Sequence[PatternQuery]:
        if limit is None:
            return queries
        return [replace(query, limit=limit) for query in queries]

    @staticmethod
    def _capped_rows(rows: List[Binding], limit: Optional[int]) -> List[Binding]:
        return rows if limit is None else rows[:limit]

    # ------------------------------------------------------------------ #
    # convenience helpers used by the applications layer
    # ------------------------------------------------------------------ #
    def one_hop(self, head: str, relation: str) -> List[str]:
        """Tails reachable from ``head`` through ``relation``."""
        return self.store.tails(head, relation)

    def two_hop(self, head: str, relation1: str, relation2: str) -> List[str]:
        """Tails reachable through a 2-step relation path."""
        middles = self.store.tails(head, relation1)
        results = set()
        for tails in self.store.tails_many([(middle, relation2) for middle in middles]):
            results.update(tails)
        return sorted(results)

    def co_occurring_heads(self, relation: str, tail: str,
                           limit: Optional[int] = None) -> List[str]:
        """Heads sharing the given (relation, tail) pair, e.g. same-brand items."""
        heads = self.store.heads(relation, tail)
        return heads if limit is None else heads[:limit]
