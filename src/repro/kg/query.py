"""A small triple-pattern query engine.

OpenBG's applications need more than single-pattern lookups: joining
products to their brand's place, walking taxonomy chains, filtering by
attribute values.  :class:`QueryEngine` evaluates conjunctive queries of
triple patterns with named variables (a pragmatic subset of SPARQL basic
graph patterns) directly against the indexed store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.kg.store import TripleStore
from repro.kg.triple import Triple

Binding = Dict[str, str]


def is_variable(term: str) -> bool:
    """Terms starting with ``?`` are variables; anything else is a constant."""
    return term.startswith("?")


@dataclass(frozen=True)
class PatternQuery:
    """A conjunctive query: a sequence of (head, relation, tail) patterns.

    Each position is either a constant identifier or a ``?variable``.
    ``select`` optionally restricts which variables appear in the results.
    """

    patterns: Tuple[Tuple[str, str, str], ...]
    select: Tuple[str, ...] = ()

    @classmethod
    def from_patterns(cls, patterns: Sequence[Sequence[str]],
                      select: Sequence[str] = ()) -> "PatternQuery":
        """Build a query from plain lists/tuples."""
        normalized = tuple(tuple(pattern) for pattern in patterns)
        for pattern in normalized:
            if len(pattern) != 3:
                raise ValueError(f"pattern must have 3 terms, got {pattern!r}")
        return cls(patterns=normalized, select=tuple(select))

    def variables(self) -> List[str]:
        """All variables mentioned in the query, in first-appearance order."""
        seen: List[str] = []
        for pattern in self.patterns:
            for term in pattern:
                if is_variable(term) and term not in seen:
                    seen.append(term)
        return seen


class QueryEngine:
    """Evaluates :class:`PatternQuery` objects against a :class:`TripleStore`."""

    def __init__(self, store: TripleStore) -> None:
        self.store = store

    def execute(self, query: PatternQuery, reorder: bool = True) -> List[Binding]:
        """Return all variable bindings satisfying every pattern.

        Patterns are evaluated with backtracking; each step substitutes the
        bindings accumulated so far.  With ``reorder`` (the default) the
        engine first orders patterns by backend ``count`` selectivity —
        fewest matching triples first — which is what keeps conjunctive
        queries fast on skewed stores.  The binding *set* is unaffected by
        ordering; pass ``reorder=False`` to evaluate strictly left to right.
        """
        patterns = self._order_by_selectivity(query.patterns) if reorder \
            else query.patterns
        bindings: List[Binding] = [{}]
        for pattern in patterns:
            next_bindings: List[Binding] = []
            for binding in bindings:
                next_bindings.extend(self._extend(binding, pattern))
            bindings = next_bindings
            if not bindings:
                return []
        if query.select:
            projected = []
            seen = set()
            for binding in bindings:
                row = {var: binding[var] for var in query.select if var in binding}
                key = tuple(sorted(row.items()))
                if key not in seen:
                    seen.add(key)
                    projected.append(row)
            return projected
        return bindings

    def _order_by_selectivity(
        self, patterns: Tuple[Tuple[str, str, str], ...]
    ) -> Tuple[Tuple[str, str, str], ...]:
        """Stable-sort patterns by how many triples match their constants.

        Variables are treated as wildcards, so a pattern whose constants
        pin down few triples runs first and prunes the binding frontier
        early.  Counts come from the backend's count fast path — no triple
        objects are materialized.
        """
        if len(patterns) < 2:
            return patterns
        keyed = [
            (self.store.count(
                head=None if is_variable(pattern[0]) else pattern[0],
                relation=None if is_variable(pattern[1]) else pattern[1],
                tail=None if is_variable(pattern[2]) else pattern[2],
            ), index, pattern)
            for index, pattern in enumerate(patterns)
        ]
        keyed.sort(key=lambda item: (item[0], item[1]))
        return tuple(pattern for _count, _index, pattern in keyed)

    def _extend(self, binding: Binding, pattern: Tuple[str, str, str]) -> Iterable[Binding]:
        head, relation, tail = (self._resolve(term, binding) for term in pattern)
        matches = self.store.iter_match(
            head=None if is_variable(head) else head,
            relation=None if is_variable(relation) else relation,
            tail=None if is_variable(tail) else tail,
        )
        for triple in matches:
            extended = dict(binding)
            if not self._bind(extended, head, triple.head):
                continue
            if not self._bind(extended, relation, triple.relation):
                continue
            if not self._bind(extended, tail, triple.tail):
                continue
            yield extended

    @staticmethod
    def _resolve(term: str, binding: Binding) -> str:
        if is_variable(term) and term in binding:
            return binding[term]
        return term

    @staticmethod
    def _bind(binding: Binding, term: str, value: str) -> bool:
        if not is_variable(term):
            return term == value
        existing = binding.get(term)
        if existing is None:
            binding[term] = value
            return True
        return existing == value

    # ------------------------------------------------------------------ #
    # convenience helpers used by the applications layer
    # ------------------------------------------------------------------ #
    def one_hop(self, head: str, relation: str) -> List[str]:
        """Tails reachable from ``head`` through ``relation``."""
        return self.store.tails(head, relation)

    def two_hop(self, head: str, relation1: str, relation2: str) -> List[str]:
        """Tails reachable through a 2-step relation path."""
        middles = self.store.tails(head, relation1)
        results = set()
        for tails in self.store.tails_many([(middle, relation2) for middle in middles]):
            results.update(tails)
        return sorted(results)

    def co_occurring_heads(self, relation: str, tail: str,
                           limit: Optional[int] = None) -> List[str]:
        """Heads sharing the given (relation, tail) pair, e.g. same-brand items."""
        heads = self.store.heads(relation, tail)
        return heads if limit is None else heads[:limit]
