"""Vocabulary: a bidirectional mapping between symbols and integer ids.

KG embedding models and the neural substrate work on integer ids; the
construction pipeline works on string identifiers.  :class:`Vocabulary`
bridges the two with stable, insertion-ordered ids so that a graph built
twice from the same data produces identical id assignments.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List


class Vocabulary:
    """An append-only symbol table with O(1) lookups in both directions."""

    def __init__(self, symbols: Iterable[str] = ()) -> None:
        self._symbol_to_id: Dict[str, int] = {}
        self._id_to_symbol: List[str] = []
        for symbol in symbols:
            self.add(symbol)

    def add(self, symbol: str) -> int:
        """Add ``symbol`` if missing and return its id."""
        existing = self._symbol_to_id.get(symbol)
        if existing is not None:
            return existing
        new_id = len(self._id_to_symbol)
        self._symbol_to_id[symbol] = new_id
        self._id_to_symbol.append(symbol)
        return new_id

    def update(self, symbols: Iterable[str]) -> None:
        """Add every symbol in ``symbols``."""
        for symbol in symbols:
            self.add(symbol)

    def id_of(self, symbol: str) -> int:
        """Return the id of ``symbol``; raise ``KeyError`` if absent."""
        return self._symbol_to_id[symbol]

    def get(self, symbol: str, default: int | None = None) -> int | None:
        """Return the id of ``symbol`` or ``default`` when absent."""
        return self._symbol_to_id.get(symbol, default)

    def symbol_of(self, index: int) -> str:
        """Return the symbol with id ``index``."""
        return self._id_to_symbol[index]

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._symbol_to_id

    def __len__(self) -> int:
        return len(self._id_to_symbol)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_symbol)

    def symbols(self) -> List[str]:
        """Return all symbols in id order (a copy)."""
        return list(self._id_to_symbol)

    def to_dict(self) -> Dict[str, int]:
        """Return a copy of the symbol → id mapping."""
        return dict(self._symbol_to_id)
