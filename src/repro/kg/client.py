"""Remote clients for :class:`~repro.kg.server.KGServer`.

Mirrors the local query API over the wire so applications swap
local↔remote without code changes:

=====================  =======================================
local                  remote
=====================  =======================================
``QueryEngine(store)`` ``RemoteQueryEngine("host:port")``
``.execute(query)``    ``.execute(query)`` (same bindings)
``.cursor(query)``     ``.cursor(query)`` → :class:`RemoteCursor`
``TripleStore``        ``RemoteStore("host:port")``
``.match / .count``    same signatures, same results
=====================  =======================================

One :class:`RemoteClient` is one TCP connection.  Round-trips are
serialized under a lock, so a client object is thread-safe the way a
DB-API connection is — concurrent *throughput* comes from multiple
clients, whose in-flight requests the server coalesces into batched
backend rounds.  Results stream: :class:`RemoteCursor` pages through a
server-side cursor, so iterating a huge result holds one page of
bindings in client memory, never the whole set.

Server-side errors re-raise typed (:class:`~repro.errors.QueryError`,
:class:`~repro.errors.CursorError`, ...); transport damage raises
:class:`~repro.errors.ProtocolError`.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import replace
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import CursorError, ProtocolError
from repro.kg.backend import Pattern
from repro.kg.executor import Binding
from repro.kg.planner import PatternQuery
from repro.kg.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    MAX_FRAME_BYTES,
    TAG_BINARY,
    TAG_JSON,
    BinaryResponseDecoder,
    DecodedBlock,
    decode_json_body,
    encode_frame,
    encode_wire_triples,
    encode_tagged_json,
    error_from_wire,
    read_frame_bytes,
)
from repro.kg.triple import Triple

#: Page size RemoteCursor / iter_match use when the caller does not say.
DEFAULT_PAGE_SIZE = 512

#: Ops a client may silently re-issue on a fresh connection after a
#: transport failure: pure reads whose answer does not depend on how
#: many times the server saw the request.  Writes (``add_many``,
#: ``remove_many``, ``compact``) are NEVER here — a lost response does
#: not mean a lost write, and double-applying is worse than surfacing
#: the error.  ``fetch`` is excluded too: the server advances the
#: cursor per fetch, so a retried fetch could silently skip a page.
#: ``open_cursor``/``open_match_cursor`` are safe — the worst case is
#: an orphaned server-side cursor, which the TTL sweep reaps.
#: ``promote`` is excluded like the writes: it bumps the store
#: generation, and a retried promotion must stay an explicit decision
#: of the routing layer, never a silent transport-level replay.
IDEMPOTENT_OPS = frozenset({
    "ping", "stats", "len", "role", "wal_tail",
    "replication_status", "snapshot_ship",
    "execute", "execute_many",
    "match", "match_many", "match_ids_many",
    "count", "count_many",
    "open_cursor", "open_match_cursor",
})

#: Default extra connection attempts per idempotent call (0 disables
#: reconnection entirely — the pre-reconnect behaviour).
DEFAULT_RECONNECT_ATTEMPTS = 2

#: First sleep before a reconnect attempt; doubles per retry, capped.
RECONNECT_BACKOFF_SECONDS = 0.05


def parse_address(url: str) -> Tuple[str, int]:
    """Parse ``host:port`` (optionally ``kg://`` / ``tcp://`` prefixed;
    IPv6 literals bracketed, ``[::1]:9999``)."""
    if not isinstance(url, str) or not url:
        raise ValueError(f"server address must be a 'host:port' string, "
                         f"got {url!r}")
    stripped = url
    for scheme in ("kg://", "tcp://"):
        if stripped.startswith(scheme):
            stripped = stripped[len(scheme):]
            break
    if stripped.startswith("["):
        host, bracket, port_part = stripped[1:].partition("]")
        if not bracket or not host:
            raise ValueError(
                f"IPv6 server address must look like '[host]:port', "
                f"got {url!r}")
        if not port_part.startswith(":"):
            raise ValueError(
                f"IPv6 server address {url!r} is missing the ':port' "
                f"after the bracket")
        port_text = port_part[1:]
    else:
        host, separator, port_text = stripped.rpartition(":")
        if not separator or not host:
            raise ValueError(
                f"server address must look like 'host:port', got {url!r}")
    if not port_text.isdigit():
        raise ValueError(
            f"server address port must be a number, got {url!r}")
    port = int(port_text)
    if not 0 < port < 65536:
        raise ValueError(
            f"server address port must be in 1..65535, got {port}")
    return host, port


def _wire_query(query: PatternQuery) -> dict:
    message = {"patterns": [list(pattern) for pattern in query.patterns]}
    if query.select:
        message["select"] = list(query.select)
    if query.limit is not None:
        message["limit"] = query.limit
    return message


def _triples(rows) -> List[Triple]:
    if isinstance(rows, DecodedBlock):
        return rows.to_triples()
    return [Triple(head=row[0], relation=row[1], tail=row[2]) for row in rows]


def _bindings(result) -> List[Binding]:
    return result.to_bindings() if isinstance(result, DecodedBlock) \
        else result


class RemoteClient:
    """One connection to a KGServer: framed, serialized request/response.

    ``codec`` selects the wire codec: ``"auto"`` (default) asks the
    server for the binary codec with one ``hello`` exchange and falls
    back to JSON when the server declines or predates negotiation;
    ``"json"`` skips negotiation; ``"binary"`` raises
    :class:`~repro.errors.ProtocolError` unless the server grants it.
    On a binary connection, block results decode zero-copy
    (``np.frombuffer``) into :class:`~repro.kg.protocol.DecodedBlock`
    views whose symbols resolve from a connection-local id→symbol
    cache fed by the server's interner deltas.
    """

    def __init__(self, address: Union[str, Tuple[str, int]], *,
                 timeout: Optional[float] = 60.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 codec: str = "auto",
                 reconnect_attempts: int = DEFAULT_RECONNECT_ATTEMPTS) -> None:
        if codec not in ("auto", CODEC_JSON, CODEC_BINARY):
            raise ValueError(
                f"codec must be 'auto', 'json' or 'binary', got {codec!r}")
        host, port = parse_address(address) if isinstance(address, str) \
            else address
        self.max_frame_bytes = int(max_frame_bytes)
        self._address = (host, port)
        self._timeout = timeout
        self._requested_codec = codec
        self._reconnect_attempts = max(0, int(reconnect_attempts))
        self._lock = threading.Lock()
        self._next_id = 0
        self._user_closed = False
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False
        self._codec = CODEC_JSON
        self._decoder: Optional[BinaryResponseDecoder] = None
        if codec != CODEC_JSON:
            with self._lock:
                self._negotiate(required=(codec == CODEC_BINARY))

    @property
    def codec(self) -> str:
        """The negotiated wire codec: ``"json"`` or ``"binary"``."""
        return self._codec

    def _negotiate(self, required: bool) -> None:
        """Run the hello exchange (caller holds the lock)."""
        try:
            response = self._roundtrip({"op": "hello",
                                        "codecs": [CODEC_BINARY]})
            if not response.get("ok"):
                raise error_from_wire(response.get("error"))
            granted = response.get("result")
        except ProtocolError:
            if required or self._closed:
                # Forced binary, or actual transport damage — either
                # way this is not a silent-JSON situation.
                raise
            # A pre-negotiation server answers hello with a typed
            # "unknown op" error on a perfectly healthy connection:
            # that IS the fallback signal.  Stay on JSON.
            return
        codec = granted.get("codec") if isinstance(granted, dict) else None
        if codec == CODEC_BINARY:
            self._codec = CODEC_BINARY
            self._decoder = BinaryResponseDecoder()
        elif required:
            raise ProtocolError(
                f"server declined the binary codec (granted {codec!r}); "
                f"use codec='auto' to fall back to JSON")

    def _reconnect(self) -> None:
        """Replace a dead socket with a fresh negotiated connection
        (caller holds the lock).  Raises ProtocolError when the server
        is unreachable."""
        try:
            sock = socket.create_connection(self._address,
                                            timeout=self._timeout)
        except OSError as exc:
            raise ProtocolError(
                f"reconnect to {self._address[0]}:{self._address[1]} "
                f"failed: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._closed = False
        # The new connection starts on JSON with an empty symbol cache;
        # re-run negotiation so the codec (and a fresh decoder state)
        # match what the caller originally asked for.
        self._codec = CODEC_JSON
        self._decoder = None
        if self._requested_codec != CODEC_JSON:
            self._negotiate(
                required=(self._requested_codec == CODEC_BINARY))

    def call(self, op: str, **fields):
        """One request/response round-trip; returns the ``result`` field.

        Server-reported failures re-raise as their typed exception;
        anything wrong with the byte stream itself (server gone, send
        or read failure/timeout, response id mismatch) raises
        :class:`~repro.errors.ProtocolError` **and marks the connection
        broken** — after a transport failure the stream may hold a
        stale half-response, so it is never reused.  For ops in
        :data:`IDEMPOTENT_OPS` the client then silently retries on a
        **fresh** connection (with backoff, at most
        ``reconnect_attempts`` extra connections per call); writes are
        never retried — a transport failure on a write surfaces
        immediately, because a lost response does not mean a lost
        write.
        """
        message = {"op": op, **fields}
        retryable = op in IDEMPOTENT_OPS and self._reconnect_attempts > 0
        with self._lock:
            budget = self._reconnect_attempts if retryable else 0
            delay = RECONNECT_BACKOFF_SECONDS
            while True:
                try:
                    if self._closed:
                        if not retryable or self._user_closed or budget <= 0:
                            raise ProtocolError(
                                "client connection is closed")
                        budget -= 1
                        self._reconnect()
                    response = self._roundtrip(dict(message))
                    break
                except ProtocolError:
                    # Only transport failures (which invalidate the
                    # connection) are retried; request-encoding errors
                    # and exhausted budgets propagate.
                    if not retryable or self._user_closed or budget <= 0 \
                            or not self._closed:
                        raise
                    time.sleep(delay)
                    delay = min(delay * 2, 0.5)
        if not response.get("ok"):
            raise error_from_wire(response.get("error"))
        return response.get("result")

    def _roundtrip(self, message: dict) -> dict:
        """Send one request and read its response (caller holds the lock)."""
        if self._closed:
            raise ProtocolError("client connection is closed")
        self._next_id += 1
        message["id"] = self._next_id
        binary = self._codec == CODEC_BINARY
        # Encode before touching the socket: an unencodable or
        # oversized *request* is a caller error, not stream damage.
        frame = encode_tagged_json(message, self.max_frame_bytes) if binary \
            else encode_frame(message, self.max_frame_bytes)
        try:
            self._sock.sendall(frame)
            body = read_frame_bytes(self._sock, self.max_frame_bytes)
            response = None if body is None else self._decode_response(body)
        except ProtocolError:
            self._invalidate()
            raise
        except OSError as exc:
            self._invalidate()
            raise ProtocolError(
                f"transport failure talking to the server: {exc}"
            ) from exc
        if response is None:
            self._invalidate()
            raise ProtocolError("server closed the connection mid-request")
        if response.get("id") != message["id"]:
            self._invalidate()
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {message['id']!r}")
        return response

    def _decode_response(self, body: bytes) -> dict:
        if self._codec != CODEC_BINARY:
            return decode_json_body(body)
        if not body:  # pragma: no cover - zero-length frames never arrive
            raise ProtocolError("empty frame body")
        tag = body[0]
        if tag == TAG_BINARY:
            return self._decoder.decode(body)
        if tag == TAG_JSON:
            return decode_json_body(body[1:])
        raise ProtocolError(
            f"unknown frame tag {tag:#04x} in a binary-codec response")

    def _invalidate(self) -> None:
        """Mark the stream unusable (called under the lock)."""
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close never fails on Linux
            pass

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return self.call("ping") == "pong"

    def stats(self) -> dict:
        """Server-side service/store counters (batching observability)."""
        return self.call("stats")

    def close(self) -> None:
        """Close the connection (idempotent; disables reconnection)."""
        with self._lock:
            self._user_closed = True
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close never fails on Linux
                pass

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def connect(address: Union[str, Tuple[str, int]], *,
            timeout: Optional[float] = 60.0,
            codec: str = "auto") -> RemoteClient:
    """Open a :class:`RemoteClient` to ``host:port``."""
    return RemoteClient(address, timeout=timeout, codec=codec)


class RemoteCursor:
    """A transparent iterator over a server-side cursor.

    Pages of ``page_size`` rows are fetched on demand; only the current
    page is ever held in client memory.  Iterate it, or call
    :meth:`fetch` for explicit pages.  Closing releases the server-side
    state early (exhausted cursors are released by the server TTL
    anyway); closing twice raises :class:`~repro.errors.CursorError`,
    matching the server's cursor table semantics.
    """

    def __init__(self, client: RemoteClient, cursor_id: str,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 as_triples: bool = False) -> None:
        if page_size < 1:
            raise CursorError(
                f"page_size must be a positive integer, got {page_size!r}")
        self._client = client
        self.cursor_id = cursor_id
        self.page_size = int(page_size)
        self._as_triples = as_triples
        self._exhausted = False
        self._closed = False

    @property
    def exhausted(self) -> bool:
        """True once the server reported the final page."""
        return self._exhausted

    def fetch(self, max_rows: Optional[int] = None) -> List:
        """Fetch the next page (at most ``max_rows``, defaulting to the
        cursor's page size; an empty page means exhausted)."""
        if self._closed:
            raise CursorError("cursor is closed")
        if max_rows is None:
            max_rows = self.page_size
        elif not isinstance(max_rows, int) or isinstance(max_rows, bool) \
                or max_rows < 1:
            raise CursorError(
                f"fetch page size must be a positive integer, got {max_rows!r}")
        if self._exhausted:
            return []
        result = self._client.call("fetch", cursor=self.cursor_id,
                                   max_rows=max_rows)
        self._exhausted = bool(result["exhausted"])
        rows = result["rows"]
        if isinstance(rows, DecodedBlock):
            return rows.to_rows()
        return _triples(rows) if self._as_triples else rows

    def fetch_block(self, max_rows: Optional[int] = None):
        """The zero-copy form of :meth:`fetch` on a binary connection:
        the next page as a :class:`~repro.kg.protocol.DecodedBlock`
        (int64 id rows + the connection's symbol caches), for bulk
        consumers that feed arrays onward instead of materializing
        per-row objects.  On a JSON connection — or when the server
        fell back to a materialized cursor — the page comes back as the
        plain row list :meth:`fetch` would return.  Pagination state is
        shared with :meth:`fetch`.
        """
        if self._closed:
            raise CursorError("cursor is closed")
        if max_rows is None:
            max_rows = self.page_size
        elif not isinstance(max_rows, int) or isinstance(max_rows, bool) \
                or max_rows < 1:
            raise CursorError(
                f"fetch page size must be a positive integer, got {max_rows!r}")
        if self._exhausted:
            return []
        result = self._client.call("fetch", cursor=self.cursor_id,
                                   max_rows=max_rows)
        self._exhausted = bool(result["exhausted"])
        return result["rows"]

    def __iter__(self) -> Iterator:
        while not self._exhausted:
            for row in self.fetch():
                yield row

    def close(self) -> None:
        """Release the server-side cursor.  A second close raises."""
        if self._closed:
            raise CursorError("cursor is already closed")
        self._closed = True
        self._client.call("close_cursor", cursor=self.cursor_id)

    def __del__(self) -> None:
        # Abandoned without close(): release the server-side entry now
        # instead of pinning it until the TTL sweep.  Strictly
        # best-effort — if the client is gone, mid-call (never block a
        # finalizer on a lock), or the server unreachable, the TTL
        # still reaps it.
        try:
            if self._closed or self._client._closed:
                return
            self._closed = True
            if not self._client._lock.acquire(blocking=False):
                return
            try:
                self._client._roundtrip({"op": "close_cursor",
                                         "cursor": self.cursor_id})
            finally:
                self._client._lock.release()
        except Exception:
            pass

    def __enter__(self) -> "RemoteCursor":
        return self

    def __exit__(self, *_exc) -> None:
        if not self._closed:
            self.close()


def _shared_client(address_or_client,
                   codec: str = "auto") -> Tuple[RemoteClient, bool]:
    if isinstance(address_or_client, RemoteClient):
        return address_or_client, False
    return RemoteClient(address_or_client, codec=codec), True


class RemoteQueryEngine:
    """The :class:`~repro.kg.query.QueryEngine` API over the wire.

    Construct from a ``host:port`` string (owns the connection) or an
    existing :class:`RemoteClient` (shared; caller closes it).  The
    wire codec is invisible here: bindings come back identical (and in
    the same order) whether the connection negotiated binary or JSON.
    """

    def __init__(self, address_or_client, codec: str = "auto") -> None:
        self.client, self._owns_client = _shared_client(address_or_client,
                                                        codec)

    def execute(self, query: PatternQuery, reorder: bool = True,
                limit: Optional[int] = None) -> List[Binding]:
        """Remote :meth:`QueryEngine.execute`: identical bindings, same order."""
        return self.execute_many([query], reorder=reorder, limit=limit)[0]

    def execute_many(self, queries: Sequence[PatternQuery],
                     reorder: bool = True,
                     limit: Optional[int] = None) -> List[List[Binding]]:
        """Remote :meth:`QueryEngine.execute_many` (one round-trip; the
        server still coalesces the whole batch into batched planning and
        lockstep execution)."""
        encoded = [_wire_query(query if limit is None
                               else replace(query, limit=limit))
                   for query in queries]
        results = self.client.call("execute_many", queries=encoded,
                                   reorder=reorder)
        return [_bindings(result) for result in results]

    def cursor(self, query: PatternQuery, reorder: bool = True,
               limit: Optional[int] = None,
               page_size: int = DEFAULT_PAGE_SIZE) -> RemoteCursor:
        """Stream a query's bindings through a server-side cursor."""
        if limit is not None:
            query = replace(query, limit=limit)
        cursor_id = self.client.call("open_cursor", query=_wire_query(query),
                                     reorder=reorder)
        return RemoteCursor(self.client, cursor_id, page_size=page_size)

    def close(self) -> None:
        if self._owns_client:
            self.client.close()

    def __enter__(self) -> "RemoteQueryEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class RemoteStore:
    """The :class:`~repro.kg.store.TripleStore` query surface over the wire.

    Point lookups only (constants + ``None`` wildcards) — exactly the
    subset :class:`~repro.kg.service.QueryService` serves.  ``sort=True``
    sorts client-side, preserving the store's documented canonical
    ``(head, relation, tail)`` order.

    Writes mirror the local API too: :meth:`add_many` /
    :meth:`remove_many` ship a batch in one round-trip (requests are
    JSON on both codecs) and return the same counts the local store
    would, and :meth:`compact` folds the server's WAL into a fresh
    snapshot.  A server over a read-only snapshot store raises a typed
    :class:`~repro.errors.StorageError` here, not a generic wire error.
    """

    def __init__(self, address_or_client, codec: str = "auto") -> None:
        self.client, self._owns_client = _shared_client(address_or_client,
                                                        codec)

    def match(self, head: Optional[str] = None,
              relation: Optional[str] = None, tail: Optional[str] = None,
              sort: bool = False) -> List[Triple]:
        """Remote :meth:`TripleStore.match` (one round-trip)."""
        triples = _triples(self.client.call("match",
                                            pattern=[head, relation, tail]))
        return sorted(triples) if sort else triples

    def match_many(self, patterns: Sequence[Pattern],
                   sort: bool = False) -> List[List[Triple]]:
        """Remote :meth:`TripleStore.match_many` (one round-trip)."""
        results = self.client.call(
            "match_many", patterns=[list(pattern) for pattern in patterns])
        decoded = [_triples(rows) for rows in results]
        return [sorted(rows) for rows in decoded] if sort else decoded

    def match_many_blocks(self, patterns: Sequence[Pattern]) -> List:
        """Batched point lookups without per-row materialization: on a
        binary connection each result is a
        :class:`~repro.kg.protocol.DecodedBlock` of ``(head, relation,
        tail)`` id rows (decoded zero-copy; symbols resolve from the
        connection cache on demand) — the handoff a scatter/gather
        engine or bulk exporter wants.  On a JSON connection each
        result is the raw ``[head, relation, tail]`` row list.
        """
        return self.client.call(
            "match_many", patterns=[list(pattern) for pattern in patterns])

    def iter_match(self, head: Optional[str] = None,
                   relation: Optional[str] = None,
                   tail: Optional[str] = None,
                   page_size: int = DEFAULT_PAGE_SIZE) -> Iterator[Triple]:
        """Remote :meth:`TripleStore.iter_match` — pages through a
        server-side cursor, holding one page of triples at a time."""
        cursor_id = self.client.call("open_match_cursor",
                                     pattern=[head, relation, tail])
        return iter(RemoteCursor(self.client, cursor_id, page_size=page_size,
                                 as_triples=True))

    def add_many(self, triples: Sequence[Triple]) -> int:
        """Remote :meth:`TripleStore.add_many`: one durable round-trip.

        The whole batch is one server-side write (and, on a live store,
        one fsync'd WAL record): when this returns, every triple is
        applied and recoverable; on an error, none are.  Returns the
        newly-added count, exactly like the local call.
        """
        return self.client.call(
            "add_many", triples=encode_wire_triples(triples))["added"]

    def remove_many(self, triples: Sequence[Triple]) -> int:
        """Remote :meth:`TripleStore.remove_many`; returns the removed
        count.  Same atomicity as :meth:`add_many`."""
        return self.client.call(
            "remove_many", triples=encode_wire_triples(triples))["removed"]

    def compact(self) -> int:
        """Remote :meth:`TripleStore.compact`: fold the server's WAL
        into a new snapshot generation; returns the new generation."""
        return self.client.call("compact")["generation"]

    def count(self, head: Optional[str] = None,
              relation: Optional[str] = None,
              tail: Optional[str] = None) -> int:
        """Remote :meth:`TripleStore.count`."""
        return self.client.call("count", pattern=[head, relation, tail])

    def count_many(self, patterns: Sequence[Pattern]) -> List[int]:
        """Remote :meth:`TripleStore.count_many` (one round-trip)."""
        return self.client.call(
            "count_many", patterns=[list(pattern) for pattern in patterns])

    def __len__(self) -> int:
        return self.client.call("len")

    def close(self) -> None:
        if self._owns_client:
            self.client.close()

    def __enter__(self) -> "RemoteStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
