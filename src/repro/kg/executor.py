"""Query execution: vectorized ID-space joins plus the legacy backtracker.

The counterpart of :mod:`repro.kg.planner`.  Two executors evaluate a
:class:`~repro.kg.planner.QueryPlan`:

* :func:`execute_plan` / :func:`execute_plans` — the **ID-space
  executor**.  Each pattern's constants are interned once; the pattern
  is fetched as one ``(k, 3)`` int64 block from the backend's CSR
  indexes (:meth:`match_ids` / the batched :meth:`match_ids_many`); the
  binding frontier is a set of parallel numpy id columns (one per
  variable) that each step extends with a vectorized hash join —
  factorize the shared-variable key columns, sort one side,
  ``searchsorted`` the other, expand matches with ``repeat``/``cumsum``
  arithmetic.  Strings appear exactly once, at projection.
  ``execute_plans`` runs a batch of plans in lockstep so every round's
  pattern fetches collapse into a single ``match_ids_many`` call (which
  the sharded backend routes per shard).

* :func:`execute_backtracking` — the original symbol-level evaluator
  (one ``iter_match`` round-trip per binding per pattern), kept both as
  the parity reference and as the fallback for backends without an id
  surface (``SetBackend``) and for the rare query whose variable binds
  in both entity and relation positions (``plan.id_space`` False —
  entity and relation ids are different spaces, only symbols compare).

Both executors produce identical binding *sets*; only the row order is
executor-defined (deterministic for a deterministic store either way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CursorError, QueryError
from repro.kg.backend import IdPattern, supports_id_queries
from repro.kg.planner import (
    ENTITY,
    PatternStep,
    QueryPlan,
    is_variable,
)
from repro.kg.store import TripleStore

Binding = Dict[str, str]


# --------------------------------------------------------------------------- #
# legacy symbol-level backtracking executor
# --------------------------------------------------------------------------- #
def execute_backtracking(store: TripleStore, plan: QueryPlan) -> List[Binding]:
    """Evaluate a plan by per-binding backtracking over ``iter_match``.

    This is the seed engine's strategy, word for word: substitute the
    bindings accumulated so far into the next pattern, ask the store for
    matching triples, extend each binding per match.  Kept as the parity
    oracle and the fallback for non-id backends / non-id-space plans.
    """
    bindings: List[Binding] = [{}]
    for step in plan.steps:
        next_bindings: List[Binding] = []
        for binding in bindings:
            next_bindings.extend(_extend(store, binding, step.pattern))
        bindings = next_bindings
        if not bindings:
            return []
    return _project_bindings(bindings, plan.select)


def _extend(store: TripleStore, binding: Binding,
            pattern: Tuple[str, str, str]) -> Iterable[Binding]:
    head, relation, tail = (_substitute(term, binding) for term in pattern)
    matches = store.iter_match(
        head=None if is_variable(head) else head,
        relation=None if is_variable(relation) else relation,
        tail=None if is_variable(tail) else tail,
    )
    for triple in matches:
        extended = dict(binding)
        if not _bind(extended, head, triple.head):
            continue
        if not _bind(extended, relation, triple.relation):
            continue
        if not _bind(extended, tail, triple.tail):
            continue
        yield extended


def _substitute(term: str, binding: Binding) -> str:
    if is_variable(term) and term in binding:
        return binding[term]
    return term


def _bind(binding: Binding, term: str, value: str) -> bool:
    if not is_variable(term):
        return term == value
    existing = binding.get(term)
    if existing is None:
        binding[term] = value
        return True
    return existing == value


def _project_bindings(bindings: List[Binding],
                      select: Tuple[str, ...]) -> List[Binding]:
    if not select:
        return bindings
    projected: List[Binding] = []
    seen = set()
    for binding in bindings:
        row = {var: binding[var] for var in select}
        key = tuple(sorted(row.items()))
        if key not in seen:
            seen.add(key)
            projected.append(row)
    return projected


# --------------------------------------------------------------------------- #
# ID-space executor
# --------------------------------------------------------------------------- #
@dataclass
class _Frontier:
    """The binding frontier: one int64 id column per bound variable.

    ``num_rows`` tracks the row count explicitly so the empty-variable
    start state (one row binding nothing) is representable.
    """

    num_rows: int = 1
    columns: Dict[str, np.ndarray] = field(default_factory=dict)


@dataclass
class _PlanState:
    """Progress of one plan through the lockstep batched execution."""

    plan: QueryPlan
    resolved: List[IdPattern]           # per step, constants interned
    frontier: _Frontier
    step_index: int = 0
    failed: bool = False                # unknown constant or empty join

    def done(self) -> bool:
        return self.failed or self.step_index >= len(self.plan.steps)


def _resolve_constants(backend, plan: QueryPlan) -> Optional[List[IdPattern]]:
    """Intern every step's constants once; ``None`` if any is unknown."""
    entity_lookup = backend.entity_interner.lookup
    relation_lookup = backend.relation_interner.lookup
    resolved: List[IdPattern] = []
    for step in plan.steps:
        ids: List[Optional[int]] = []
        for position, constant in enumerate(step.constants):
            if constant is None:
                ids.append(None)
                continue
            lookup = relation_lookup if position == 1 else entity_lookup
            identifier = lookup(constant)
            if identifier is None:
                return None
            ids.append(identifier)
        resolved.append((ids[0], ids[1], ids[2]))
    return resolved


def _pattern_columns(step: PatternStep,
                     block: np.ndarray) -> Tuple[np.ndarray, Dict[str, int]]:
    """Filter repeated-variable rows; map each variable to its column.

    A variable occurring twice in one pattern (``(?x, r, ?x)``) keeps
    only rows where the occurrences agree; the surviving first position
    becomes the variable's column.
    """
    var_position: Dict[str, int] = {}
    for position, name in step.variables:
        first = var_position.setdefault(name, position)
        if first != position and len(block):
            block = block[block[:, first] == block[:, position]]
    return block, var_position


def _factorize_pair(left: np.ndarray, right: np.ndarray,
                    left_extra: np.ndarray, right_extra: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Combine two key columns into one joint group-id column per side."""
    num_left = len(left)
    pair = np.empty((num_left + len(right), 2), dtype=np.int64)
    pair[:num_left, 0] = left
    pair[:num_left, 1] = left_extra
    pair[num_left:, 0] = right
    pair[num_left:, 1] = right_extra
    _, inverse = np.unique(pair, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)
    return inverse[:num_left], inverse[num_left:]


def _join_indices(left_keys: Sequence[np.ndarray],
                  right_keys: Sequence[np.ndarray]
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Row-index pairs (left_row, right_row) where all key columns match.

    Multi-column keys collapse to one int64 group-id column per side:
    mixed-radix packing (``gid * base + column`` with ``base`` = the
    column's value range, identical on both sides so ids stay
    comparable) while the product of ranges fits int64, falling back to
    pairwise ``np.unique`` factorization over both sides at once beyond
    that.  The right side is then sorted by group id and every left row
    expands to its matching right range via ``searchsorted`` +
    ``repeat``/``cumsum`` arithmetic.  Pure numpy; no Python-level
    per-row work.
    """
    left_gid, right_gid = left_keys[0], right_keys[0]
    for left_extra, right_extra in zip(left_keys[1:], right_keys[1:]):
        base = 1 + max(int(left_extra.max()) if len(left_extra) else 0,
                       int(right_extra.max()) if len(right_extra) else 0)
        widest = max(int(left_gid.max()) if len(left_gid) else 0,
                     int(right_gid.max()) if len(right_gid) else 0)
        if widest < (1 << 62) // base:
            left_gid = left_gid * base + left_extra
            right_gid = right_gid * base + right_extra
        else:  # pragma: no cover - needs ~2^62 distinct key combinations
            left_gid, right_gid = _factorize_pair(left_gid, right_gid,
                                                  left_extra, right_extra)
    order = np.argsort(right_gid, kind="stable")
    sorted_gid = right_gid[order]
    lo = np.searchsorted(sorted_gid, left_gid, side="left")
    hi = np.searchsorted(sorted_gid, left_gid, side="right")
    counts = hi - lo
    total = int(counts.sum())
    left_rows = np.repeat(np.arange(len(left_gid), dtype=np.int64), counts)
    if not total:
        return left_rows, np.zeros(0, dtype=np.int64)
    # right rows: for each left row i, the slice order[lo[i]:hi[i]].
    prefix = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=prefix[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(prefix, counts)
    right_rows = order[np.repeat(lo, counts) + within]
    return left_rows, right_rows


def _advance(state: _PlanState, block: np.ndarray) -> None:
    """Join the current step's matched block into the frontier."""
    step = state.plan.steps[state.step_index]
    state.step_index += 1
    block, var_position = _pattern_columns(step, block)
    frontier = state.frontier
    shared = [name for name in var_position if name in frontier.columns]
    fresh = [name for name in var_position if name not in frontier.columns]
    num_rows, num_matches = frontier.num_rows, len(block)
    if not num_matches or not num_rows:
        state.failed = True
        return
    if shared:
        left_rows, right_rows = _join_indices(
            [frontier.columns[name] for name in shared],
            [block[:, var_position[name]] for name in shared])
    else:
        # No shared variables: cartesian product (the legacy executor
        # does the same — every binding pairs with every match).
        left_rows = np.repeat(np.arange(num_rows, dtype=np.int64), num_matches)
        right_rows = np.tile(np.arange(num_matches, dtype=np.int64), num_rows)
    if not len(left_rows):
        state.failed = True
        return
    columns = {name: column[left_rows]
               for name, column in frontier.columns.items()}
    for name in fresh:
        columns[name] = block[right_rows, var_position[name]]
    state.frontier = _Frontier(num_rows=len(left_rows), columns=columns)


def _unique_rows(stacked: np.ndarray) -> np.ndarray:
    """Deduplicate a (n, k) row block (order: lexicographic by id)."""
    if len(stacked) <= 1:
        return stacked
    order = np.lexsort(stacked.T[::-1])
    stacked = stacked[order]
    keep = np.empty(len(stacked), dtype=bool)
    keep[0] = True
    np.any(stacked[1:] != stacked[:-1], axis=1, out=keep[1:])
    return stacked[keep]


def _stringify_rows(backend, kinds: Sequence[str], names: Sequence[str],
                    rows: np.ndarray) -> List[Binding]:
    """Materialize id rows as string bindings — the only string step."""
    tables = [backend.entity_interner.symbol_table() if kind == "e"
              else backend.relation_interner.symbol_table()
              for kind in kinds]
    return [{name: table[identifier]
             for name, table, identifier in zip(names, tables, row)}
            for row in rows.tolist()]


def _stringify_triples(backend, rows: np.ndarray) -> List["Triple"]:
    """Materialize (head, relation, tail) id rows as :class:`Triple`\\ s."""
    from repro.kg.triple import Triple
    entities = backend.entity_interner.symbol_table()
    relations = backend.relation_interner.symbol_table()
    unchecked = Triple.unchecked
    return [unchecked(entities[h], relations[r], entities[t])
            for h, r, t in rows.tolist()]


@dataclass(frozen=True)
class IdBlock:
    """One page of results in id space — the binary wire codec's unit.

    ``rows`` is a ``(n, k)`` int64 block; ``kinds`` says which interner
    space each column's ids live in (``"e"`` entities, ``"r"``
    relations).  Bindings blocks carry the variable ``names``; triples
    blocks (``triples=True``) are always ``(head, relation, tail)`` and
    ship no names.  The server-side
    :class:`~repro.kg.protocol.BinaryResponseEncoder` consumes these
    attributes directly, so the binary path never stringifies a row.
    """

    names: Tuple[str, ...]
    kinds: Tuple[str, ...]
    rows: np.ndarray
    triples: bool = False

    def __len__(self) -> int:
        return len(self.rows)


class ResultCursor:
    """Pages over one query's results without re-running the query.

    The ID-space executor hands a cursor the **deduplicated id-row
    projection** — a compact ``(n, k)`` int64 block plus the plan it
    came from — and each :meth:`fetch` stringifies only the rows of the
    page it returns, so a huge result set never materializes all its
    binding dicts at once.  Results from the backtracking fallback (and
    degenerate no-variable results) page over an already-built list via
    :meth:`from_list`; either way the paging surface is identical.

    Cursors are single-consumer and not thread-safe;
    :class:`~repro.kg.service.QueryService` serializes access for its
    remote-cursor table.  A query ``limit`` is applied once, at cursor
    creation, so paging happens *within* the cap.
    """

    __slots__ = ("_backend", "_kinds", "_names", "_rows", "_triples",
                 "_position", "_closed")

    def __init__(self, backend, names: Sequence[str],
                 kinds: Sequence[str], rows, *,
                 triples: bool = False) -> None:
        self._backend = backend
        self._names = tuple(names)
        self._kinds = tuple(kinds)           # 'e' / 'r' per column
        self._rows = rows                    # (n, k) int64 block or list
        self._triples = triples
        self._position = 0
        self._closed = False

    @classmethod
    def from_list(cls, items: Sequence) -> "ResultCursor":
        """Wrap pre-materialized results (bindings, triples, rows...)."""
        return cls(None, (), (), list(items))

    @classmethod
    def from_triple_ids(cls, backend, rows: np.ndarray) -> "ResultCursor":
        """Page over a ``(n, 3)`` (head, relation, tail) id block."""
        return cls(backend, (), ("e", "r", "e"), rows, triples=True)

    @property
    def total_rows(self) -> int:
        """How many result rows the cursor covers (limit already applied)."""
        return len(self._rows) if self._rows is not None else 0

    @property
    def position(self) -> int:
        """How many rows have been fetched so far."""
        return self._position

    @property
    def exhausted(self) -> bool:
        """True once every row has been fetched (or the cursor closed)."""
        return self._closed or self._position >= self.total_rows

    def fetch(self, max_rows: int) -> List:
        """Return the next page of at most ``max_rows`` results.

        An empty page means the cursor is exhausted.  ``max_rows`` must
        be positive — a zero/negative page is always a caller bug and
        raises :class:`~repro.errors.CursorError` instead of silently
        spinning forever.
        """
        if self._closed:
            raise CursorError("cursor is closed")
        if not isinstance(max_rows, int) or isinstance(max_rows, bool) \
                or max_rows < 1:
            raise CursorError(
                f"fetch page size must be a positive integer, got {max_rows!r}")
        chunk = self._rows[self._position:self._position + max_rows]
        self._position += len(chunk)
        return self._materialize(chunk)

    def fetch_all(self) -> List:
        """Drain every remaining row in one page (the non-paged path)."""
        if self._closed:
            raise CursorError("cursor is closed")
        chunk = self._rows[self._position:]
        self._position = self.total_rows
        return self._materialize(chunk)

    def _materialize(self, chunk) -> List:
        if not isinstance(chunk, np.ndarray):
            return list(chunk)
        if self._triples:
            return _stringify_triples(self._backend, chunk)
        return _stringify_rows(self._backend, self._kinds, self._names,
                               chunk)

    @property
    def id_backed(self) -> bool:
        """True when pages are available as :class:`IdBlock`\\ s."""
        return isinstance(self._rows, np.ndarray)

    @property
    def block(self) -> Optional[IdBlock]:
        """The cursor's *entire* id-row block, independent of paging state.

        ``None`` for list-backed cursors.  This is what the
        :class:`~repro.kg.service.QueryService` result cache pins: the
        full deduplicated block of a limit-stripped execution, from
        which every per-request limited view is a zero-copy slice.
        """
        if self._closed or not isinstance(self._rows, np.ndarray):
            return None
        return IdBlock(self._names, self._kinds, self._rows,
                       triples=self._triples)

    def fetch_block(self, max_rows: int):
        """The id-space form of :meth:`fetch`: the next page as an
        :class:`IdBlock` when the cursor is id-backed, the materialized
        list otherwise (backtracking fallback / pre-built results).
        Pagination state is shared with :meth:`fetch` — a caller picks
        one form per page, not per cursor.
        """
        if self._closed:
            raise CursorError("cursor is closed")
        if not isinstance(max_rows, int) or isinstance(max_rows, bool) \
                or max_rows < 1:
            raise CursorError(
                f"fetch page size must be a positive integer, got {max_rows!r}")
        chunk = self._rows[self._position:self._position + max_rows]
        self._position += len(chunk)
        if not isinstance(chunk, np.ndarray):
            return list(chunk)
        return IdBlock(self._names, self._kinds, chunk,
                       triples=self._triples)

    def fetch_all_block(self):
        """Drain the remaining rows as one :class:`IdBlock` (or list)."""
        if self._closed:
            raise CursorError("cursor is closed")
        chunk = self._rows[self._position:]
        self._position = self.total_rows
        if not isinstance(chunk, np.ndarray):
            return list(chunk)
        return IdBlock(self._names, self._kinds, chunk,
                       triples=self._triples)

    def close(self) -> None:
        """Release the row block.  Idempotent; later fetches raise."""
        self._closed = True
        self._rows = []

    def __enter__(self) -> "ResultCursor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _project_cursor(backend, plan: QueryPlan,
                    frontier: _Frontier) -> ResultCursor:
    """Build the deduplicated, limit-capped id projection for a plan."""
    names = list(plan.select) if plan.select else list(plan.variables)
    limit = plan.query.limit
    if not names:
        rows = [{}] if frontier.num_rows else []
        return ResultCursor.from_list(rows if limit is None else rows[:limit])
    stacked = np.stack([frontier.columns[name] for name in names], axis=1)
    if plan.select:
        stacked = _unique_rows(stacked)
    if limit is not None:
        stacked = stacked[:limit]
    kinds = ["e" if plan.var_kinds.get(name) == ENTITY else "r"
             for name in names]
    return ResultCursor(backend, names, kinds, stacked)


def execute_plans_cursors(store: TripleStore,
                          plans: Sequence[QueryPlan]) -> List[ResultCursor]:
    """Evaluate a batch of plans into one :class:`ResultCursor` each.

    ID-space-executable plans advance in lockstep: each round gathers
    the current step of every live plan into ONE ``match_ids_many``
    call (shard-routed on the sharded backend), then joins each block
    into its plan's frontier.  Plans the id executor cannot run (no id
    backend, mixed-kind variables) fall back to
    :func:`execute_backtracking` transparently (their cursor pages over
    the materialized list).  Projection is deferred to the cursors: the
    join frontiers are materialized (compact int64 columns), the string
    bindings are not.
    """
    backend = store.backend
    results: List[Optional[ResultCursor]] = [None] * len(plans)
    states: List[Tuple[int, _PlanState]] = []
    for index, plan in enumerate(plans):
        if not plan.id_space or not supports_id_queries(backend):
            rows = execute_backtracking(store, plan)
            if plan.query.limit is not None:
                rows = rows[:plan.query.limit]
            results[index] = ResultCursor.from_list(rows)
            continue
        resolved = _resolve_constants(backend, plan)
        if resolved is None:
            results[index] = ResultCursor.from_list([])
            continue
        states.append((index, _PlanState(plan=plan, resolved=resolved,
                                         frontier=_Frontier())))
    live = [entry for entry in states if not entry[1].done()]
    while live:
        # Dedupe identical id patterns within the round: a batch of
        # related queries (e.g. one per attribute, all sharing a
        # (None, type_id, None) step) fetches each distinct block once.
        requests = [state.resolved[state.step_index] for _index, state in live]
        distinct = list(dict.fromkeys(requests))
        blocks = backend.match_ids_many(distinct)
        by_pattern = dict(zip(distinct, blocks))
        for (_index, state), request in zip(live, requests):
            _advance(state, by_pattern[request])
        live = [entry for entry in live if not entry[1].done()]
    for index, state in states:
        results[index] = ResultCursor.from_list([]) if state.failed \
            else _project_cursor(backend, state.plan, state.frontier)
    return results


def execute_plans(store: TripleStore,
                  plans: Sequence[QueryPlan]) -> List[List[Binding]]:
    """Evaluate a batch of plans, multiplexing pattern fetches.

    The materializing form of :func:`execute_plans_cursors`: every
    plan's cursor is drained in one page.
    """
    return [cursor.fetch_all()
            for cursor in execute_plans_cursors(store, plans)]


def execute_plan(store: TripleStore, plan: QueryPlan) -> List[Binding]:
    """Evaluate one plan with the ID-space executor (see :func:`execute_plans`)."""
    return execute_plans(store, [plan])[0]


def require_id_space(store: TripleStore, plan: QueryPlan) -> None:
    """Raise :class:`QueryError` when the ID-space executor cannot run ``plan``."""
    if not supports_id_queries(store.backend):
        raise QueryError(
            f"backend {type(store.backend).__name__} has no id-level query "
            f"surface; use strategy='auto' or 'backtracking'")
    if not plan.id_space:
        raise QueryError(
            "query binds a variable in both entity and relation positions; "
            "the ID-space executor cannot join across id spaces — use "
            "strategy='auto' or 'backtracking'")
