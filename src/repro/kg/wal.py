"""Append-only write-ahead log and the live (writable) store layout.

The durability contract of the write path: every acked mutation batch is
one **length-prefixed, CRC32-checksummed record** appended to a WAL file
and fsync'd *before* the caller's future resolves.  Recovery is replay:
:meth:`repro.kg.store.TripleStore.open` rebuilds state as *snapshot +
WAL prefix*, where the prefix is every record that survived the crash
intact — a torn or corrupted tail is truncated, never half-applied.

On-disk record format (all little-endian)::

    file   := header record*
    header := magic[8]="RKGWAL1\\n" | u32 version | u64 generation
    record := u32 payload_len | u32 crc32(payload) | payload
    payload:= u64 seq | u8 op | u32 count
              | u32 byte_len * (3*count)          string lengths
              | utf8 bytes                        concatenated strings

``seq`` starts at 1 and must increase by exactly 1 per record; the scan
stops at the first record whose length, checksum or sequence number does
not hold, so replay recovers **exactly the prefix of durably-acked
batches**.  Replay is *not* idempotent (``add x`` then ``remove x`` in
later batches cannot be re-applied out of order), which is why the live
layout below never lets a WAL outlive the snapshot it was logged
against.

Live store layout (one directory)::

    store/
      live.json        atomic pointer: {"magic", "version", "generation"}
      snap-000007/     store-format-v2 snapshot (mmap or sharded layout)
      wal-000007.log   the WAL logged on top of exactly that snapshot

``live.json`` is rewritten via temp-file + ``os.replace`` so exactly one
(snapshot, WAL) *generation pair* is ever current.  Compaction
(:meth:`TripleStore.compact`) writes the next pair first and flips the
pointer last — the commit point — so a crash at any stage leaves either
the old pair (nothing lost) or the new pair (nothing double-applied).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple, Union

from repro.errors import StorageError

#: First bytes of every WAL file.
WAL_MAGIC = b"RKGWAL1\n"
#: Bumped on any incompatible record-format change.
WAL_VERSION = 1

_HEADER = struct.Struct("<8sIQ")   # magic, version, generation
_RECORD = struct.Struct("<II")     # payload length, crc32(payload)
_BATCH = struct.Struct("<QBI")     # seq, op, triple count

#: Mutation opcodes carried in each record.
OP_ADD = 1
OP_REMOVE = 2

#: Hard cap on one record's payload — a torn length prefix must never
#: make the scanner try to allocate gigabytes.
MAX_RECORD_BYTES = 1 << 30

#: The atomic generation pointer of a live store directory.
LIVE_POINTER_FILE = "live.json"
LIVE_MAGIC = "repro-kg-live"
LIVE_VERSION = 1


def snapshot_dir_name(generation: int) -> str:
    """Snapshot directory name of a generation (``snap-000007``)."""
    return f"snap-{generation:06d}"


def wal_file_name(generation: int) -> str:
    """WAL file name of a generation (``wal-000007.log``)."""
    return f"wal-{generation:06d}.log"


def _fsync_directory(directory: "Union[str, Path]") -> None:
    """Best-effort fsync of a directory entry (rename durability)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


# --------------------------------------------------------------------- #
# record codec
# --------------------------------------------------------------------- #
def encode_batch(seq: int, op: int,
                 triples: Sequence[Tuple[str, str, str]]) -> bytes:
    """Encode one mutation batch as a framed, checksummed WAL record."""
    if op not in (OP_ADD, OP_REMOVE):
        raise StorageError(f"unknown WAL opcode {op!r}")
    parts: List[bytes] = []
    lengths = bytearray()
    pack_length = struct.Struct("<I").pack
    for head, relation, tail in triples:
        for term in (head, relation, tail):
            encoded = term.encode("utf-8")
            parts.append(encoded)
            lengths += pack_length(len(encoded))
    payload = (_BATCH.pack(seq, op, len(triples)) + bytes(lengths)
               + b"".join(parts))
    if len(payload) > MAX_RECORD_BYTES:
        raise StorageError(
            f"WAL batch payload is {len(payload)} bytes, over the "
            f"{MAX_RECORD_BYTES}-byte record cap; split the batch")
    return _RECORD.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes, expected_seq: int,
                    end_offset: int) -> "WalBatch | None":
    """Decode one checksum-verified payload; ``None`` when malformed."""
    if len(payload) < _BATCH.size:
        return None
    seq, op, count = _BATCH.unpack_from(payload)
    if seq != expected_seq or op not in (OP_ADD, OP_REMOVE):
        return None
    lengths_end = _BATCH.size + 4 * 3 * count
    if lengths_end > len(payload):
        return None
    lengths = struct.unpack_from(f"<{3 * count}I", payload, _BATCH.size)
    blob = payload[lengths_end:]
    if sum(lengths) != len(blob):
        return None
    strings: List[str] = []
    position = 0
    try:
        for length in lengths:
            strings.append(blob[position:position + length].decode("utf-8"))
            position += length
    except UnicodeDecodeError:
        return None
    triples = tuple(zip(strings[0::3], strings[1::3], strings[2::3]))
    return WalBatch(seq=seq, op=op, triples=triples, end_offset=end_offset)


@dataclass(frozen=True)
class WalBatch:
    """One recovered WAL record: a durably-acked mutation batch."""

    seq: int
    op: int
    triples: Tuple[Tuple[str, str, str], ...]
    #: File offset just past this record — the fault-injection harness
    #: derives its kill points from these boundaries.
    end_offset: int


@dataclass(frozen=True)
class WalScan:
    """Result of scanning a WAL file front to back."""

    generation: int
    batches: List[WalBatch]
    #: Offset just past the last intact record; everything beyond is a
    #: torn/corrupt tail that reopen-for-append truncates away.
    valid_bytes: int
    #: True when trailing bytes past ``valid_bytes`` were ignored.
    damaged: bool


def scan_wal(path: "Union[str, Path]") -> WalScan:
    """Scan a WAL file, recovering the longest intact record prefix.

    A truncated or corrupted *record* ends the scan (prefix recovery);
    a truncated or corrupted *file header* raises
    :class:`~repro.errors.StorageError` — a live pointer naming a WAL
    whose header never made it to disk is real corruption, not a torn
    append.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read WAL {path}: {exc}") from exc
    if len(data) < _HEADER.size:
        raise StorageError(
            f"WAL {path} is {len(data)} bytes, shorter than its "
            f"{_HEADER.size}-byte header")
    magic, version, generation = _HEADER.unpack_from(data)
    if magic != WAL_MAGIC:
        raise StorageError(f"{path} is not a WAL file (magic {magic!r})")
    if version != WAL_VERSION:
        raise StorageError(
            f"WAL {path} has format version {version}, this build reads "
            f"version {WAL_VERSION}")
    batches: List[WalBatch] = []
    offset = _HEADER.size
    next_seq = 1
    while offset + _RECORD.size <= len(data):
        length, checksum = _RECORD.unpack_from(data, offset)
        start = offset + _RECORD.size
        end = start + length
        if length > MAX_RECORD_BYTES or end > len(data):
            break
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            break
        batch = _decode_payload(payload, next_seq, end)
        if batch is None:
            break
        batches.append(batch)
        next_seq += 1
        offset = end
    return WalScan(generation=generation, batches=batches,
                   valid_bytes=offset, damaged=offset < len(data))


def coalesced_ops(
    batches: Sequence[WalBatch],
) -> Iterator[Tuple[int, List[Tuple[str, str, str]]]]:
    """Fold maximal runs of same-op batches into one ``(op, triples)``.

    Replay must preserve add/remove *interleaving* (it is not
    idempotent), but consecutive same-op batches commute with each
    other, so a 100k-batch insert log replays as one bulk ``add_many``
    instead of 100k round trips.
    """
    run_op: "int | None" = None
    run: List[Tuple[str, str, str]] = []
    for batch in batches:
        if batch.op != run_op:
            if run:
                yield run_op, run
            run_op, run = batch.op, []
        run.extend(batch.triples)
    if run:
        yield run_op, run


# --------------------------------------------------------------------- #
# the log itself
# --------------------------------------------------------------------- #
class WriteAheadLog:
    """An append-only, fsync-on-append mutation log.

    ``append`` returns only after the record is flushed (and, unless
    ``fsync=False`` was chosen for benchmarking, fsync'd) — the caller
    may ack the batch the moment ``append`` returns.  One writer per
    file; the service's single dispatcher thread is that writer.
    """

    def __init__(self, path: Path, file, generation: int, next_seq: int,
                 fsync: bool) -> None:
        self.path = path
        self._file = file
        self.generation = generation
        self._next_seq = next_seq
        self.fsync = fsync

    @classmethod
    def create(cls, path: "Union[str, Path]", *, generation: int,
               fsync: bool = True) -> "WriteAheadLog":
        """Create (or truncate) a WAL file with a fresh header."""
        path = Path(path)
        file = open(path, "wb")
        try:
            file.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION, generation))
            file.flush()
            if fsync:
                os.fsync(file.fileno())
        except BaseException:
            file.close()
            raise
        if fsync:
            _fsync_directory(path.parent)
        return cls(path, file, generation, 1, fsync)

    @classmethod
    def open(cls, path: "Union[str, Path]", *,
             fsync: bool = True) -> Tuple["WriteAheadLog", WalScan]:
        """Open for append, truncating any torn tail; returns the scan.

        The returned :class:`WalScan` carries every recovered batch —
        the caller replays them over the snapshot before taking writes.
        """
        path = Path(path)
        scan = scan_wal(path)
        file = open(path, "r+b")
        try:
            if scan.damaged:
                file.truncate(scan.valid_bytes)
                file.flush()
                if fsync:
                    os.fsync(file.fileno())
            file.seek(scan.valid_bytes)
        except BaseException:
            file.close()
            raise
        next_seq = scan.batches[-1].seq + 1 if scan.batches else 1
        return cls(path, file, scan.generation, next_seq, fsync), scan

    def append(self, op: int,
               triples: Sequence[Tuple[str, str, str]]) -> int:
        """Durably append one mutation batch; returns its sequence number."""
        if self._file is None:
            raise StorageError(f"WAL {self.path} is closed")
        record = encode_batch(self._next_seq, op, triples)
        self._file.write(record)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        seq = self._next_seq
        self._next_seq += 1
        return seq

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended batch will carry."""
        return self._next_seq

    @property
    def closed(self) -> bool:
        return self._file is None

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._file is None:
            return
        try:
            self._file.flush()
        finally:
            self._file.close()
            self._file = None


def list_snapshot_files(
        snapshot_dir: "Union[str, Path]") -> List[Tuple[str, int]]:
    """Enumerate a snapshot directory for shipping: ``(path, size)``.

    Paths are ``/``-separated and relative to ``snapshot_dir`` (sharded
    snapshots nest one subdirectory per shard), sorted so a manifest is
    deterministic.  This is the unit the ``snapshot_ship`` wire op pages
    over; only regular files are shipped — a snapshot layout contains
    nothing else.
    """
    snapshot_dir = Path(snapshot_dir)
    if not snapshot_dir.is_dir():
        raise StorageError(f"{snapshot_dir} is not a snapshot directory")
    files: List[Tuple[str, int]] = []
    for path in sorted(snapshot_dir.rglob("*")):
        if path.is_file():
            relative = path.relative_to(snapshot_dir).as_posix()
            files.append((relative, path.stat().st_size))
    return files


# --------------------------------------------------------------------- #
# live-store generation pointer
# --------------------------------------------------------------------- #
def is_live_store(directory: "Union[str, Path]") -> bool:
    """True when ``directory`` carries a live-store generation pointer."""
    return (Path(directory) / LIVE_POINTER_FILE).is_file()


def read_live_pointer(directory: "Union[str, Path]") -> int:
    """Read and validate ``live.json``; returns the current generation."""
    path = Path(directory) / LIVE_POINTER_FILE
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise StorageError(f"cannot read live pointer {path}: {exc}") from exc
    if not isinstance(document, dict) or document.get("magic") != LIVE_MAGIC:
        raise StorageError(f"{path} is not a live-store pointer")
    if document.get("version") != LIVE_VERSION:
        raise StorageError(
            f"live store {path} has layout version "
            f"{document.get('version')!r}, this build reads {LIVE_VERSION}")
    generation = document.get("generation")
    if not isinstance(generation, int) or isinstance(generation, bool) \
            or generation < 0:
        raise StorageError(
            f"live pointer {path} has invalid generation {generation!r}")
    return generation


def write_live_pointer(directory: "Union[str, Path]", generation: int, *,
                       fsync: bool = True) -> None:
    """Atomically point ``directory`` at a generation (temp + rename)."""
    directory = Path(directory)
    document = {"magic": LIVE_MAGIC, "version": LIVE_VERSION,
                "generation": int(generation)}
    temp = directory / (LIVE_POINTER_FILE + ".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(temp, directory / LIVE_POINTER_FILE)
    if fsync:
        _fsync_directory(directory)
