"""Multi-node serving: a coordinator backend over N shard servers.

:class:`ClusterBackend` implements the same
:class:`~repro.kg.backend.GraphBackend` /
:class:`~repro.kg.backend.IdQueryBackend` contract as the in-process
:class:`~repro.kg.sharded_backend.ShardedBackend`, but its "shards" are
remote :class:`~repro.kg.server.KGServer` processes.  Routing is the
exact code the in-process backend uses — the pure functions of
:mod:`repro.kg.routing` — so a triple's owner shard is a property of its
head id and the shard count, never of which side of a socket the
decision is made on.  ``plan_query`` / ``execute_plans`` /
``QueryService`` run unchanged on top: a coordinator process is just
``KGServer(TripleStore(backend=ClusterBackend(...)))``.

Deployment shape
----------------
:func:`shard_split` cuts one saved store into N per-shard **live** store
directories (reusing the hash partitioner), each carrying the FULL
global interner tables.  A shard server over such a directory assigns
exactly the same ids as the coordinator, which both sides verify by
comparing interner *fingerprints* at handshake time
(:func:`~repro.kg.routing.interner_fingerprint`).  While the
fingerprints match — and the coordinator's interners have not grown
since — id-space queries ship raw over the wire (``match_ids_many``,
dense int64 blocks on the binary codec) with zero translation; any
mismatch silently falls back to the string-level ops, which are always
correct because servers resolve strings against their own interners.

Failure story
-------------
Each shard has one leader and optional replicas (followers replaying the
leader's WAL via the ``wal_tail`` op).  Reads round-robin across
leader + replicas; a transport failure drops the broken connection,
counts a reroute and moves to the next endpoint (the underlying
:class:`~repro.kg.client.RemoteClient` already retries idempotent reads
on a fresh connection with backoff).  Only when the leader AND every
replica are unreachable does a read fail — with a typed
:class:`~repro.errors.ShardUnavailableError` naming the shard.  Writes
go to the leader only and are NEVER silently retried once they may have
reached the wire: a lost response does not mean a lost write.  A leader
that stays unreachable (the write provably never left, twice across a
backoff) triggers **automatic promotion**: the most-caught-up replica —
highest replayed WAL seq via ``replication_status`` — receives a
``promote`` op (stop following, compact into a new generation, reopen
writable), the shard's endpoint list is repointed so it is endpoint 0,
and the promoted generation becomes the split-brain floor: a demoted
ex-leader that comes back serving an older generation is refused at
connection time until it rejoins as a follower (``--follow`` against
the new leader re-bootstraps it onto the promoted lineage).

Consistency caveats (documented, by design): replication is
asynchronous, so a replica read may trail the leader by the poll
interval; writes that bypass the coordinator de-synchronize the id
fast path (the fingerprint check catches it and falls back to strings).
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, NoReturn, \
    Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ProtocolError, ShardUnavailableError, StorageError
from repro.kg.backend import (
    GraphBackend,
    IdPattern,
    Interner,
    Pattern,
    _BatchedQueriesMixin,
    supports_id_queries,
)
from repro.kg.client import RemoteClient
from repro.kg.mmap_backend import (
    ENTITY_BLOB_FILE,
    ENTITY_OFFSETS_FILE,
    read_interner_files,
    write_interner_files,
    RELATION_BLOB_FILE,
    RELATION_OFFSETS_FILE,
)
from repro.kg.protocol import DecodedBlock
from repro.kg.routing import (
    BROADCAST as _BROADCAST,
    concat_id_blocks,
    interner_fingerprint,
    merge_frequency_dicts,
    merge_sorted_unique,
    merge_triple_lists,
    scatter_gather,
    shard_of_id,
    shard_of_ids,
)
from repro.kg.sharded_backend import ShardedBackend
from repro.kg.triple import Triple

#: Identifies a :func:`shard_split` output directory's top-level header.
CLUSTER_MAGIC = "repro-kg-cluster"

#: Bump on any incompatible change to the split layout.
CLUSTER_FORMAT_VERSION = 1

#: Name of the top-level split header file.
CLUSTER_HEADER_FILE = "cluster.json"

#: Sleep between full endpoint sweeps of one shard before giving up.
DEFAULT_RETRY_BACKOFF = 0.05

__all__ = [
    "CLUSTER_MAGIC",
    "CLUSTER_FORMAT_VERSION",
    "CLUSTER_HEADER_FILE",
    "ClusterBackend",
    "load_cluster_header",
    "load_cluster_interners",
    "shard_split",
]


# --------------------------------------------------------------------- #
# shard-split: one saved store -> N per-shard live store directories
# --------------------------------------------------------------------- #
def shard_split(store_dir: Union[str, Path], n_shards: int,
                out_dir: Union[str, Path], *,
                delta_threshold: int = 1024) -> List[Path]:
    """Split a saved store into ``n_shards`` per-shard live directories.

    Partitioning reuses :func:`~repro.kg.routing.shard_of_ids` — the
    same rule every sharded backend routes with — over the source's
    global head ids.  Each ``out/shard-K/`` is a generation-0 **live**
    store (snapshot + empty WAL + pointer) whose snapshot is a 1-shard
    sharded layout carrying the FULL global interner tables: a shard
    server opened over it therefore speaks exactly the global id space,
    and a coordinator verifies that via the interner fingerprint.  The
    top level gains a ``cluster.json`` header plus the global interner
    files so :meth:`ClusterBackend.open` can load its interners without
    touching any shard.  Returns the per-shard directories in shard
    order.
    """
    from repro.kg.store import TripleStore
    from repro.kg.wal import (WriteAheadLog, snapshot_dir_name,
                              wal_file_name, write_live_pointer)

    n_shards = int(n_shards)
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    source = TripleStore.open(store_dir)
    try:
        backend = source.backend
        if not supports_id_queries(backend):
            raise StorageError(
                f"shard-split needs an id-capable source store, got "
                f"backend {source.backend_name!r}")
        entity_interner = backend.entity_interner
        relation_interner = backend.relation_interner
        rows = backend.match_ids(None, None, None)
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        owners = shard_of_ids(rows[:, 0], n_shards) if len(rows) \
            else np.zeros(0, dtype=np.int64)
        shard_dirs: List[Path] = []
        for index in range(n_shards):
            part = ShardedBackend(1, delta_threshold=delta_threshold)
            part.entity_interner = entity_interner
            part.relation_interner = relation_interner
            part._shards = [part._new_shard()]
            block = rows[owners == index]
            if len(block):
                part._shards[0].bulk_load_ids(block)
            shard_dir = out / f"shard-{index}"
            part.save(shard_dir / snapshot_dir_name(0))
            WriteAheadLog.create(shard_dir / wal_file_name(0),
                                 generation=0).close()
            write_live_pointer(shard_dir, 0)
            shard_dirs.append(shard_dir)
        entity_blob_bytes = write_interner_files(
            entity_interner, out, ENTITY_OFFSETS_FILE, ENTITY_BLOB_FILE)
        relation_blob_bytes = write_interner_files(
            relation_interner, out, RELATION_OFFSETS_FILE,
            RELATION_BLOB_FILE)
        header = {
            "magic": CLUSTER_MAGIC,
            "version": CLUSTER_FORMAT_VERSION,
            "n_shards": n_shards,
            "num_entities": len(entity_interner),
            "num_relations": len(relation_interner),
            "entity_blob_bytes": entity_blob_bytes,
            "relation_blob_bytes": relation_blob_bytes,
            "triples": int(len(rows)),
        }
        header_tmp = out / (CLUSTER_HEADER_FILE + ".tmp")
        header_tmp.write_text(json.dumps(header, indent=1),
                              encoding="utf-8")
        header_tmp.replace(out / CLUSTER_HEADER_FILE)
        return shard_dirs
    finally:
        source.close()


def load_cluster_header(directory: Union[str, Path]) -> dict:
    """Read and validate a split directory's ``cluster.json`` header."""
    path = Path(directory) / CLUSTER_HEADER_FILE
    if not path.is_file():
        raise StorageError(
            f"{directory}: missing {CLUSTER_HEADER_FILE} — not a "
            f"shard-split output directory")
    try:
        header = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"{path}: unreadable header: {exc}") from exc
    if not isinstance(header, dict) or header.get("magic") != CLUSTER_MAGIC:
        raise StorageError(f"{path}: bad magic — not a cluster header")
    if header.get("version") != CLUSTER_FORMAT_VERSION:
        raise StorageError(
            f"{directory}: cluster format version mismatch — directory "
            f"has {header.get('version')!r}, this build reads "
            f"{CLUSTER_FORMAT_VERSION}")
    for key in ("n_shards", "num_entities", "num_relations"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            raise StorageError(
                f"{directory}: header field {key!r} is invalid")
    if header["n_shards"] < 1:
        raise StorageError(
            f"{directory}: header field 'n_shards' is invalid")
    return header


def load_cluster_interners(
        directory: Union[str, Path]) -> Tuple[dict, Interner, Interner]:
    """Load the global interner pair a split directory carries."""
    directory = Path(directory)
    header = load_cluster_header(directory)
    entity_interner = read_interner_files(
        directory, ENTITY_OFFSETS_FILE, ENTITY_BLOB_FILE,
        header["num_entities"])
    relation_interner = read_interner_files(
        directory, RELATION_OFFSETS_FILE, RELATION_BLOB_FILE,
        header["num_relations"])
    return header, entity_interner, relation_interner


# --------------------------------------------------------------------- #
# per-shard session: leader + replicas, round-robin reads, failover
# --------------------------------------------------------------------- #
class _ShardSession:
    """Connections and failover state for ONE shard's endpoints.

    Endpoint 0 is the leader; the rest are replicas.  Reads round-robin
    over all endpoints and fail over: a transport failure closes the
    broken connection and moves to the next endpoint (counted as a
    reroute), sweeping all endpoints twice with a backoff in between
    before raising :class:`~repro.errors.ShardUnavailableError`.
    Writes pin to the leader, and a write is never *silently* re-sent
    once it may have reached the wire; a leader that stays dead past
    the confirming retry triggers the promotion protocol
    (:meth:`_promote_replica`), after which the most-caught-up replica
    is endpoint 0.  Server-side *typed* errors (``QueryError``,
    ``StorageError``, ...) are not failover events — they propagate.
    """

    def __init__(self, index: int, leader: str, replicas: Sequence[str],
                 *, codec: str = "auto", timeout: Optional[float] = 30.0,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF) -> None:
        self.index = index
        self.leader = leader
        self.addresses: List[str] = [leader] + list(replicas)
        self.codec = codec
        self.timeout = timeout
        self.retry_backoff = float(retry_backoff)
        self._clients: List[Optional[RemoteClient]] = \
            [None] * len(self.addresses)
        self._rr = 0
        self._counter_lock = threading.Lock()
        self._promote_lock = threading.Lock()
        #: The split-brain fence: once a replica is promoted at
        #: generation G, any endpoint serving an older generation is a
        #: stale ex-leader and is refused at connection time until it
        #: re-bootstraps (``None`` = no promotion yet, no gate).
        self.min_generation: Optional[int] = None
        self.counters: Dict[str, int] = {
            "requests": 0, "retries": 0, "reroutes": 0,
            "leader_reads": 0, "replica_reads": 0,
            "writes": 0, "failures": 0, "promotions": 0,
        }
        #: True when every endpoint's interner fingerprint matched the
        #: coordinator's at handshake time (enables the raw-id path).
        self.id_space_matched = False

    def _count(self, key: str, amount: int = 1) -> None:
        with self._counter_lock:
            self.counters[key] += amount

    def _ensure_client(self, endpoint: int) -> RemoteClient:
        """The endpoint's connection, created (and gated) on demand."""
        client = self._clients[endpoint]
        if client is None:
            client = RemoteClient(self.addresses[endpoint],
                                  codec=self.codec, timeout=self.timeout)
            self._clients[endpoint] = client
            self._check_generation(endpoint, client)
        return client

    def _check_generation(self, endpoint: int, client: RemoteClient) -> None:
        """Refuse fresh connections to pre-promotion stale ex-leaders.

        Split-brain rejection rule: after a promotion recorded
        ``min_generation`` = G, an endpoint serving generation < G is
        the dead ex-leader come back (or a replica that has not
        re-bootstrapped yet) — serving reads from it could resurrect
        pre-promotion state, and routing writes to it would fork the
        shard.  Probing only at connection time keeps the per-call hot
        path untouched: a *live* connection was either established
        before the promotion (to a then-healthy endpoint) or already
        passed the gate.
        """
        floor = self.min_generation
        if floor is None:
            return
        try:
            info = client.call("role")
        except (ProtocolError, OSError):
            self._drop(endpoint)
            raise
        generation = info.get("generation") if isinstance(info, dict) \
            else None
        if not isinstance(generation, int) or generation < floor:
            self._drop(endpoint)
            raise ProtocolError(
                f"shard {self.index} endpoint {self.addresses[endpoint]} "
                f"serves generation {generation!r}, older than the "
                f"promotion generation {floor} — a stale ex-leader must "
                f"rejoin as a follower (restart it with --follow pointing "
                f"at the current leader) before it serves again")

    def _call(self, endpoint: int, op: str, fields: dict):
        return self._ensure_client(endpoint).call(op, **fields)

    def _drop(self, endpoint: int) -> None:
        client = self._clients[endpoint]
        self._clients[endpoint] = None
        if client is not None:
            try:
                client.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass

    def read_call(self, op: str, **fields):
        """One read, rerouted across endpoints until someone answers."""
        self._count("requests")
        n = len(self.addresses)
        self._rr += 1
        start = self._rr % n
        last_error: Optional[BaseException] = None
        for sweep in range(2):
            if sweep:
                self._count("retries")
                time.sleep(self.retry_backoff)
            for step in range(n):
                endpoint = (start + step) % n
                try:
                    result = self._call(endpoint, op, fields)
                except (ProtocolError, OSError) as exc:
                    last_error = exc
                    self._drop(endpoint)
                    self._count("reroutes")
                    continue
                self._count("leader_reads" if endpoint == 0
                            else "replica_reads")
                return result
        self._count("failures")
        raise ShardUnavailableError(
            f"shard {self.index} is unavailable: leader and every replica "
            f"unreachable ({', '.join(self.addresses)}); last error: "
            f"{last_error}", shard_index=self.index)

    def _attempt_write(self, op: str, fields: dict):
        """One leader write attempt, classified by delivery certainty.

        Returns ``("ok", result)``, ``("undelivered", exc)`` when the
        request *provably* never left this process (connecting raised,
        or the generation gate refused the endpoint before anything was
        sent), or ``("unknown", exc)`` when the failure happened after a
        connection existed — the leader may or may not have applied the
        write.  Only "undelivered" writes are ever re-sent.
        """
        try:
            client = self._ensure_client(0)
        except (ProtocolError, OSError) as exc:
            self._drop(0)
            return ("undelivered", exc)
        try:
            return ("ok", client.call(op, **fields))
        except (ProtocolError, OSError) as exc:
            self._drop(0)
            return ("unknown", exc)

    def _leader_alive(self) -> bool:
        """Probe endpoint 0 on a dedicated connection; True if it answers."""
        try:
            with RemoteClient(self.addresses[0], codec="json",
                              timeout=self.timeout) as probe:
                probe.call("role")
            return True
        except (ProtocolError, OSError):
            return False

    def _fail_write(self, op: str, exc: BaseException, *,
                    promoted: bool) -> NoReturn:
        self._count("failures")
        if promoted:
            raise ShardUnavailableError(
                f"shard {self.index} write {op} failed: {exc} (a replica "
                f"was promoted to leader at {self.leader}; the outcome of "
                f"THIS write is unknown — verify before resubmitting, "
                f"later writes route to the new leader)",
                shard_index=self.index) from exc
        raise ShardUnavailableError(
            f"shard {self.index} leader {self.leader} failed during "
            f"{op}: {exc} (writes are never retried once they may have "
            f"reached the wire, and no replica could be promoted — "
            f"verify the leader state before resubmitting)",
            shard_index=self.index) from exc

    def write_call(self, op: str, **fields):
        """One write, leader-only; re-sent only while provably undelivered.

        A write that *may* have reached the wire is never replayed —
        double-applying ``add``/``remove`` batches would corrupt the
        replica WAL seq lockstep.  A write that provably never left
        (connect refused twice across a backoff) marks the leader dead:
        the most-caught-up replica is promoted and the same bytes are
        issued there, still exactly-once.  A mid-flight failure probes
        the leader — a dead one still triggers promotion so *later*
        writes succeed, but the in-flight write surfaces as unknown.
        """
        self._count("requests")
        self._count("writes")
        outcome, payload = self._attempt_write(op, fields)
        if outcome == "ok":
            return payload
        if outcome == "undelivered":
            # Provably never sent: one counted retry after a backoff is
            # exactly-once safe and absorbs a leader restart blip.
            self._count("retries")
            time.sleep(self.retry_backoff)
            outcome, payload = self._attempt_write(op, fields)
            if outcome == "ok":
                return payload
            if outcome == "undelivered":
                if self._promote_replica():
                    try:
                        return self._call(0, op, fields)
                    except (ProtocolError, OSError) as exc:
                        self._drop(0)
                        self._fail_write(op, exc, promoted=True)
                self._fail_write(op, payload, promoted=False)
            self._fail_write(op, payload, promoted=False)
        # Mid-flight failure on the first attempt.  Distinguish "leader
        # hiccuped" (connection churn, it still answers) from "leader is
        # gone": only the latter elects a replacement, and even then the
        # failed write is surfaced, never replayed.
        time.sleep(self.retry_backoff)
        if self._leader_alive():
            self._fail_write(op, payload, promoted=False)
        promoted = self._promote_replica()
        self._fail_write(op, payload, promoted=promoted)

    def _promote_replica(self) -> bool:
        """Elect and promote the most-caught-up replica to shard leader.

        Candidates are ranked by replayed WAL seq (``replication_status``
        → ``applied_seq``), ties broken toward the lowest endpoint
        index; the winner gets a ``promote`` call and becomes endpoint 0
        via :meth:`_repoint`.  Serialized under ``_promote_lock`` so
        concurrent failing writes elect exactly once: a loser of the
        lock race re-checks whether a promotion already happened and the
        new leader answers before starting its own election.  Returns
        True when endpoint 0 is a freshly (or already) promoted leader.
        """
        with self._promote_lock:
            if self.min_generation is not None and self._leader_alive():
                return True
            candidates = []
            for endpoint in range(1, len(self.addresses)):
                try:
                    with RemoteClient(self.addresses[endpoint],
                                      codec="json",
                                      timeout=self.timeout) as probe:
                        status = probe.call("replication_status")
                except (ProtocolError, OSError):
                    continue
                if not isinstance(status, dict):
                    continue
                applied = status.get("applied_seq")
                if not isinstance(applied, int):
                    continue
                candidates.append((applied, -endpoint))
            for applied, neg_endpoint in sorted(candidates, reverse=True):
                endpoint = -neg_endpoint
                try:
                    with RemoteClient(self.addresses[endpoint],
                                      codec="json",
                                      timeout=self.timeout) as probe:
                        result = probe.call("promote")
                except (ProtocolError, OSError):
                    continue
                generation = result.get("generation") \
                    if isinstance(result, dict) else None
                self._repoint(
                    endpoint,
                    generation if isinstance(generation, int) else None)
                self._count("promotions")
                return True
            return False

    def _repoint(self, endpoint: int, generation: Optional[int]) -> None:
        """Make ``endpoint`` the shard's leader slot (index 0).

        The address/client lists are reordered in one assignment each
        (their length never changes, so a concurrent read sweeping the
        endpoints at worst reroutes once), the demoted ex-leader's dead
        connection is dropped, and the promoted store's generation is
        recorded as the split-brain floor for the connection-time gate.
        """
        self._drop(0)
        self._drop(endpoint)
        order = [endpoint] + [i for i in range(len(self.addresses))
                              if i != endpoint]
        self.addresses = [self.addresses[i] for i in order]
        self._clients = [self._clients[i] for i in order]
        self.leader = self.addresses[0]
        if generation is not None:
            self.min_generation = generation

    def stats_probe(self) -> Optional[dict]:
        """Best-effort ``stats`` read from whichever endpoint answers.

        Deliberately OUTSIDE the failover machinery: no counter is
        bumped (an observability poll must not skew the request/reroute
        counters tests and dashboards reason about), only one sweep is
        made with no backoff sleep, and a dedicated short-lived
        connection is used so a worker-thread stats call never shares a
        socket with the dispatcher's in-flight reads.  ``None`` when no
        endpoint answers.
        """
        for address in self.addresses:
            try:
                with RemoteClient(address, codec="json",
                                  timeout=self.timeout) as client:
                    result = client.call("stats")
            except (ProtocolError, OSError):
                continue
            if isinstance(result, dict):
                return result
        return None

    def handshake(self, coordinator_fingerprint: Optional[str]) -> None:
        """Probe every endpoint's ``role`` and gate the raw-id path."""
        fingerprints: List[Optional[str]] = []
        for endpoint in range(len(self.addresses)):
            try:
                info = self._call(endpoint, "role", {})
            except (ProtocolError, OSError):
                self._drop(endpoint)
                fingerprints.append(None)
                continue
            fingerprints.append(info.get("fingerprint")
                                if isinstance(info, dict) else None)
        self.id_space_matched = (
            coordinator_fingerprint is not None
            and all(fp == coordinator_fingerprint for fp in fingerprints))

    def close(self) -> None:
        for endpoint in range(len(self.addresses)):
            self._drop(endpoint)


def _decode_triples(rows) -> List[Triple]:
    """One wire ``match`` result to triples (either codec)."""
    if isinstance(rows, DecodedBlock):
        return rows.to_triples()
    return [Triple.unchecked(head, relation, tail)
            for head, relation, tail in rows]


def _decode_id_rows(item) -> np.ndarray:
    """One wire ``match_ids_many`` result to a ``(k, 3)`` int64 block."""
    if isinstance(item, DecodedBlock):
        return np.asarray(item.rows, dtype=np.int64).reshape(-1, 3)
    if not item:
        return np.zeros((0, 3), dtype=np.int64)
    return np.asarray(item, dtype=np.int64).reshape(-1, 3)


_EMPTY_BLOCK = lambda: np.zeros((0, 3), dtype=np.int64)  # noqa: E731


# --------------------------------------------------------------------- #
# the coordinator backend
# --------------------------------------------------------------------- #
class ClusterBackend(_BatchedQueriesMixin):
    """A :class:`GraphBackend` whose shards are remote KGServer processes.

    ``shards`` lists the leader ``host:port`` of every shard in shard
    order; ``replicas`` optionally maps a shard index to its replica
    addresses.  The coordinator owns an interner pair (normally loaded
    from the :func:`shard_split` output via :meth:`open`) that assigns
    the global ids used for routing; every batched operation is ONE
    wire call per touched shard, run concurrently over a persistent
    thread pool (wire I/O releases the GIL).

    The backend satisfies both the string-level ``GraphBackend``
    protocol and the ``IdQueryBackend`` id surface, so the planner and
    the lockstep executor treat it exactly like a local
    :class:`~repro.kg.sharded_backend.ShardedBackend` — including
    bit-identical result ordering, because per-shard results concatenate
    in shard-index order on both sides of the deployment boundary.
    """

    name = "cluster"

    def __init__(self, shards: Sequence[str], *,
                 replicas: Optional[Mapping[int, Sequence[str]]] = None,
                 codec: str = "auto", timeout: Optional[float] = 30.0,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 entity_interner: Optional[Interner] = None,
                 relation_interner: Optional[Interner] = None,
                 handshake: bool = True) -> None:
        if not shards:
            raise ValueError("a cluster needs at least one shard server")
        replicas = dict(replicas or {})
        unknown = [index for index in replicas
                   if not 0 <= index < len(shards)]
        if unknown:
            raise ValueError(
                f"replica map names shard indexes {unknown} but there "
                f"are only {len(shards)} shards")
        self.n_shards = len(shards)
        self.entity_interner = entity_interner \
            if entity_interner is not None else Interner()
        self.relation_interner = relation_interner \
            if relation_interner is not None else Interner()
        # Resources are acquired under a guard: a handshake (or pool
        # creation) that raises mid-__init__ must not leak the thread
        # pool or any connection the sessions already opened — the
        # caller never gets an object to close().
        self._sessions: List[_ShardSession] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._fast_lengths: Optional[Tuple[int, int]] = None
        self._closed = False
        try:
            self._sessions = [
                _ShardSession(index, address, replicas.get(index, ()),
                              codec=codec, timeout=timeout,
                              retry_backoff=retry_backoff)
                for index, address in enumerate(shards)
            ]
            self._pool = ThreadPoolExecutor(
                max_workers=max(2, self.n_shards),
                thread_name_prefix="kg-cluster")
            if handshake:
                self.refresh_handshake()
        except BaseException:
            self._dispose()
            raise

    @classmethod
    def open(cls, directory: Union[str, Path], shards: Sequence[str],
             **kwargs) -> "ClusterBackend":
        """Connect to a cluster whose stores came from :func:`shard_split`.

        Loads the coordinator's interner pair from the split
        directory's top-level tables (so routing ids match what the
        shard servers carry) and validates the shard count against the
        ``cluster.json`` header.
        """
        header, entity_interner, relation_interner = \
            load_cluster_interners(directory)
        if len(shards) != header["n_shards"]:
            raise StorageError(
                f"{directory} was split into {header['n_shards']} shards "
                f"but {len(shards)} shard servers were given")
        return cls(shards, entity_interner=entity_interner,
                   relation_interner=relation_interner, **kwargs)

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def refresh_handshake(self) -> None:
        """(Re-)probe every endpoint's role and re-gate the id path."""
        fingerprint = interner_fingerprint(self.entity_interner,
                                           self.relation_interner)
        for session in self._sessions:
            session.handshake(fingerprint)
        self._fast_lengths = (len(self.entity_interner),
                              len(self.relation_interner))

    def _fast_id_path(self) -> bool:
        """True while raw coordinator ids are valid on every shard."""
        return (self._fast_lengths == (len(self.entity_interner),
                                       len(self.relation_interner))
                and all(session.id_space_matched
                        for session in self._sessions))

    def _run(self, thunks: Sequence, parallel: bool = True) -> List:
        """Run per-shard jobs concurrently, results in submission order.

        Unlike the in-process backend, the jobs here are dominated by
        socket waits, so concurrency pays off regardless of batch size
        — the ``parallel`` hint from the shared skeleton is ignored.
        """
        if len(thunks) <= 1:
            return [thunk() for thunk in thunks]
        return [future.result()
                for future in [self._pool.submit(thunk)
                               for thunk in thunks]]

    def _scatter(self, items: Sequence, *, classify, empty, shard_call,
                 broadcast_call=None, merge=None) -> List:
        return scatter_gather(
            items, n_shards=self.n_shards, classify=classify, empty=empty,
            shard_call=shard_call, broadcast_call=broadcast_call,
            merge=merge, run=self._run)

    def _classify_head(self, head: Optional[str]):
        if head is None:
            return _BROADCAST
        head_id = self.entity_interner.lookup(head)
        return None if head_id is None else shard_of_id(head_id,
                                                        self.n_shards)

    # ------------------------------------------------------------------ #
    # mutation — leader-only, routed exactly like ShardedBackend
    # ------------------------------------------------------------------ #
    def add(self, head: str, relation: str, tail: str) -> bool:
        return self.add_many([Triple(head, relation, tail)]) > 0

    def add_many(self, triples: Iterable[Triple]) -> int:
        """Intern locally in first-appearance order (identical to the
        in-process backend, so routing ids match a same-order local
        load), partition by head id, ship ONE ``add_many`` per touched
        shard leader.  Per-shard batches apply atomically; there is no
        cross-shard transaction — a failed shard raises
        :class:`~repro.errors.ShardUnavailableError` after the others
        may have applied, exactly like a crashed in-process bulk load.
        """
        items = list(triples)
        if not items:
            return 0
        intern_entity = self.entity_interner.intern
        intern_relation = self.relation_interner.intern

        def id_components() -> Iterator[int]:
            for triple in items:
                head, relation, tail = triple.head, triple.relation, \
                    triple.tail
                if not (head and relation and tail):
                    raise ValueError(
                        f"triple components must be non-empty, got "
                        f"({head!r}, {relation!r}, {tail!r})")
                yield intern_entity(head)
                yield intern_relation(relation)
                yield intern_entity(tail)

        rows = np.fromiter(id_components(),
                           dtype=np.int64).reshape(-1, 3)
        owners = shard_of_ids(rows[:, 0], self.n_shards)
        grouped: Dict[int, List[List[str]]] = {}
        for triple, owner in zip(items, owners.tolist()):
            grouped.setdefault(owner, []).append(
                [triple.head, triple.relation, triple.tail])
        results = self._run([
            (lambda index=index, group=group:
             self._sessions[index].write_call("add_many", triples=group))
            for index, group in sorted(grouped.items())
        ])
        return sum(result["added"] for result in results)

    def discard(self, head: str, relation: str, tail: str) -> bool:
        return self.discard_many([Triple.unchecked(head, relation,
                                                   tail)]) > 0

    def discard_many(self, triples: Iterable[Triple]) -> int:
        lookup = self.entity_interner.lookup
        grouped: Dict[int, List[List[str]]] = {}
        for triple in triples:
            head_id = lookup(triple.head)
            if head_id is None:
                continue
            grouped.setdefault(shard_of_id(head_id, self.n_shards),
                               []).append(
                [triple.head, triple.relation, triple.tail])
        if not grouped:
            return 0
        results = self._run([
            (lambda index=index, group=group:
             self._sessions[index].write_call("remove_many",
                                              triples=group))
            for index, group in sorted(grouped.items())
        ])
        return sum(result["removed"] for result in results)

    def clone_empty(self) -> "GraphBackend":
        """An empty IN-PROCESS equivalent (same shard count).

        A copy of a distributed store materializes locally — cloning N
        empty remote servers is not this layer's call to make.
        """
        return ShardedBackend(self.n_shards)

    # ------------------------------------------------------------------ #
    # string-level queries
    # ------------------------------------------------------------------ #
    def contains(self, head: str, relation: str, tail: str) -> bool:
        where = self._classify_head(head)
        if where is None:
            return False
        return self._sessions[where].read_call(
            "count", pattern=[head, relation, tail]) > 0

    def __len__(self) -> int:
        return sum(self._run([
            (lambda session=session: session.read_call("len"))
            for session in self._sessions]))

    def match_many(self, patterns: Sequence[Pattern],
                   sort: bool = False) -> List[List[Triple]]:
        def shard_call(index: int, group: List[Pattern]) -> List[List[Triple]]:
            results = self._sessions[index].read_call(
                "match_many", patterns=[list(p) for p in group])
            decoded = [_decode_triples(rows) for rows in results]
            return [sorted(rows) for rows in decoded] if sort else decoded

        def broadcast_call(index: int,
                           group: List[Pattern]) -> List[List[Triple]]:
            # Per-shard sorting would be thrown away by the merge.
            results = self._sessions[index].read_call(
                "match_many", patterns=[list(p) for p in group])
            return [_decode_triples(rows) for rows in results]

        return self._scatter(
            patterns,
            classify=lambda pattern: self._classify_head(pattern[0]),
            empty=list,
            shard_call=shard_call,
            broadcast_call=broadcast_call,
            merge=lambda parts: merge_triple_lists(parts, sort=sort))

    def match(self, head: Optional[str] = None,
              relation: Optional[str] = None, tail: Optional[str] = None,
              sort: bool = False) -> List[Triple]:
        return self.match_many([(head, relation, tail)], sort=sort)[0]

    def iter_match(self, head: Optional[str] = None,
                   relation: Optional[str] = None,
                   tail: Optional[str] = None) -> Iterator[Triple]:
        yield from self.match(head, relation, tail)

    def iter_triples(self) -> Iterator[Triple]:
        yield from self.match(None, None, None)

    def count_many(self, patterns: Sequence[Pattern]) -> List[int]:
        return self._scatter(
            patterns,
            classify=lambda pattern: self._classify_head(pattern[0]),
            empty=lambda: 0,
            shard_call=lambda index, group: self._sessions[index].read_call(
                "count_many", patterns=[list(p) for p in group]),
            merge=sum)

    def count(self, head: Optional[str] = None,
              relation: Optional[str] = None,
              tail: Optional[str] = None) -> int:
        return self.count_many([(head, relation, tail)])[0]

    def tails(self, head: str, relation: str) -> List[str]:
        return sorted(triple.tail
                      for triple in self.match(head, relation, None))

    def tails_many(self, pairs: Sequence[Tuple[str, str]]) -> List[List[str]]:
        results = self.match_many([(head, relation, None)
                                   for head, relation in pairs])
        return [sorted(triple.tail for triple in rows) for rows in results]

    def heads(self, relation: str, tail: str) -> List[str]:
        return sorted(triple.head
                      for triple in self.match(None, relation, tail))

    def degree(self, node: str) -> int:
        return self.degree_many([node])[0]

    def degree_many(self, nodes: Sequence[str]) -> List[int]:
        """Two counts per node (as head, as tail) in one batched call;
        a self-loop counts twice, matching every local backend."""
        patterns: List[Pattern] = []
        for node in nodes:
            patterns.append((node, None, None))
            patterns.append((None, None, node))
        counts = self.count_many(patterns)
        return [counts[2 * i] + counts[2 * i + 1]
                for i in range(len(nodes))]

    def _all_triples_per_shard(self) -> List[List[Triple]]:
        """Every shard's full content, one wire call per shard."""
        return self._run([
            (lambda session=session:
             _decode_triples(session.read_call(
                 "match", pattern=[None, None, None])))
            for session in self._sessions])

    def entities(self) -> List[str]:
        parts = self._all_triples_per_shard()
        return merge_sorted_unique(
            [[symbol for triple in part
              for symbol in (triple.head, triple.tail)] for part in parts])

    def relations(self) -> List[str]:
        parts = self._all_triples_per_shard()
        return merge_sorted_unique(
            [[triple.relation for triple in part] for part in parts])

    def heads_only(self) -> List[str]:
        parts = self._all_triples_per_shard()
        return merge_sorted_unique(
            [[triple.head for triple in part] for part in parts])

    def relation_frequencies(self) -> Dict[str, int]:
        parts = self._all_triples_per_shard()
        tallies = []
        for part in parts:
            tally: Dict[str, int] = {}
            for triple in part:
                tally[triple.relation] = tally.get(triple.relation, 0) + 1
            tallies.append(tally)
        return merge_frequency_dicts(tallies)

    # ------------------------------------------------------------------ #
    # id-level surface — raw when fingerprints match, strings otherwise
    # ------------------------------------------------------------------ #
    def _translate_id_pattern(self, pattern: IdPattern) \
            -> Optional[Pattern]:
        """Id pattern -> string pattern; ``None`` for out-of-range ids
        (statically empty, mirroring the service's range check)."""
        head_id, relation_id, tail_id = pattern
        translated = []
        for term, interner in ((head_id, self.entity_interner),
                               (relation_id, self.relation_interner),
                               (tail_id, self.entity_interner)):
            if term is None:
                translated.append(None)
                continue
            if not 0 <= term < len(interner):
                return None
            translated.append(interner.symbol_of(int(term)))
        return (translated[0], translated[1], translated[2])

    def match_ids_many(self, patterns: Sequence[IdPattern]) \
            -> List[np.ndarray]:
        """Batched id-pattern lookup: ONE wire call per touched shard.

        While every endpoint's interner fingerprint matched at
        handshake (and the coordinator's interners have not grown
        since), raw id patterns ship as-is and dense id blocks come
        straight back — zero translation, zero string traffic on the
        binary codec.  Otherwise patterns translate to strings, route
        through :meth:`match_many`, and results re-intern in the caller
        thread (the interner is not thread-safe; scatter threads never
        touch it).  Both paths concatenate per-shard blocks in shard
        order — the same order the in-process backend produces.
        """
        if self._fast_id_path():
            return self._scatter(
                patterns,
                classify=lambda pattern: _BROADCAST if pattern[0] is None
                else shard_of_id(pattern[0], self.n_shards),
                empty=_EMPTY_BLOCK,
                shard_call=lambda index, group: [
                    _decode_id_rows(item)
                    for item in self._sessions[index].read_call(
                        "match_ids_many",
                        patterns=[[None if term is None else int(term)
                                   for term in pattern]
                                  for pattern in group])],
                merge=concat_id_blocks)
        results: List[Optional[np.ndarray]] = [None] * len(patterns)
        live_positions: List[int] = []
        live_patterns: List[Pattern] = []
        for position, pattern in enumerate(patterns):
            translated = self._translate_id_pattern(pattern)
            if translated is None:
                results[position] = _EMPTY_BLOCK()
            else:
                live_positions.append(position)
                live_patterns.append(translated)
        if live_patterns:
            intern_entity = self.entity_interner.intern
            intern_relation = self.relation_interner.intern
            for position, triples in zip(live_positions,
                                         self.match_many(live_patterns)):
                if not triples:
                    results[position] = _EMPTY_BLOCK()
                    continue
                results[position] = np.array(
                    [[intern_entity(t.head), intern_relation(t.relation),
                      intern_entity(t.tail)] for t in triples],
                    dtype=np.int64)
        return results

    def match_ids(self, head_id: Optional[int] = None,
                  relation_id: Optional[int] = None,
                  tail_id: Optional[int] = None) -> np.ndarray:
        return self.match_ids_many([(head_id, relation_id, tail_id)])[0]

    def count_ids(self, head_id: Optional[int] = None,
                  relation_id: Optional[int] = None,
                  tail_id: Optional[int] = None) -> int:
        translated = self._translate_id_pattern(
            (head_id, relation_id, tail_id))
        if translated is None:
            return 0
        return self.count_many([translated])[0]

    # ------------------------------------------------------------------ #
    # observability + lifecycle
    # ------------------------------------------------------------------ #
    def cluster_stats(self, *, probe_shards: bool = True) -> dict:
        """Per-shard request/retry/reroute counters, the replica read
        share, and (with ``probe_shards``, the default) each shard
        server's result-cache counters — the ``stats`` op of a
        coordinator server includes all of it under ``"cluster"``.

        Counters are snapshotted FIRST, then shards are probed over
        dedicated connections that bump nothing, so reading stats never
        perturbs the numbers being read.  A shard whose endpoints are
        all unreachable reports ``"cache": None`` rather than failing
        the whole stats call.
        """
        totals = {key: 0 for key in
                  ("requests", "retries", "reroutes", "leader_reads",
                   "replica_reads", "writes", "failures", "promotions")}
        shards = []
        for session in self._sessions:
            with session._counter_lock:
                counters = dict(session.counters)
            for key in totals:
                totals[key] += counters.get(key, 0)
            shards.append({"index": session.index,
                           "leader": session.leader,
                           "replicas": list(session.addresses[1:]),
                           "fast_path": bool(session.id_space_matched),
                           **counters})
        reads = totals["leader_reads"] + totals["replica_reads"]
        totals["replica_read_share"] = \
            (totals["replica_reads"] / reads) if reads else 0.0
        if probe_shards:
            cache_keys = ("cache_hits", "cache_misses", "cache_evictions",
                          "cache_invalidations", "cache_entries",
                          "cache_bytes")
            cache_totals = {key: 0 for key in cache_keys}
            reachable = 0
            for shard, session in zip(shards, self._sessions):
                probed = session.stats_probe()
                service = (probed or {}).get("service")
                if not isinstance(service, dict):
                    shard["cache"] = None
                    continue
                reachable += 1
                shard["cache"] = {key: service.get(key, 0)
                                  for key in cache_keys}
                shard["cache"]["enabled"] = bool(
                    service.get("cache_enabled", False))
                for key in cache_keys:
                    cache_totals[key] += int(service.get(key, 0) or 0)
            cache_totals["shards_reporting"] = reachable
            totals["cache"] = cache_totals
        return {"n_shards": self.n_shards,
                "fast_id_path": self._fast_id_path(),
                "shards": shards,
                "totals": totals}

    def _dispose(self) -> None:
        """Release the pool and every session connection, best-effort.

        Shared by :meth:`close` and the ``__init__`` failure path, so a
        backend that never finished opening still tears down whatever it
        had acquired (no orphaned ``kg-cluster`` threads, no leaked
        sockets from a half-done handshake).
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for session in self._sessions:
            try:
                session.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass

    def close(self) -> None:
        """Close every connection and the job pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._dispose()

    def __enter__(self) -> "ClusterBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
