"""Query planning: pattern normalization, selectivity ordering, variable analysis.

The query layer is split into a **planner** (this module) and an
**executor** (:mod:`repro.kg.executor`).  Planning is pure analysis over
the query text plus one batched ``count_many`` round-trip to the store:

* :class:`PatternQuery` — the user-facing conjunctive query (a sequence
  of (head, relation, tail) patterns with ``?variables``);
* :func:`plan_query` / :func:`plan_queries` — turn queries into
  :class:`QueryPlan` objects: patterns ordered by batched selectivity
  counts (fewest matching triples first), each annotated with its
  constants and variable occurrences, plus a query-wide variable → kind
  (entity / relation position) analysis that decides whether the
  ID-space executor can run the plan;
* select validation — a ``select`` naming a variable the query never
  binds raises :class:`~repro.errors.QueryError` instead of silently
  producing partial rows;
* :func:`cache_key` — the stable canonical identity of a plan that the
  :class:`~repro.kg.service.QueryService` result cache is keyed by:
  interned pattern ids plus ``select`` plus the reorder flag,
  deliberately **limit-independent** (cache entries hold the full
  deduplicated id-row block; ``limit`` applies at projection).

Plans are inert data; handing one to
:func:`repro.kg.executor.execute_plan` produces bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.kg.store import TripleStore


def is_variable(term: str) -> bool:
    """Terms starting with ``?`` are variables; anything else is a constant."""
    return term.startswith("?")


@dataclass(frozen=True)
class PatternQuery:
    """A conjunctive query: a sequence of (head, relation, tail) patterns.

    Each position is either a constant identifier or a ``?variable``.
    ``select`` optionally restricts which variables appear in the results.
    ``limit`` caps how many result rows execution materializes (``None``
    means all; a cursor over a limited query pages within the cap).
    """

    patterns: Tuple[Tuple[str, str, str], ...]
    select: Tuple[str, ...] = ()
    limit: Optional[int] = None

    @classmethod
    def from_patterns(cls, patterns: Sequence[Sequence[str]],
                      select: Sequence[str] = (),
                      limit: Optional[int] = None) -> "PatternQuery":
        """Build a query from plain lists/tuples."""
        normalized = tuple(tuple(pattern) for pattern in patterns)
        for pattern in normalized:
            if len(pattern) != 3:
                raise ValueError(f"pattern must have 3 terms, got {pattern!r}")
        return cls(patterns=normalized, select=tuple(select), limit=limit)

    def variables(self) -> List[str]:
        """All variables mentioned in the query, in first-appearance order."""
        seen: List[str] = []
        for pattern in self.patterns:
            for term in pattern:
                if is_variable(term) and term not in seen:
                    seen.append(term)
        return seen


#: Variable kinds: the id space a variable's bindings live in.
ENTITY = "entity"
RELATION = "relation"


@dataclass(frozen=True)
class PatternStep:
    """One pattern of a plan: constants split out, variables located.

    ``constants`` holds the constant symbol per position (``None`` where
    the position is a variable); ``variables`` lists every
    ``(position, name)`` variable occurrence, including repeats of the
    same variable within the pattern (the executor turns repeats into
    equality filters).  ``count`` is the store's match count for the
    constants-only version of the pattern — the selectivity estimate the
    plan was ordered by (``-1`` when the plan was built with
    ``reorder=False``, which skips the probe entirely).
    """

    pattern: Tuple[str, str, str]
    constants: Tuple[Optional[str], Optional[str], Optional[str]]
    variables: Tuple[Tuple[int, str], ...]
    count: int


@dataclass(frozen=True)
class QueryPlan:
    """An ordered, analyzed query ready for execution.

    ``steps`` are the query's patterns in execution order.  ``variables``
    keeps the *original* first-appearance order (the order
    :meth:`PatternQuery.variables` reports, independent of reordering).
    ``var_kinds`` maps each variable to the id space it binds in
    (:data:`ENTITY` or :data:`RELATION`); ``id_space`` is False when some
    variable appears in both entity and relation positions, in which
    case only the symbol-level backtracking executor can evaluate the
    plan (entity and relation ids are different spaces, so the ID-space
    join cannot compare them).
    """

    query: PatternQuery
    steps: Tuple[PatternStep, ...]
    variables: Tuple[str, ...]
    select: Tuple[str, ...]
    var_kinds: Dict[str, str] = field(default_factory=dict)
    id_space: bool = True


def validate_select(query: PatternQuery) -> None:
    """Raise :class:`QueryError` when ``select`` names an unbindable variable.

    Every selected name must be a ``?variable`` that some pattern
    mentions; anything else (a misspelled variable, a plain constant)
    would previously be silently dropped from the result rows.
    """
    if not query.select:
        return
    known = set(query.variables())
    for name in query.select:
        if not is_variable(name):
            raise QueryError(
                f"select term {name!r} is not a variable (variables start with '?')")
        if name not in known:
            raise QueryError(
                f"select variable {name!r} is never bound by any pattern "
                f"(query binds: {', '.join(sorted(known)) or 'nothing'})")


def validate_limit(limit: Optional[int]) -> None:
    """Raise :class:`QueryError` for a limit that cannot mean anything.

    ``limit=0`` (or negative) is always a caller bug — "no rows" is not
    a query worth executing, and silently returning an empty result
    would mask a dropped variable upstream — so it fails loudly instead
    of producing a partial silent result.
    """
    if limit is None:
        return
    if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
        raise QueryError(
            f"limit must be a positive integer or None, got {limit!r}")


def _analyze_variables(query: PatternQuery) -> Tuple[Dict[str, str], bool]:
    """Variable → kind map, plus whether the query is ID-space executable."""
    kinds: Dict[str, str] = {}
    id_space = True
    for pattern in query.patterns:
        for position, term in enumerate(pattern):
            if not is_variable(term):
                continue
            kind = RELATION if position == 1 else ENTITY
            previous = kinds.setdefault(term, kind)
            if previous != kind:
                # The same variable binds entity symbols in one pattern
                # and relation symbols in another: joining requires
                # symbol comparison, not id comparison.
                id_space = False
    return kinds, id_space


def _make_step(pattern: Tuple[str, str, str], count: int) -> PatternStep:
    constants = tuple(None if is_variable(term) else term for term in pattern)
    variables = tuple((position, term) for position, term in enumerate(pattern)
                      if is_variable(term))
    return PatternStep(pattern=pattern, constants=constants,
                       variables=variables, count=count)


def plan_queries(store: TripleStore, queries: Sequence[PatternQuery],
                 reorder: bool = True) -> List[QueryPlan]:
    """Plan a batch of queries with ONE batched selectivity round-trip.

    All constants-only patterns across all queries go to the store in a
    single :meth:`~repro.kg.store.TripleStore.count_many` call (the
    sharded backend routes head-bound patterns to their owner shard), so
    planning cost does not multiply with the batch size the way
    per-pattern ``count`` calls would.  The probe only covers queries
    whose ordering can actually change — with ``reorder=False``, or for
    single-pattern queries, counts are never consulted, no probe is
    issued and the steps carry ``count=-1``.
    """
    for query in queries:
        validate_select(query)
        validate_limit(query.limit)

    def probed(query: PatternQuery) -> bool:
        return reorder and len(query.patterns) > 1

    flat_patterns = [step_constants
                     for query in queries if probed(query)
                     for step_constants in
                     (tuple(None if is_variable(term) else term
                            for term in pattern)
                      for pattern in query.patterns)]
    counts = store.count_many(flat_patterns) if flat_patterns else []
    plans: List[QueryPlan] = []
    cursor = 0
    for query in queries:
        if probed(query):
            num_patterns = len(query.patterns)
            query_counts = counts[cursor:cursor + num_patterns]
            cursor += num_patterns
        else:
            query_counts = [-1] * len(query.patterns)
        steps = [_make_step(pattern, count)
                 for pattern, count in zip(query.patterns, query_counts)]
        if len(steps) > 1 and probed(query):
            # Stable sort by (count, original index): fewest matching
            # triples first prunes the binding frontier early; ties keep
            # the written order.  The binding *set* is order-invariant.
            steps.sort(key=lambda step: step.count)
        kinds, id_space = _analyze_variables(query)
        plans.append(QueryPlan(
            query=query,
            steps=tuple(steps),
            variables=tuple(query.variables()),
            select=query.select,
            var_kinds=kinds,
            id_space=id_space,
        ))
    return plans


def plan_query(store: TripleStore, query: PatternQuery,
               reorder: bool = True) -> QueryPlan:
    """Plan a single query (see :func:`plan_queries`)."""
    return plan_queries(store, [query], reorder=reorder)[0]


def cache_key(backend: object, query: PatternQuery,
              reorder: bool = True) -> Optional[Tuple]:
    """The stable identity of a query's *result*, or ``None`` if uncacheable.

    Two queries get the same key exactly when the ID-space executor is
    guaranteed to produce bit-identical id-row blocks for them against
    an unchanged store:

    * constants are canonicalized to their interned ids (position 1
      through the relation interner, positions 0/2 through the entity
      interner), so spelling differences that alias the same id — there
      are none today, but the interner owns that decision — cannot
      split the cache;
    * variables keep their names verbatim: renaming a variable changes
      projection column names, which are part of the result;
    * ``select`` and the ``reorder`` flag are part of the key (both
      change the projected columns or, for reorder, the count-probe
      path), but ``limit`` is deliberately **not**: execution only
      applies ``limit`` as a final projection slice, so one cache entry
      holds the full block and every limit is a view of it.

    A constant the interner has never seen keys as ``("#", term)``.
    That is only sound because the service drops the whole cache on
    every mutation epoch bump — interners grow only on writes, so
    between bumps "unknown" is as stable an identity as an id.

    ``None`` (bypass the cache) is returned for queries the ID-space
    executor refuses (a variable spanning entity and relation
    positions) and for queries projecting no columns at all.
    """
    kinds, id_space = _analyze_variables(query)
    if not id_space:
        return None
    names = query.select or tuple(query.variables())
    if not names:
        return None
    entity_lookup = backend.entity_interner.lookup
    relation_lookup = backend.relation_interner.lookup
    terms: List[object] = []
    for pattern in query.patterns:
        for position, term in enumerate(pattern):
            if is_variable(term):
                terms.append(term)
                continue
            lookup = relation_lookup if position == 1 else entity_lookup
            interned = lookup(term)
            terms.append(("#", term) if interned is None else interned)
    return (bool(reorder), tuple(query.select), tuple(terms))
