"""The :class:`Triple` value object.

Everything in OpenBG — ontology axioms, product attributes, multimodal
facts — is expressed as (head, relation, tail) triples, so the whole
library standardizes on one small immutable record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True, order=True)
class Triple:
    """An immutable (head, relation, tail) statement.

    ``head`` and ``tail`` are entity / class / literal identifiers (strings);
    ``relation`` is a property identifier.  Literals are plain strings; the
    ontology layer decides whether a relation is an object, data or meta
    property.
    """

    head: str
    relation: str
    tail: str

    def __post_init__(self) -> None:
        for field_name in ("head", "relation", "tail"):
            value = getattr(self, field_name)
            if not isinstance(value, str) or not value:
                raise ValueError(f"Triple.{field_name} must be a non-empty string, got {value!r}")

    @classmethod
    def unchecked(cls, head: str, relation: str, tail: str) -> "Triple":
        """Construct without re-validating — for symbols a store already
        validated at insertion time (the match hot path)."""
        instance = object.__new__(cls)
        object.__setattr__(instance, "head", head)
        object.__setattr__(instance, "relation", relation)
        object.__setattr__(instance, "tail", tail)
        return instance

    def as_tuple(self) -> Tuple[str, str, str]:
        """Return the triple as a plain tuple (useful for set operations)."""
        return (self.head, self.relation, self.tail)

    def reversed(self) -> "Triple":
        """Return a triple with head and tail swapped (for inverse relations)."""
        return Triple(self.tail, self.relation, self.head)

    def with_relation(self, relation: str) -> "Triple":
        """Return a copy of the triple with a different relation."""
        return Triple(self.head, relation, self.tail)

    def __iter__(self) -> Iterator[str]:
        return iter(self.as_tuple())

    def __str__(self) -> str:
        return f"({self.head}, {self.relation}, {self.tail})"


def triples_from_tuples(rows: Iterable[Tuple[str, str, str]]) -> list[Triple]:
    """Convert an iterable of 3-tuples into a list of :class:`Triple`."""
    return [Triple(head, relation, tail) for head, relation, tail in rows]
