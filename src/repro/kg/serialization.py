"""Serialization of triples and benchmark splits.

Three formats are supported:

* **TSV** — one ``head<TAB>relation<TAB>tail`` line per triple; this is the
  format the public OpenBG benchmark releases use for train/dev/test files.
* **N-Triples-like** — ``<head> <relation> <tail> .`` lines with CURIEs
  expanded through the namespace table, approximating the RDF output the
  paper produces through Apache Jena.
* **Store directory** — the binary memory-mapped columnar layout
  (:mod:`repro.kg.mmap_backend`): interner tables plus ``int64`` column /
  index files under one directory, reopened zero-copy by
  :class:`~repro.kg.mmap_backend.MmapBackend`.  Unlike the text formats
  this round-trips the *indexes* too, so a bulk-loaded graph can be
  queried from disk without re-interning or re-sorting anything.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

from repro.errors import SerializationError, StorageError
from repro.kg.namespaces import NAMESPACES
from repro.kg.triple import Triple

#: TSV field escaping: symbols may legally contain the characters TSV
#: uses as structure (tabs, newlines), so they are backslash-escaped on
#: write and restored on read.  Without this, a tab inside a symbol
#: silently mis-splits the row and a newline forges extra rows.
_TSV_ESCAPE_TABLE = str.maketrans({
    "\\": "\\\\", "\t": "\\t", "\n": "\\n", "\r": "\\r",
})
_TSV_UNESCAPES = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}


def escape_tsv_field(field: str) -> str:
    """Backslash-escape TSV structure characters inside one field.

    Public so other TSV emitters (the CLI's binding output) share the
    exact escaping :func:`write_tsv` uses.
    """
    return field.translate(_TSV_ESCAPE_TABLE)


def _unescape_tsv_field(field: str, where: str) -> str:
    if "\\" not in field:
        return field
    out: List[str] = []
    index, length = 0, len(field)
    while index < length:
        char = field[index]
        if char != "\\":
            out.append(char)
            index += 1
            continue
        if index + 1 >= length:
            raise StorageError(f"{where}: dangling backslash at end of field")
        escape = field[index + 1]
        replacement = _TSV_UNESCAPES.get(escape)
        if replacement is None:
            raise StorageError(f"{where}: invalid escape sequence '\\{escape}'")
        out.append(replacement)
        index += 2
    return "".join(out)


def write_tsv(triples: Iterable[Triple], path: str | Path) -> int:
    """Write triples as TSV; returns the number of lines written.

    Tabs, newlines, carriage returns and backslashes inside symbols are
    backslash-escaped so every triple stays exactly one three-field row.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(f"{escape_tsv_field(triple.head)}\t"
                         f"{escape_tsv_field(triple.relation)}\t"
                         f"{escape_tsv_field(triple.tail)}\n")
            count += 1
    return count


def read_tsv(path: str | Path) -> List[Triple]:
    """Read triples from a TSV file written by :func:`write_tsv`.

    Raises :class:`~repro.errors.StorageError` (a
    :class:`~repro.errors.SerializationError`) on malformed rows —
    wrong field counts or invalid escape sequences — instead of
    guessing at a split.
    """
    path = Path(path)
    triples: List[Triple] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise StorageError(
                    f"{path}:{line_number}: expected 3 tab-separated fields, got {len(parts)}"
                )
            where = f"{path}:{line_number}"
            triples.append(Triple(*(_unescape_tsv_field(part, where)
                                    for part in parts)))
    return triples


def write_ntriples(triples: Iterable[Triple], path: str | Path) -> int:
    """Write triples in an N-Triples-like format with expanded URIs."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for triple in triples:
            head = NAMESPACES.expand(triple.head)
            relation = NAMESPACES.expand(triple.relation)
            tail = NAMESPACES.expand(triple.tail)
            handle.write(f"<{head}> <{relation}> <{tail}> .\n")
            count += 1
    return count


def read_ntriples(path: str | Path) -> List[Triple]:
    """Read triples written by :func:`write_ntriples`, compacting URIs back."""
    path = Path(path)
    triples: List[Triple] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if not line.endswith("."):
                raise SerializationError(f"{path}:{line_number}: missing terminating '.'")
            body = line[:-1].strip()
            parts = body.split(" ", 2)
            if len(parts) != 3:
                raise SerializationError(f"{path}:{line_number}: malformed statement")
            cleaned = []
            for part in parts:
                part = part.strip()
                if not (part.startswith("<") and part.endswith(">")):
                    raise SerializationError(f"{path}:{line_number}: expected <uri> terms")
                cleaned.append(NAMESPACES.compact(part[1:-1]))
            triples.append(Triple(*cleaned))
    return triples


def write_store_dir(triples: "Iterable[Triple] | TripleStore",
                    directory: str | Path) -> Path:
    """Persist triples as a memory-mapped store directory.

    Accepts either a :class:`~repro.kg.store.TripleStore` (saved via its
    backend) or any iterable of triples (bulk-loaded through an
    in-memory columnar backend first).  Returns the directory path.
    """
    from repro.kg.store import TripleStore

    if not isinstance(triples, TripleStore):
        triples = TripleStore(triples)
    return triples.save(directory)


def read_store_dir(directory: str | Path) -> "TripleStore":
    """Open a store directory as a disk-backed :class:`TripleStore`.

    Dispatches on the header magic: single-store directories reopen on
    the mmap backend, sharded directories on the sharded backend.
    Raises :class:`~repro.errors.StorageError` when the directory is
    missing, truncated, corrupt, or written by an incompatible format
    version.
    """
    from repro.kg.store import TripleStore

    return TripleStore.open(directory)


def write_split_json(splits: Dict[str, List[Triple]], path: str | Path) -> None:
    """Write a benchmark split (train/dev/test) as a single JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        name: [triple.as_tuple() for triple in triples]
        for name, triples in splits.items()
    }
    path.write_text(json.dumps(payload, ensure_ascii=False, indent=1), encoding="utf-8")


def read_split_json(path: str | Path) -> Dict[str, List[Triple]]:
    """Read a benchmark split written by :func:`write_split_json`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: invalid JSON: {exc}") from exc
    result: Dict[str, List[Triple]] = {}
    for name, rows in payload.items():
        result[name] = [Triple(*row) for row in rows]
    return result
