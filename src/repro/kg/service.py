"""A concurrent, batching query service over a :class:`TripleStore`.

The ROADMAP's service-layer milestone: many clients — request-handler
threads of a web front-end, worker processes sharing one on-disk store
directory — issue pattern queries and point lookups concurrently, and
the store answers them through its *batched* APIs rather than one
round-trip per request.

:class:`QueryService` is that multiplexer:

* clients call :meth:`execute` / :meth:`execute_batch` /
  :meth:`lookup_many` (or :meth:`submit` for a future) from any number
  of threads;
* requests land on an internal queue; a single **dispatcher** thread
  drains whatever has accumulated (up to ``max_batch`` requests),
  plans every pattern query in the batch with ONE batched
  ``count_many`` call, advances all their plans in lockstep through
  shared ``match_ids_many`` fetches
  (:func:`repro.kg.executor.execute_plans`), and answers point lookups
  with one ``match_many`` call — then resolves each request's future;
* because only the dispatcher touches the backend, the service is safe
  over backends whose lazy attach/consolidate steps are not thread-safe,
  while the sharded backend still parallelizes *inside* each batched
  call across its shard pool;
* huge results stream instead of materializing: :meth:`open_cursor` /
  :meth:`open_match_cursor` park a
  :class:`~repro.kg.executor.ResultCursor` (the compact id-row
  projection) in a TTL-evicted table, and :meth:`fetch_cursor` pages it
  out — the mechanism :class:`repro.kg.server.KGServer` exposes over
  the wire.  Every cursor-lifecycle violation (expiry, double close,
  unknown id, non-positive page) raises a typed
  :class:`~repro.errors.CursorError`.

The service is also the store's **exclusive writer**: :meth:`add_many`
/ :meth:`remove_many` / :meth:`compact` enqueue write requests that the
same single dispatcher serves — writes serialize against each other and
against reads with no extra locking, reads keep batching, and within
one dispatch round every read observes the state *after* that round's
writes.  Each acked write batch bumps a monotonically increasing
``mutation_epoch`` (exposed in :attr:`stats`); on a live store
(:meth:`TripleStore.create_live`) the batch is WAL-logged and fsync'd
before its future resolves.  Writes against a store opened read-only
from a plain snapshot directory raise a typed
:class:`~repro.errors.StorageError` at submit time.  Open cursors keep
paging the snapshot they materialized — a write never splices
mixed-epoch rows into an existing cursor.

Hot queries short-circuit all of the above: the dispatcher consults a
**result cache** before a pattern query joins a batch round — key =
:func:`repro.kg.planner.cache_key` (interned pattern ids + select +
reorder flag, limit-independent), value = the full deduplicated
:class:`~repro.kg.executor.IdBlock` (strings still materialize per
request/page, so the binary codec ships cached blocks without
re-stringifying), LRU-evicted under a byte budget, dropped wholesale on
every ``mutation_epoch`` bump.  Check, fill and invalidation all happen
on the one dispatcher thread, so a stale hit after an acked write is
impossible by construction; ``compact()`` doesn't bump the epoch, so
compaction keeps the cache warm.

Construction warms the backend up (attaches memmaps, folds any pending
overlay) so steady-state dispatch never pays a consolidation.  The
store must not be mutated *around* a running service — all mutations go
through the service's write surface.

For multi-process deployments, every process opens the same (sharded)
store directory via :func:`QueryService.open` — ``TripleStore.open``
memory-maps the column files read-only, so the OS page cache is shared
and each process runs its own dispatcher.
"""

from __future__ import annotations

import queue
import secrets
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import replace as dataclass_replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import CursorError, QueryError, StorageError
from repro.kg.backend import Pattern, supports_id_queries
from repro.kg.executor import (Binding, IdBlock, ResultCursor,
                               execute_plans_cursors)
from repro.kg.planner import (PatternQuery, cache_key as plan_cache_key,
                              plan_queries, validate_limit)
from repro.kg.store import TripleStore
from repro.kg.triple import Triple

#: Kinds of requests the service multiplexes.
_QUERY = "query"                 # pattern query -> List[Binding]
_LOOKUP = "lookup"               # point lookup  -> List[Triple]
_ID_LOOKUP = "id-lookup"         # raw id pattern -> triples IdBlock
_COUNT = "count"                 # point pattern -> int
_CURSOR_QUERY = "cursor-query"   # pattern query -> cursor id
_CURSOR_MATCH = "cursor-match"   # point lookup  -> cursor id
_CURSOR_FETCH = "cursor-fetch"   # (cursor id, max_rows) -> (page, exhausted)
_CURSOR_CLOSE = "cursor-close"   # cursor id -> None
_ADD = "add"                     # List[Triple] -> newly-added count
_REMOVE = "remove"               # List[Triple] -> removed count
_COMPACT = "compact"             # crash_hook | None -> new generation
_SWAP = "swap-store"             # TripleStore -> the replaced store

#: Kinds the dispatcher serves before any read in the same batch.
_WRITE_KINDS = frozenset((_ADD, _REMOVE, _COMPACT, _SWAP))

#: Sentinel shoved down the queue to stop the dispatcher.
_SHUTDOWN = object()

#: Default idle lifetime of an open cursor, seconds.
DEFAULT_CURSOR_TTL = 300.0

#: Default byte budget of the hot-query result cache (0 disables it).
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


def _resolve(future: "Future", result=None, exception: Optional[BaseException] = None) -> None:
    """Resolve a future, tolerating client-side cancellation.

    A client may ``cancel()`` a still-pending future before its batch is
    dispatched; ``set_result`` on a cancelled future raises
    ``InvalidStateError``, which would kill the dispatcher thread and
    hang every later request — the cancelled request just gets dropped
    instead.
    """
    if not future.set_running_or_notify_cancel():
        return
    if exception is not None:
        future.set_exception(exception)
    else:
        future.set_result(result)


class _Request:
    """One queued client request: payload plus the future to resolve.

    ``raw`` requests resolve to id-space results
    (:class:`~repro.kg.executor.IdBlock`) instead of materialized
    strings — the handoff the binary wire codec serves from, falling
    back to materialized lists when the backend has no id surface.
    """

    __slots__ = ("kind", "payload", "reorder", "raw", "future", "cache_key")

    def __init__(self, kind: str, payload, reorder: bool,
                 raw: bool = False) -> None:
        self.kind = kind
        self.payload = payload
        self.reorder = reorder
        self.raw = raw
        self.future: "Future" = Future()
        # Set by the dispatcher for cacheable pattern queries: the plan
        # cache key a missing result should be inserted under.
        self.cache_key: Optional[Tuple] = None


class _ResultCache:
    """Hot-query result cache: plan cache key → the full deduplicated
    :class:`~repro.kg.executor.IdBlock`, LRU-evicted under a byte budget.

    Structure is touched exclusively by the dispatcher thread; the
    service wraps every counter-mutating call in its stats lock so
    :attr:`QueryService.stats` reads one consistent snapshot.  Cached
    blocks are immutable — a hit serves zero-copy slices of the stored
    array, and invalidation merely drops references, so views handed to
    still-open cursors survive a drop unchanged.  An entry bigger than
    the whole budget is never admitted (it could only thrash).
    """

    __slots__ = ("max_bytes", "bytes", "entries", "hits", "misses",
                 "evictions", "invalidations", "_table")

    #: Per-entry bookkeeping charge on top of the raw row bytes (key
    #: tuple, table slot, block header) so a flood of tiny results
    #: still counts against the budget.
    ENTRY_OVERHEAD = 128

    def __init__(self, max_bytes: int) -> None:
        self.max_bytes = int(max_bytes)
        self.bytes = 0
        self.entries = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._table: "OrderedDict[Tuple, Tuple[int, IdBlock]]" = OrderedDict()

    @classmethod
    def _cost(cls, block: IdBlock) -> int:
        return int(block.rows.nbytes) + cls.ENTRY_OVERHEAD

    def get(self, key: Tuple) -> Optional[IdBlock]:
        entry = self._table.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._table.move_to_end(key)
        self.hits += 1
        return entry[1]

    def put(self, key: Tuple, block: IdBlock) -> None:
        cost = self._cost(block)
        if cost > self.max_bytes:
            return
        previous = self._table.pop(key, None)
        if previous is not None:
            self.bytes -= previous[0]
        while self._table and self.bytes + cost > self.max_bytes:
            _key, (evicted_cost, _block) = self._table.popitem(last=False)
            self.bytes -= evicted_cost
            self.evictions += 1
        self._table[key] = (cost, block)
        self.bytes += cost
        self.entries = len(self._table)

    def clear(self) -> None:
        self.invalidations += 1
        self._table.clear()
        self.bytes = 0
        self.entries = 0


class QueryService:
    """Multiplexes concurrent pattern queries into backend batch calls.

    Parameters
    ----------
    store:
        The (already built or opened) store to serve.  Not mutated.
    max_batch:
        Upper bound on how many requests one dispatch round coalesces.
        Larger batches amortize planning and fetch round-trips better;
        the default is plenty to saturate the batched backend APIs.
    cache_bytes:
        Byte budget of the hot-query result cache (``0`` disables it).
        The dispatcher checks the cache before a pattern query joins a
        batch round; entries are the full limit-stripped id-row blocks
        keyed by :func:`~repro.kg.planner.cache_key`, LRU-evicted under
        this budget, and dropped wholesale on every ``mutation_epoch``
        bump (``compact()`` doesn't bump, so compaction keeps the cache
        warm).  Because the same single dispatcher checks, fills and
        invalidates, a stale hit after a write is impossible by
        construction.

    Use as a context manager or call :meth:`close` — the dispatcher is
    a daemon thread, but closing deterministically drains in-flight
    requests first.
    """

    def __init__(self, store: TripleStore, *, max_batch: int = 256,
                 cursor_ttl: float = DEFAULT_CURSOR_TTL,
                 cache_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if cursor_ttl <= 0:
            raise ValueError(f"cursor_ttl must be > 0 seconds, got {cursor_ttl}")
        if cache_bytes < 0:
            raise ValueError(f"cache_bytes must be >= 0, got {cache_bytes}")
        self.store = store
        self.max_batch = int(max_batch)
        self.cursor_ttl = float(cursor_ttl)
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = False
        self._close_lock = threading.Lock()
        # Open cursors: id -> (ResultCursor, monotonic deadline).  Only
        # the dispatcher thread touches this dict after construction.
        self._cursors: Dict[str, Tuple[ResultCursor, float]] = {}
        # Observability: how much multiplexing actually happens.  All
        # counters mutate under _stats_lock so `stats` can read one
        # consistent snapshot (the dispatcher holds it only for the
        # few-instruction bumps, never across backend calls).
        self._stats_lock = threading.Lock()
        self.requests_served = 0
        self.batches_dispatched = 0
        self.largest_batch = 0
        self.cursors_opened = 0
        self.cursors_expired = 0
        # Monotonically increasing write clock: +1 per acked write batch.
        self.mutation_epoch = 0
        self.write_batches = 0
        # The result cache only understands id-space results; a backend
        # without the id surface (or a zero budget) runs uncached.
        self._cache: Optional[_ResultCache] = (
            _ResultCache(cache_bytes)
            if cache_bytes > 0 and supports_id_queries(store.backend)
            else None)
        self._warm_up()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="kg-query-service", daemon=True)
        self._dispatcher.start()

    @classmethod
    def open(cls, directory: Union[str, Path], *, max_batch: int = 256,
             cursor_ttl: float = DEFAULT_CURSOR_TTL,
             cache_bytes: int = DEFAULT_CACHE_BYTES) -> "QueryService":
        """Open a saved store directory (any layout) and serve it.

        Dispatches on the header magic exactly like
        :meth:`TripleStore.open` — sharded directories come back as a
        shard-routed backend, single-store directories as memory-mapped
        columns.
        """
        return cls(TripleStore.open(directory), max_batch=max_batch,
                   cursor_ttl=cursor_ttl, cache_bytes=cache_bytes)

    @property
    def stats(self) -> Dict[str, int]:
        """A consistent snapshot of the multiplexing counters.

        ``batches_dispatched < requests_served`` is the signature of
        coalescing actually happening (the first request of a burst can
        only ever dispatch solo).  Taken under the same lock every
        dispatcher-side counter bump holds, so the fields cohere —
        e.g. ``cache_hits + cache_misses`` never transiently exceeds
        the pattern queries served.
        """
        with self._stats_lock:
            cache = self._cache
            return {
                "requests_served": self.requests_served,
                "batches_dispatched": self.batches_dispatched,
                "largest_batch": self.largest_batch,
                "cursors_opened": self.cursors_opened,
                "cursors_expired": self.cursors_expired,
                "open_cursors": len(self._cursors),
                "max_batch": self.max_batch,
                "mutation_epoch": self.mutation_epoch,
                "write_batches": self.write_batches,
                "writable": self.store.writable,
                "cache_enabled": cache is not None,
                "cache_max_bytes": cache.max_bytes if cache else 0,
                "cache_bytes": cache.bytes if cache else 0,
                "cache_entries": cache.entries if cache else 0,
                "cache_hits": cache.hits if cache else 0,
                "cache_misses": cache.misses if cache else 0,
                "cache_evictions": cache.evictions if cache else 0,
                "cache_invalidations": cache.invalidations if cache else 0,
            }

    def _warm_up(self) -> None:
        """Force lazy attach/consolidation before concurrent dispatch starts.

        ``count_ids()`` touches the consolidated id surface without
        copying any column data (a wildcard ``match_ids`` would
        materialize the whole store once just to throw it away).
        """
        backend = self.store.backend
        if supports_id_queries(backend):
            backend.count_ids()
        else:
            self.store.count()

    def _apply_swap(self, new_store: TripleStore) -> TripleStore:
        """Dispatcher-side half of :meth:`swap_store`."""
        backend = new_store.backend
        if supports_id_queries(backend):
            backend.count_ids()
        else:
            new_store.count()
        old_store, self.store = self.store, new_store
        return old_store

    # ------------------------------------------------------------------ #
    # client surface (thread-safe)
    # ------------------------------------------------------------------ #
    def submit(self, query: PatternQuery, reorder: bool = True,
               raw: bool = False) -> "Future":
        """Enqueue one query; returns a future yielding ``List[Binding]``.

        With ``raw=True`` the future yields the id-space
        :class:`~repro.kg.executor.IdBlock` projection instead (or the
        materialized list when the plan fell back to backtracking) —
        the binary wire path, which never stringifies a row.
        """
        return self._enqueue(_Request(_QUERY, query, reorder, raw=raw))

    def submit_lookup(self, pattern: Pattern, raw: bool = False) -> "Future":
        """Enqueue one point lookup; future yields ``List[Triple]``.

        Point lookups take constants and ``None`` wildcards only — a
        ``?variable`` here is almost certainly a pattern query routed to
        the wrong entry point, and would otherwise silently match
        nothing; use :meth:`submit` for variables.  ``raw=True`` yields
        a triples :class:`~repro.kg.executor.IdBlock` when the backend
        has an id surface (a ``List[Triple]`` otherwise).
        """
        return self._enqueue(_Request(_LOOKUP, self._checked_pattern(pattern),
                                      True, raw=raw))

    @staticmethod
    def _checked_pattern(pattern: Pattern) -> Pattern:
        pattern = tuple(pattern)
        for term in pattern:
            if isinstance(term, str) and term.startswith("?"):
                raise QueryError(
                    f"point lookup got variable term {term!r}; use "
                    f"submit()/execute() with a PatternQuery for variables "
                    f"(wildcards here are spelled None)")
        return pattern

    def execute(self, query: PatternQuery, reorder: bool = True) -> List[Binding]:
        """Run one query, blocking until its batch is dispatched."""
        return self.submit(query, reorder=reorder).result()

    def execute_batch(self, queries: Sequence[PatternQuery],
                      reorder: bool = True) -> List[List[Binding]]:
        """Run a client-side batch; one future per query, awaited together."""
        futures = [self.submit(query, reorder=reorder) for query in queries]
        return [future.result() for future in futures]

    def lookup_many(self, patterns: Sequence[Pattern]) -> List[List[Triple]]:
        """Batched point lookups ((head, relation, tail), ``None`` wildcards)."""
        futures = [self.submit_lookup(pattern) for pattern in patterns]
        return [future.result() for future in futures]

    def submit_id_lookup(self, id_pattern) -> "Future":
        """Enqueue one **raw id-space** lookup; future yields a triples
        :class:`~repro.kg.executor.IdBlock`.

        The pattern is ``(head_id, relation_id, tail_id)`` with ``None``
        wildcards — interned ids, no string translation on either side.
        This is the coordinator fast path: a
        :class:`~repro.kg.cluster.ClusterBackend` whose interner tables
        match this store's fingerprint ships executor id patterns
        straight through and splices the returned blocks into its own
        join rounds.  Requires an id-capable backend
        (:class:`~repro.errors.QueryError` otherwise).
        """
        if not supports_id_queries(self.store.backend):
            raise QueryError(
                "backend has no id-query surface; use submit_lookup for "
                "string patterns")
        checked = []
        for term in tuple(id_pattern):
            if term is None:
                checked.append(None)
            elif isinstance(term, (int, np.integer)) \
                    and not isinstance(term, bool):
                checked.append(int(term))
            else:
                raise QueryError(
                    f"id patterns take integer ids and None wildcards, "
                    f"got {term!r}")
        if len(checked) != 3:
            raise QueryError(
                f"id patterns have exactly 3 terms, got {len(checked)}")
        return self._enqueue(_Request(_ID_LOOKUP, tuple(checked), True,
                                      raw=True))

    def match_ids_many(self, id_patterns: Sequence) -> List[IdBlock]:
        """Batched raw id-space lookups (one backend call per round)."""
        futures = [self.submit_id_lookup(pattern)
                   for pattern in id_patterns]
        return [future.result() for future in futures]

    def submit_count(self, pattern: Pattern) -> "Future":
        """Enqueue one pattern count; future yields ``int``."""
        return self._enqueue(_Request(_COUNT, self._checked_pattern(pattern),
                                      True))

    def count_many(self, patterns: Sequence[Pattern]) -> List[int]:
        """Batched pattern counts (``None`` wildcards; one backend call)."""
        futures = [self.submit_count(pattern) for pattern in patterns]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # writes (the exclusive-writer surface)
    # ------------------------------------------------------------------ #
    def _checked_write(self, triples) -> List[Triple]:
        """Validate a write batch up front, in the caller's thread.

        Refusing read-only stores *here* means the typed
        :class:`~repro.errors.StorageError` surfaces before anything is
        enqueued or logged, and reaches remote clients as itself rather
        than a generic wire error.
        """
        if not self.store.writable:
            raise StorageError(
                "store was opened read-only from a snapshot directory; "
                "writes need a live store (TripleStore.create_live / a "
                "live.json directory) or an in-memory store")
        items = list(triples)
        for item in items:
            if not isinstance(item, Triple):
                raise QueryError(
                    f"write batches take Triple items, got "
                    f"{type(item).__name__!s}")
        return items

    def submit_add(self, triples: Sequence[Triple]) -> "Future":
        """Enqueue one add batch; future yields the newly-added count.

        The batch is applied atomically with respect to every read the
        service serves: a concurrent query sees none or all of it.  On
        a live store the future resolves only after the batch's WAL
        record is fsync'd.
        """
        return self._enqueue(_Request(_ADD, self._checked_write(triples),
                                      True))

    def add_many(self, triples: Sequence[Triple]) -> int:
        """Durably add a batch of triples; returns the newly-added count."""
        return self.submit_add(triples).result()

    def submit_remove(self, triples: Sequence[Triple]) -> "Future":
        """Enqueue one remove batch; future yields the removed count."""
        return self._enqueue(_Request(_REMOVE, self._checked_write(triples),
                                      True))

    def remove_many(self, triples: Sequence[Triple]) -> int:
        """Durably remove a batch of triples; returns the removed count."""
        return self.submit_remove(triples).result()

    def compact(self, *, crash_hook=None) -> int:
        """Fold the live store's WAL into a new snapshot generation.

        Serialized through the dispatcher like any write, so it never
        races a mutation; returns the new generation.  Raises
        :class:`~repro.errors.StorageError` when the store is not live.
        ``crash_hook`` is the fault-injection hook of
        :meth:`TripleStore.compact` (tests only).
        """
        return self._enqueue(_Request(_COMPACT, crash_hook, True)).result()

    def swap_store(self, new_store: TripleStore) -> TripleStore:
        """Atomically replace the served store; returns the old one.

        The replica re-bootstrap handoff: after a follower fetches a new
        snapshot generation over the wire it opens the adopted directory
        as a fresh :class:`TripleStore` and swaps it in here.  The swap
        is serialized through the dispatcher like any write, so no read
        ever observes half-old, half-new state; the result cache is
        dropped (the new store interns from scratch, so cached id blocks
        are meaningless against it).  Closing the returned old store is
        the caller's job — open cursors may still page out of its
        backend, which stays valid until garbage-collected.
        """
        return self._enqueue(_Request(_SWAP, new_store, True)).result()

    # ------------------------------------------------------------------ #
    # cursors (paged results; remote clients stream through these)
    # ------------------------------------------------------------------ #
    def open_cursor(self, query: PatternQuery, reorder: bool = True) -> str:
        """Execute ``query`` into a server-side cursor; returns its id.

        The cursor holds the compact id-row projection (strings
        materialize per fetched page) and lives until :meth:`close_cursor`
        or ``cursor_ttl`` seconds of inactivity, whichever comes first.
        Cursor opens batch with ordinary queries: one dispatch round
        plans and executes them all together.
        """
        return self._enqueue(_Request(_CURSOR_QUERY, query, reorder)).result()

    def open_match_cursor(self, pattern: Pattern) -> str:
        """Point-lookup counterpart of :meth:`open_cursor` (pages triples)."""
        return self._enqueue(_Request(
            _CURSOR_MATCH, self._checked_pattern(pattern), True)).result()

    def fetch_cursor(self, cursor_id: str, max_rows: int,
                     raw: bool = False) -> Tuple[List, bool]:
        """Return ``(next page, exhausted)`` and refresh the cursor's TTL.

        Raises :class:`~repro.errors.CursorError` for an unknown, closed
        or expired cursor, and for a non-positive ``max_rows`` — never a
        silently partial result.  ``raw=True`` pages
        :class:`~repro.kg.executor.IdBlock`\\ s out of id-backed cursors
        (list-backed cursors still return their materialized items).
        """
        return self._enqueue(_Request(
            _CURSOR_FETCH, (cursor_id, max_rows), True, raw=raw)).result()

    def close_cursor(self, cursor_id: str) -> None:
        """Release a cursor.  Closing one twice (or an unknown/expired id)
        raises :class:`~repro.errors.CursorError`."""
        return self._enqueue(_Request(_CURSOR_CLOSE, cursor_id, True)).result()

    def _enqueue(self, request: _Request) -> "Future":
        # The closed-check and the put share the close lock: otherwise a
        # request could slip into the queue after close() has drained it
        # (closed flag read, preempted, close runs fully, then put) and
        # its future would never resolve — a hung client.
        with self._close_lock:
            if self._closed:
                raise QueryError("QueryService is closed")
            self._queue.put(request)
        return request.future

    # ------------------------------------------------------------------ #
    # dispatcher (single thread; the only backend toucher)
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                return
            batch: List[_Request] = [first]
            shutdown = False
            while len(batch) < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    shutdown = True
                    break
                batch.append(nxt)
            try:
                self._serve(batch)
            except BaseException as exc:
                # The dispatcher must never die with futures in hand:
                # a request mid-serve when something as blunt as a
                # KeyboardInterrupt-class error escapes would otherwise
                # never resolve — its client blocks forever and close()
                # can only drain the queue, not the lost batch.
                failure = QueryError(f"dispatch failed: {exc!r}")
                failure.__cause__ = exc
                for request in batch:
                    if not request.future.done():
                        _resolve(request.future, exception=failure)
            if shutdown:
                return

    def _serve(self, batch: List[_Request]) -> None:
        with self._stats_lock:
            self.batches_dispatched += 1
            self.largest_batch = max(self.largest_batch, len(batch))
            self.requests_served += len(batch)
        self._evict_expired_cursors()
        by_kind: Dict[str, List[_Request]] = {}
        writes: List[_Request] = []
        for request in batch:
            if request.kind in _WRITE_KINDS:
                writes.append(request)
            else:
                by_kind.setdefault(request.kind, []).append(request)
        # Writes go first, in arrival order (add/remove of the same
        # triple must not commute), so every read in this round
        # observes one consistent post-write epoch — never a batch
        # half-applied around it.
        if writes:
            self._serve_writes(writes)
        # Opens are served before fetches/closes so a pipelined client
        # that batches "open; fetch" into one round still works.
        queries = by_kind.get(_QUERY, []) + by_kind.get(_CURSOR_QUERY, [])
        lookups = by_kind.get(_LOOKUP, []) + by_kind.get(_CURSOR_MATCH, [])
        if queries:
            self._serve_queries(queries)
        if lookups:
            self._serve_lookups(lookups)
        id_lookups = by_kind.get(_ID_LOOKUP, [])
        if id_lookups:
            self._serve_raw_id_lookups(id_lookups)
        counts = by_kind.get(_COUNT, [])
        if counts:
            self._serve_counts(counts)
        for request in by_kind.get(_CURSOR_FETCH, []):
            self._serve_cursor_fetch(request)
        for request in by_kind.get(_CURSOR_CLOSE, []):
            self._serve_cursor_close(request)

    def _serve_writes(self, requests: List[_Request]) -> None:
        """Apply write batches one by one, in arrival order.

        Log-then-apply-then-ack: on a live store ``TripleStore`` fsyncs
        the batch's WAL record before applying it, and the future (the
        ack) resolves only after both — a batch whose ack was observed
        is recoverable, a batch whose ack never arrived may or may not
        be.

        Any ADD/REMOVE — even one whose apply *failed*, since a partial
        apply may already have interned new symbols or spliced rows —
        drops the whole result cache before this round's reads are
        served, and so does a store SWAP (the adopted store's interners
        share nothing with the cached id blocks).  COMPACT keeps it:
        compaction changes the on-disk generation, not the triple set or
        the interners, so the cache stays warm through it by design.
        """
        mutated = False
        for request in requests:
            if request.kind != _COMPACT:
                mutated = True
            try:
                # Re-read self.store per request: a SWAP earlier in this
                # round must route the rest of the round to the new store.
                store = self.store
                if request.kind == _ADD:
                    result = store.add_many(request.payload)
                elif request.kind == _REMOVE:
                    result = store.remove_many(request.payload)
                elif request.kind == _SWAP:
                    result = self._apply_swap(request.payload)
                else:
                    result = store.compact(crash_hook=request.payload)
            except Exception as exc:
                _resolve(request.future, exception=exc)
                continue
            if request.kind != _COMPACT:
                with self._stats_lock:
                    self.mutation_epoch += 1
                    self.write_batches += 1
            _resolve(request.future, result)
        if mutated and self._cache is not None:
            with self._stats_lock:
                self._cache.clear()

    def _serve_queries(self, requests: List[_Request]) -> None:
        # Cache check first: hot queries never join the planning batch.
        if self._cache is not None:
            requests = [request for request in requests
                        if not self._serve_query_from_cache(request)]
            if not requests:
                return
        # Group by reorder flag so each group plans in one batched call.
        groups: Dict[bool, List[_Request]] = {}
        for request in requests:
            groups.setdefault(request.reorder, []).append(request)
        for reorder, group in groups.items():
            try:
                # The fast path: ONE batched count_many plans the whole group.
                plans = plan_queries(self.store,
                                     [self._plannable_query(request)
                                      for request in group],
                                     reorder=reorder)
                planned = group
            except Exception:
                # Some query in the group is malformed; re-plan one by one
                # so the error lands on the offending request only.
                plans, planned = [], []
                for request in group:
                    try:
                        plans.append(plan_queries(
                            self.store, [self._plannable_query(request)],
                            reorder=reorder)[0])
                        planned.append(request)
                    except Exception as exc:
                        _resolve(request.future, exception=exc)
            if not planned:
                continue
            try:
                cursors = execute_plans_cursors(self.store, plans)
            except Exception as exc:  # pragma: no cover - defensive
                for request in planned:
                    _resolve(request.future, exception=exc)
                continue
            for request, cursor in zip(planned, cursors):
                cursor = self._maybe_cache_result(request, cursor)
                self._resolve_query(request, cursor)

    def _resolve_query(self, request: _Request, cursor: ResultCursor) -> None:
        if request.kind == _CURSOR_QUERY:
            _resolve(request.future, self._register_cursor(cursor))
        elif request.raw:
            _resolve(request.future, cursor.fetch_all_block())
        else:
            _resolve(request.future, cursor.fetch_all())

    @staticmethod
    def _plannable_query(request: _Request) -> PatternQuery:
        """The query the miss path actually executes.

        Cacheable queries plan with ``limit`` stripped — execution only
        ever applies a limit as the final projection slice, so the full
        block costs the same fetch/join work and every limit variant of
        the query can be served from the one cached entry.  The
        original limit was already validated on the cache-check path.
        """
        query = request.payload
        if request.cache_key is not None and query.limit is not None:
            return dataclass_replace(query, limit=None)
        return query

    def _serve_query_from_cache(self, request: _Request) -> bool:
        """Try to answer a pattern query from the result cache.

        True means the request was fully resolved (a hit, or a
        limit-validation error).  On a miss the computed key stays on
        the request so :meth:`_maybe_cache_result` can insert the
        executed block under it.
        """
        query = request.payload
        try:
            key = plan_cache_key(self.store.backend, query,
                                 reorder=request.reorder)
        except Exception:
            # A malformed query: fall through and let the planning path
            # raise the real, typed error.
            return False
        if key is None:
            return False
        try:
            validate_limit(query.limit)
        except Exception as exc:
            _resolve(request.future, exception=exc)
            return True
        request.cache_key = key
        with self._stats_lock:
            block = self._cache.get(key)
        if block is None:
            return False
        rows = block.rows if query.limit is None else block.rows[:query.limit]
        cursor = ResultCursor(self.store.backend, block.names, block.kinds,
                              rows)
        self._resolve_query(request, cursor)
        return True

    def _maybe_cache_result(self, request: _Request,
                            cursor: ResultCursor) -> ResultCursor:
        """Insert a cacheable executed result; return the cursor to serve.

        The executed cursor holds the FULL block (the limit was
        stripped before planning), so the request is handed a zero-copy
        limited view of it.  A list-backed cursor with a cache key can
        only be the empty result of an un-interned constant — nothing
        worth pinning, and limiting the empty list is a no-op.
        """
        key = request.cache_key
        if key is None:
            return cursor
        block = cursor.block
        if block is None:
            return cursor
        with self._stats_lock:
            self._cache.put(key, block)
        limit = request.payload.limit
        if limit is not None and len(block.rows) > limit:
            return ResultCursor(self.store.backend, block.names, block.kinds,
                                block.rows[:limit])
        return cursor

    def _serve_lookups(self, requests: List[_Request]) -> None:
        # Two batched backend calls at most: raw lookups and match
        # cursors stay in id space (the binary wire path and the paging
        # path both want the compact block), everything else takes the
        # legacy string surface.
        id_capable = supports_id_queries(self.store.backend)
        id_requests, string_requests = [], []
        for request in requests:
            if id_capable and (request.raw or request.kind == _CURSOR_MATCH):
                id_requests.append(request)
            else:
                string_requests.append(request)
        if id_requests:
            self._serve_id_lookups(id_requests)
        if not string_requests:
            return
        try:
            results = self.store.match_many([request.payload
                                             for request in string_requests])
        except Exception as exc:
            for request in string_requests:
                _resolve(request.future, exception=exc)
            return
        for request, result in zip(string_requests, results):
            if request.kind == _CURSOR_MATCH:
                _resolve(request.future,
                         self._register_cursor(ResultCursor.from_list(result)))
            else:
                _resolve(request.future, result)

    def _serve_id_lookups(self, requests: List[_Request]) -> None:
        """Batched point lookups answered as (n, 3) id blocks."""
        backend = self.store.backend
        entity_lookup = backend.entity_interner.lookup
        relation_lookup = backend.relation_interner.lookup
        empty = np.zeros((0, 3), dtype=np.int64)
        resolved: List[Optional[Tuple]] = []
        for request in requests:
            head, relation, tail = request.payload
            ids = (None if head is None else entity_lookup(head),
                   None if relation is None else relation_lookup(relation),
                   None if tail is None else entity_lookup(tail))
            # An un-interned constant matches nothing; no backend call.
            unknown = any(term is not None and identifier is None
                          for term, identifier in
                          zip(request.payload, ids))
            resolved.append(None if unknown else ids)
        fetchable = [ids for ids in resolved if ids is not None]
        try:
            blocks = iter(backend.match_ids_many(fetchable)
                          if fetchable else [])
            rows_per_request = [empty if ids is None else next(blocks)
                                for ids in resolved]
        except Exception as exc:
            for request in requests:
                _resolve(request.future, exception=exc)
            return
        for request, rows in zip(requests, rows_per_request):
            if request.kind == _CURSOR_MATCH:
                _resolve(request.future, self._register_cursor(
                    ResultCursor.from_triple_ids(backend, rows)))
            else:
                _resolve(request.future, IdBlock(
                    (), ("e", "r", "e"), rows, triples=True))

    def _serve_raw_id_lookups(self, requests: List[_Request]) -> None:
        """Batched raw id-pattern lookups: one ``match_ids_many`` call.

        Ids beyond the interner tables match nothing by definition —
        they are answered as empty blocks without a backend call, the
        id-space analogue of an un-interned string constant.
        """
        backend = self.store.backend
        n_entities = len(backend.entity_interner)
        n_relations = len(backend.relation_interner)
        empty = np.zeros((0, 3), dtype=np.int64)

        def in_range(ids: Tuple) -> bool:
            head_id, relation_id, tail_id = ids
            for identifier, limit in ((head_id, n_entities),
                                      (relation_id, n_relations),
                                      (tail_id, n_entities)):
                if identifier is not None \
                        and not 0 <= identifier < limit:
                    return False
            return True

        resolved = [request.payload if in_range(request.payload) else None
                    for request in requests]
        fetchable = [ids for ids in resolved if ids is not None]
        try:
            blocks = iter(backend.match_ids_many(fetchable)
                          if fetchable else [])
            rows_per_request = [empty if ids is None else next(blocks)
                                for ids in resolved]
        except Exception as exc:  # pragma: no cover - defensive
            for request in requests:
                _resolve(request.future, exception=exc)
            return
        for request, rows in zip(requests, rows_per_request):
            _resolve(request.future, IdBlock(
                (), ("e", "r", "e"), rows, triples=True))

    def _serve_counts(self, requests: List[_Request]) -> None:
        try:
            results = self.store.count_many([request.payload
                                             for request in requests])
        except Exception as exc:  # pragma: no cover - defensive
            for request in requests:
                _resolve(request.future, exception=exc)
            return
        for request, result in zip(requests, results):
            _resolve(request.future, int(result))

    # ------------------------------------------------------------------ #
    # cursor table (dispatcher-thread only)
    # ------------------------------------------------------------------ #
    def _register_cursor(self, cursor: ResultCursor) -> str:
        cursor_id = f"cur-{secrets.token_hex(8)}"
        self._cursors[cursor_id] = (cursor, time.monotonic() + self.cursor_ttl)
        with self._stats_lock:
            self.cursors_opened += 1
        return cursor_id

    def _evict_expired_cursors(self) -> None:
        now = time.monotonic()
        for cursor_id in [identifier for identifier, (_cursor, deadline)
                          in self._cursors.items() if deadline < now]:
            cursor, _deadline = self._cursors.pop(cursor_id)
            cursor.close()
            with self._stats_lock:
                self.cursors_expired += 1

    def _lookup_cursor(self, cursor_id: str) -> ResultCursor:
        entry = self._cursors.get(cursor_id)
        if entry is None:
            raise CursorError(
                f"unknown cursor {cursor_id!r}: never opened on this "
                f"service, already closed, or expired after "
                f"{self.cursor_ttl:g}s idle (results are not recoverable "
                f"— re-run the query)")
        cursor, deadline = entry
        if deadline < time.monotonic():
            del self._cursors[cursor_id]
            cursor.close()
            with self._stats_lock:
                self.cursors_expired += 1
            raise CursorError(
                f"cursor {cursor_id!r} expired after {self.cursor_ttl:g}s "
                f"idle; re-run the query")
        return cursor

    def _serve_cursor_fetch(self, request: _Request) -> None:
        cursor_id, max_rows = request.payload
        try:
            cursor = self._lookup_cursor(cursor_id)
            page = cursor.fetch_block(max_rows) if request.raw \
                else cursor.fetch(max_rows)
        except Exception as exc:
            _resolve(request.future, exception=exc)
            return
        exhausted = cursor.exhausted
        if exhausted:
            # Nothing left to serve: release the id-row block now
            # rather than pinning it for the remaining TTL (clients
            # that iterate-to-exhaustion rely on the TTL, not on an
            # explicit close).  The id stays valid — later fetches see
            # an empty exhausted cursor, close_cursor still works.
            cursor.close()
            cursor = ResultCursor.from_list([])
        self._cursors[cursor_id] = (cursor, time.monotonic() + self.cursor_ttl)
        _resolve(request.future, (page, exhausted))

    def _serve_cursor_close(self, request: _Request) -> None:
        try:
            cursor = self._lookup_cursor(request.payload)
        except Exception as exc:
            _resolve(request.future, exception=exc)
            return
        del self._cursors[request.payload]
        cursor.close()
        _resolve(request.future, None)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop accepting requests, drain in-flight work, join the dispatcher.

        Every request enqueued before close is either served or failed
        with a clear ``QueryError`` — no future is ever left pending —
        and every open cursor is released.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_SHUTDOWN)
        self._dispatcher.join()
        # Fail anything that raced in behind the sentinel.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not _SHUTDOWN:
                _resolve(leftover.future,
                         exception=QueryError("QueryService is closed"))
        # The dispatcher has exited; its cursor table is safe to touch.
        for cursor, _deadline in self._cursors.values():
            cursor.close()
        self._cursors.clear()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
