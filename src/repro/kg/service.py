"""A concurrent, batching query service over a :class:`TripleStore`.

The ROADMAP's service-layer milestone: many clients — request-handler
threads of a web front-end, worker processes sharing one on-disk store
directory — issue pattern queries and point lookups concurrently, and
the store answers them through its *batched* APIs rather than one
round-trip per request.

:class:`QueryService` is that multiplexer:

* clients call :meth:`execute` / :meth:`execute_batch` /
  :meth:`lookup_many` (or :meth:`submit` for a future) from any number
  of threads;
* requests land on an internal queue; a single **dispatcher** thread
  drains whatever has accumulated (up to ``max_batch`` requests),
  plans every pattern query in the batch with ONE batched
  ``count_many`` call, advances all their plans in lockstep through
  shared ``match_ids_many`` fetches
  (:func:`repro.kg.executor.execute_plans`), and answers point lookups
  with one ``match_many`` call — then resolves each request's future;
* because only the dispatcher touches the backend, the service is safe
  over backends whose lazy attach/consolidate steps are not thread-safe,
  while the sharded backend still parallelizes *inside* each batched
  call across its shard pool.

Construction warms the backend up (attaches memmaps, folds any pending
overlay) so steady-state dispatch never pays a consolidation.  The
store must not be mutated while a service is running over it.

For multi-process deployments, every process opens the same (sharded)
store directory via :func:`QueryService.open` — ``TripleStore.open``
memory-maps the column files read-only, so the OS page cache is shared
and each process runs its own dispatcher.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import QueryError
from repro.kg.backend import Pattern, supports_id_queries
from repro.kg.executor import Binding, execute_plans
from repro.kg.planner import PatternQuery, plan_queries
from repro.kg.store import TripleStore
from repro.kg.triple import Triple

#: Kinds of requests the service multiplexes.
_QUERY = "query"
_LOOKUP = "lookup"

#: Sentinel shoved down the queue to stop the dispatcher.
_SHUTDOWN = object()


def _resolve(future: "Future", result=None, exception: Optional[BaseException] = None) -> None:
    """Resolve a future, tolerating client-side cancellation.

    A client may ``cancel()`` a still-pending future before its batch is
    dispatched; ``set_result`` on a cancelled future raises
    ``InvalidStateError``, which would kill the dispatcher thread and
    hang every later request — the cancelled request just gets dropped
    instead.
    """
    if not future.set_running_or_notify_cancel():
        return
    if exception is not None:
        future.set_exception(exception)
    else:
        future.set_result(result)


class _Request:
    """One queued client request: payload plus the future to resolve."""

    __slots__ = ("kind", "payload", "reorder", "future")

    def __init__(self, kind: str, payload, reorder: bool) -> None:
        self.kind = kind
        self.payload = payload
        self.reorder = reorder
        self.future: "Future" = Future()


class QueryService:
    """Multiplexes concurrent pattern queries into backend batch calls.

    Parameters
    ----------
    store:
        The (already built or opened) store to serve.  Not mutated.
    max_batch:
        Upper bound on how many requests one dispatch round coalesces.
        Larger batches amortize planning and fetch round-trips better;
        the default is plenty to saturate the batched backend APIs.

    Use as a context manager or call :meth:`close` — the dispatcher is
    a daemon thread, but closing deterministically drains in-flight
    requests first.
    """

    def __init__(self, store: TripleStore, *, max_batch: int = 256) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.store = store
        self.max_batch = int(max_batch)
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = False
        self._close_lock = threading.Lock()
        # Observability: how much multiplexing actually happens.
        self.requests_served = 0
        self.batches_dispatched = 0
        self.largest_batch = 0
        self._warm_up()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="kg-query-service", daemon=True)
        self._dispatcher.start()

    @classmethod
    def open(cls, directory: Union[str, Path], *, max_batch: int = 256
             ) -> "QueryService":
        """Open a saved store directory (any layout) and serve it.

        Dispatches on the header magic exactly like
        :meth:`TripleStore.open` — sharded directories come back as a
        shard-routed backend, single-store directories as memory-mapped
        columns.
        """
        return cls(TripleStore.open(directory), max_batch=max_batch)

    def _warm_up(self) -> None:
        """Force lazy attach/consolidation before concurrent dispatch starts.

        ``count_ids()`` touches the consolidated id surface without
        copying any column data (a wildcard ``match_ids`` would
        materialize the whole store once just to throw it away).
        """
        backend = self.store.backend
        if supports_id_queries(backend):
            backend.count_ids()
        else:
            self.store.count()

    # ------------------------------------------------------------------ #
    # client surface (thread-safe)
    # ------------------------------------------------------------------ #
    def submit(self, query: PatternQuery, reorder: bool = True) -> "Future":
        """Enqueue one query; returns a future yielding ``List[Binding]``."""
        return self._enqueue(_Request(_QUERY, query, reorder))

    def submit_lookup(self, pattern: Pattern) -> "Future":
        """Enqueue one point lookup; future yields ``List[Triple]``.

        Point lookups take constants and ``None`` wildcards only — a
        ``?variable`` here is almost certainly a pattern query routed to
        the wrong entry point, and would otherwise silently match
        nothing; use :meth:`submit` for variables.
        """
        pattern = tuple(pattern)
        for term in pattern:
            if isinstance(term, str) and term.startswith("?"):
                raise QueryError(
                    f"point lookup got variable term {term!r}; use "
                    f"submit()/execute() with a PatternQuery for variables "
                    f"(wildcards here are spelled None)")
        return self._enqueue(_Request(_LOOKUP, pattern, True))

    def execute(self, query: PatternQuery, reorder: bool = True) -> List[Binding]:
        """Run one query, blocking until its batch is dispatched."""
        return self.submit(query, reorder=reorder).result()

    def execute_batch(self, queries: Sequence[PatternQuery],
                      reorder: bool = True) -> List[List[Binding]]:
        """Run a client-side batch; one future per query, awaited together."""
        futures = [self.submit(query, reorder=reorder) for query in queries]
        return [future.result() for future in futures]

    def lookup_many(self, patterns: Sequence[Pattern]) -> List[List[Triple]]:
        """Batched point lookups ((head, relation, tail), ``None`` wildcards)."""
        futures = [self.submit_lookup(pattern) for pattern in patterns]
        return [future.result() for future in futures]

    def _enqueue(self, request: _Request) -> "Future":
        # The closed-check and the put share the close lock: otherwise a
        # request could slip into the queue after close() has drained it
        # (closed flag read, preempted, close runs fully, then put) and
        # its future would never resolve — a hung client.
        with self._close_lock:
            if self._closed:
                raise QueryError("QueryService is closed")
            self._queue.put(request)
        return request.future

    # ------------------------------------------------------------------ #
    # dispatcher (single thread; the only backend toucher)
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                return
            batch: List[_Request] = [first]
            while len(batch) < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    self._serve(batch)
                    return
                batch.append(nxt)
            self._serve(batch)

    def _serve(self, batch: List[_Request]) -> None:
        self.batches_dispatched += 1
        self.largest_batch = max(self.largest_batch, len(batch))
        self.requests_served += len(batch)
        queries = [request for request in batch if request.kind == _QUERY]
        lookups = [request for request in batch if request.kind == _LOOKUP]
        if queries:
            self._serve_queries(queries)
        if lookups:
            self._serve_lookups(lookups)

    def _serve_queries(self, requests: List[_Request]) -> None:
        # Group by reorder flag so each group plans in one batched call.
        groups: Dict[bool, List[_Request]] = {}
        for request in requests:
            groups.setdefault(request.reorder, []).append(request)
        for reorder, group in groups.items():
            try:
                # The fast path: ONE batched count_many plans the whole group.
                plans = plan_queries(self.store, [request.payload
                                                  for request in group],
                                     reorder=reorder)
                planned = group
            except Exception:
                # Some query in the group is malformed; re-plan one by one
                # so the error lands on the offending request only.
                plans, planned = [], []
                for request in group:
                    try:
                        plans.append(plan_queries(self.store, [request.payload],
                                                  reorder=reorder)[0])
                        planned.append(request)
                    except Exception as exc:
                        _resolve(request.future, exception=exc)
            if not planned:
                continue
            try:
                results = execute_plans(self.store, plans)
            except Exception as exc:  # pragma: no cover - defensive
                for request in planned:
                    _resolve(request.future, exception=exc)
                continue
            for request, result in zip(planned, results):
                _resolve(request.future, result)

    def _serve_lookups(self, requests: List[_Request]) -> None:
        try:
            results = self.store.match_many([request.payload
                                             for request in requests])
        except Exception as exc:
            for request in requests:
                _resolve(request.future, exception=exc)
            return
        for request, result in zip(requests, results):
            _resolve(request.future, result)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop accepting requests, drain the queue, join the dispatcher."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_SHUTDOWN)
        self._dispatcher.join()
        # Fail anything that raced in behind the sentinel.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not _SHUTDOWN:
                _resolve(leftover.future,
                         exception=QueryError("QueryService is closed"))

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
