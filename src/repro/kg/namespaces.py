"""RDF / RDFS / OWL / SKOS namespaces and OpenBG meta-properties.

OpenBG's ontology imports W3C meta-properties to express taxonomy
(``rdfs:subClassOf``, ``skos:broader``), synonymy (``owl:equivalentClass``)
and instantiation (``rdf:type``), plus two property-of-property relations
(``rdfs:subPropertyOf``, ``owl:equivalentPropertyOf``).  This module pins
down the identifiers used throughout the reproduction so the rest of the
code never hard-codes URI strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


@dataclass(frozen=True)
class Namespaces:
    """Prefix → base-URI table mirroring the paper's W3C references."""

    rdf: str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
    rdfs: str = "http://www.w3.org/2000/01/rdf-schema#"
    owl: str = "http://www.w3.org/2002/07/owl#"
    skos: str = "http://www.w3.org/2004/02/skos/core#"
    openbg: str = "https://openbg.example.org/resource/"

    def expand(self, curie: str) -> str:
        """Expand a compact IRI like ``rdfs:subClassOf`` to a full URI."""
        if ":" not in curie:
            return self.openbg + curie
        prefix, local = curie.split(":", 1)
        base = getattr(self, prefix, None)
        if base is None:
            return curie
        return base + local

    def compact(self, uri: str) -> str:
        """Compact a full URI back to CURIE form when a prefix matches."""
        for prefix in ("rdf", "rdfs", "owl", "skos", "openbg"):
            base = getattr(self, prefix)
            if uri.startswith(base):
                local = uri[len(base):]
                if prefix == "openbg":
                    return local
                return f"{prefix}:{local}"
        return uri


NAMESPACES = Namespaces()


class MetaProperty(str, Enum):
    """The built-in (meta) properties OpenBG imports from W3C vocabularies."""

    SUBCLASS_OF = "rdfs:subClassOf"
    BROADER = "skos:broader"
    TYPE = "rdf:type"
    EQUIVALENT_CLASS = "owl:equivalentClass"
    SUBPROPERTY_OF = "rdfs:subPropertyOf"
    EQUIVALENT_PROPERTY = "owl:equivalentPropertyOf"

    # Data properties the paper counts in Table I alongside meta-properties.
    LABEL = "rdfs:label"
    LABEL_EN = "labelEn"
    PREF_LABEL = "skos:prefLabel"
    ALT_LABEL = "skos:altLabel"
    COMMENT = "rdfs:comment"
    IMAGE_IS = "imageIs"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The root of the class hierarchy (all core classes are subclasses of it).
OWL_THING = "owl:Thing"

#: The root of the concept hierarchy (concepts are "simple classes").
SKOS_CONCEPT = "skos:Concept"

#: Object properties of the core ontology (Figure 2 of the paper).
CORE_OBJECT_PROPERTIES = (
    "brandIs",
    "placeOfOrigin",
    "appliedTime",
    "relatedScene",
    "aboutTheme",
    "forCrowd",
    "inMarket",
)

#: Taxonomy-bearing meta-properties (used for level computations).
TAXONOMY_PROPERTIES = (MetaProperty.SUBCLASS_OF.value, MetaProperty.BROADER.value)
