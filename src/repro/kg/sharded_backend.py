"""Hash-partitioned sharded columnar graph storage.

The ROADMAP's multi-core milestone: a :class:`ShardedBackend` implements
the :class:`~repro.kg.backend.GraphBackend` protocol by partitioning
triples on the **head-entity id** across ``n_shards`` inner backends of
the columnar family.  All shards share one global
:class:`~repro.kg.backend.Interner` pair, so symbol ids are identical no
matter which shard a triple landed in and query results are invariant to
the shard count.

Partitioning rule
-----------------
A triple ``(h, r, t)`` lives in shard
``((id(h) * 2654435761) & 0xFFFFFFFF) % n_shards`` (Knuth's
multiplicative hash over the interned head id, so consecutive ids do not
stripe).  The hash, the per-item batch grouping and the scatter/gather
merge skeleton live in :mod:`repro.kg.routing` as pure functions — the
distributed :class:`~repro.kg.cluster.ClusterBackend` routes with the
same code, so a triple's owner is independent of deployment shape.
Because the rule only looks at the head:

* head-bound queries (``match(h, ...)``, ``tails``, ``contains``,
  ``discard``, fully-bound ``count``) route to **exactly one** shard;
* unbound / tail-bound / relation-bound queries fan out to every shard
  and merge the per-shard CSR slices — each shard's contribution is
  internally consistent, and the documented sort guarantees
  (``tails``/``heads`` sorted, ``match(sort=True)`` fully sorted) are
  re-established on the merged result;
* ``degree`` sums per-shard degrees: a node's out-edges all live in its
  own shard, while its in-edges may live anywhere, and every triple
  lives in exactly one shard, so the sum counts each edge once.

Parallelism
-----------
Bulk operations — :meth:`ShardedBackend.add_many`, :meth:`save`,
:meth:`open` and the batched query surface — fan per-shard work out over
a ``concurrent.futures`` thread pool.  The per-shard units are dominated
by numpy sorting/searching and file I/O, which release the GIL, so
threads scale with cores without any pickling.  Single-pattern queries
stay serial: thread dispatch would cost more than the array slice it
hides.

Persistence layout
------------------
``save`` writes a sharded store directory::

    store/
      header.json            (magic "repro-kg-sharded", version, n_shards)
      entities.offsets.i64   + entities.blob.utf8     (global interner)
      relations.offsets.i64  + relations.blob.utf8
      shard-0/ ... shard-K/  (standard mmap store dirs, interners external)

Each ``shard-K/`` is a normal :mod:`repro.kg.mmap_backend` directory
whose header declares ``interners: external`` — the shard arrays are
validated per shard, while the symbol tables live once at the top level
in the binary offsets + blob layout.  The global header is written last
(temp + rename) so an interrupted save never leaves an openable but
inconsistent directory.  ``TripleStore.open`` sniffs the header magic
and dispatches here automatically.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.errors import StorageError
from repro.kg.backend import (
    BACKENDS,
    GraphBackend,
    IdPattern,
    Interner,
    Pattern,
    _BatchedQueriesMixin,
)
from repro.kg.mmap_backend import (
    ENTITY_BLOB_FILE,
    ENTITY_OFFSETS_FILE,
    HEADER_FILE,
    INTERNERS_EXTERNAL,
    MAGIC as COLUMNAR_MAGIC,
    MmapBackend,
    RELATION_BLOB_FILE,
    RELATION_OFFSETS_FILE,
    read_interner_files,
    write_backend_dir,
    write_interner_files,
)
from repro.kg.routing import (
    BROADCAST as _BROADCAST,
    concat_id_blocks,
    merge_frequency_dicts,
    merge_sorted_unique,
    merge_triple_lists,
    scatter_gather,
    shard_of_id,
    shard_of_ids,
)
from repro.kg.triple import Triple

#: Identifies the sharded directory layout.
SHARDED_MAGIC = "repro-kg-sharded"

#: Bump when the sharded layout changes; :func:`load_sharded_header`
#: rejects mismatches.
SHARDED_FORMAT_VERSION = 1

#: Shard count used when callers just say ``--backend sharded``.
DEFAULT_SHARDS = 4

_T = TypeVar("_T")

__all__ = ["SHARDED_MAGIC", "SHARDED_FORMAT_VERSION", "DEFAULT_SHARDS",
           "ShardedBackend", "load_sharded_header", "shard_of_ids"]


def load_sharded_header(directory: str | Path) -> dict:
    """Read and validate a sharded store directory's global header."""
    directory = Path(directory)
    header_path = directory / HEADER_FILE
    if not header_path.is_file():
        raise StorageError(
            f"{directory}: missing {HEADER_FILE} — not a graph store directory")
    try:
        header = json.loads(header_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StorageError(f"{header_path}: unreadable header: {exc}") from exc
    if not isinstance(header, dict) or header.get("magic") != SHARDED_MAGIC:
        if isinstance(header, dict) and header.get("magic") == COLUMNAR_MAGIC:
            raise StorageError(
                f"{directory}: single-store directory — open it with "
                f"MmapBackend.open, not ShardedBackend.open")
        raise StorageError(f"{header_path}: bad magic — not a sharded store header")
    version = header.get("version")
    if version != SHARDED_FORMAT_VERSION:
        raise StorageError(
            f"{directory}: sharded format version mismatch — store has "
            f"{version!r}, this build reads {SHARDED_FORMAT_VERSION}")
    for key in ("n_shards", "num_entities", "num_relations",
                "entity_blob_bytes", "relation_blob_bytes"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            raise StorageError(f"{directory}: header field {key!r} is invalid")
    if header["n_shards"] < 1:
        raise StorageError(f"{directory}: header field 'n_shards' is invalid")
    return header


class ShardedBackend(_BatchedQueriesMixin):
    """Hash-partitioned composite over ``n_shards`` columnar-family shards.

    The inner shards are in-memory :class:`MmapBackend` instances — the
    dict-free variant of the columnar design whose membership tests are
    binary searches, so the per-shard bulk-load unit
    (:meth:`MmapBackend.bulk_load_ids`) is pure numpy and parallelizes
    across threads.  All shards alias the two interners owned by this
    object; ids are global and backend-independent.

    ``max_workers`` caps the thread pool (default: the machine's core
    count); pass ``max_workers=1`` to force serial execution, or a
    larger value to exercise the threaded paths on small machines.
    """

    name = "sharded"

    def __init__(self, n_shards: int = DEFAULT_SHARDS, *,
                 delta_threshold: int = 1024,
                 max_workers: Optional[int] = None) -> None:
        n_shards = int(n_shards)
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.delta_threshold = int(delta_threshold)
        self._max_workers = max_workers
        self.entity_interner = Interner()
        self.relation_interner = Interner()
        self._shards: List[MmapBackend] = [self._new_shard()
                                           for _ in range(n_shards)]

    def _new_shard(self) -> MmapBackend:
        return MmapBackend(
            delta_threshold=self.delta_threshold,
            interners=(self.entity_interner, self.relation_interner))

    def clone_empty(self) -> "GraphBackend":
        return type(self)(self.n_shards, delta_threshold=self.delta_threshold,
                          max_workers=self._max_workers)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def _shard_index(self, head_id: int) -> int:
        return shard_of_id(head_id, self.n_shards)

    def _route(self, head: str) -> Optional[MmapBackend]:
        """The shard owning ``head``, or ``None`` when it was never interned."""
        head_id = self.entity_interner.lookup(head)
        if head_id is None:
            return None
        return self._shards[self._shard_index(head_id)]

    def _workers(self) -> int:
        if self._max_workers is not None:
            return max(1, int(self._max_workers))
        return os.cpu_count() or 1

    def _parallel(self, thunks: Sequence[Callable[[], _T]],
                  parallel: bool = True) -> List[_T]:
        """Run thunks — threaded when it can help, in submission order."""
        if not parallel or len(thunks) <= 1 or self._workers() <= 1:
            return [thunk() for thunk in thunks]
        with ThreadPoolExecutor(
                max_workers=min(self._workers(), len(thunks)),
                thread_name_prefix="kg-shard") as pool:
            return [future.result()
                    for future in [pool.submit(thunk) for thunk in thunks]]

    def _per_shard(self, fn: Callable[[MmapBackend], _T],
                   parallel: bool = False) -> List[_T]:
        return self._parallel([(lambda shard=shard: fn(shard))
                               for shard in self._shards], parallel=parallel)

    def _routed_batch(self, items: Sequence, classify: Callable,
                      empty: Callable[[], _T],
                      shard_call: Callable[[MmapBackend, List], List[_T]],
                      broadcast_call: Optional[Callable[[MmapBackend, List],
                                                        List[_T]]] = None,
                      merge: Optional[Callable[[List[_T]], _T]] = None
                      ) -> List[_T]:
        """Batched route/broadcast/merge over the in-process shards.

        The skeleton itself —
        :func:`repro.kg.routing.scatter_gather` — is shared with the
        distributed coordinator; this adapter binds shard indexes to
        this backend's shard objects and supplies the ad-hoc thread pool
        as the runner.  Exactly ONE job per shard answers that shard's
        routed group and the broadcast set together — a shard must never
        be driven by two pool threads at once (its lazy attach/rebuild
        is not thread-safe within a fan-out).
        """
        return scatter_gather(
            items, n_shards=self.n_shards, classify=classify, empty=empty,
            shard_call=lambda index, group: shard_call(self._shards[index],
                                                       group),
            broadcast_call=None if broadcast_call is None else (
                lambda index, group: broadcast_call(self._shards[index],
                                                    group)),
            merge=merge,
            run=lambda thunks, parallel: self._parallel(thunks,
                                                        parallel=parallel))

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, head: str, relation: str, tail: str) -> bool:
        if not (head and relation and tail):
            raise ValueError(
                f"triple components must be non-empty, got ({head!r}, {relation!r}, {tail!r})")
        head_id = self.entity_interner.intern(head)
        return self._shards[self._shard_index(head_id)].add(head, relation, tail)

    def add_many(self, triples: Iterable[Triple]) -> int:
        """Bulk load: intern once, partition by head id, load shards in parallel.

        The serial prefix (string interning — dict lookups assigning ids
        in first-appearance order, exactly like an ``add`` loop) is
        unavoidable Python; the per-shard merge + sort + index build is
        numpy and runs threaded.  Returns the number of triples that
        were actually new.
        """
        intern_entity = self.entity_interner.intern
        intern_relation = self.relation_interner.intern

        def id_components() -> Iterator[int]:
            for triple in triples:
                head, relation, tail = triple.head, triple.relation, triple.tail
                if not (head and relation and tail):
                    raise ValueError(
                        f"triple components must be non-empty, got "
                        f"({head!r}, {relation!r}, {tail!r})")
                yield intern_entity(head)
                yield intern_relation(relation)
                yield intern_entity(tail)

        rows = np.fromiter(id_components(), dtype=np.int64).reshape(-1, 3)
        if not len(rows):
            return 0
        shard_ids = shard_of_ids(rows[:, 0], self.n_shards)
        thunks = [
            (lambda shard=shard, block=rows[shard_ids == index]:
             shard.bulk_load_ids(block))
            for index, shard in enumerate(self._shards)
        ]
        return sum(self._parallel(thunks))

    def discard(self, head: str, relation: str, tail: str) -> bool:
        shard = self._route(head)
        return shard.discard(head, relation, tail) if shard is not None else False

    def discard_many(self, triples: Iterable[Triple]) -> int:
        """Bulk removal: group by owner shard, one pass per shard.

        The WAL replay path folds remove runs through this; grouping
        keeps each shard's overlay churn contiguous instead of
        ping-ponging between shards triple by triple.
        """
        lookup = self.entity_interner.lookup
        grouped: Dict[int, List[Triple]] = {}
        for triple in triples:
            head_id = lookup(triple.head)
            if head_id is None:
                continue
            grouped.setdefault(self._shard_index(head_id), []).append(triple)
        removed = 0
        for shard_index, group in grouped.items():
            discard = self._shards[shard_index].discard
            removed += sum(1 for t in group
                           if discard(t.head, t.relation, t.tail))
        return removed

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def contains(self, head: str, relation: str, tail: str) -> bool:
        shard = self._route(head)
        return shard.contains(head, relation, tail) if shard is not None else False

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def iter_triples(self) -> Iterator[Triple]:
        for shard in self._shards:
            yield from shard.iter_triples()

    def match(self, head: Optional[str] = None, relation: Optional[str] = None,
              tail: Optional[str] = None, sort: bool = False) -> List[Triple]:
        if head is not None:
            shard = self._route(head)
            return shard.match(head, relation, tail, sort=sort) \
                if shard is not None else []
        parts = self._per_shard(
            lambda shard: shard.match(head, relation, tail, sort=False))
        return merge_triple_lists(parts, sort=sort)

    def iter_match(self, head: Optional[str] = None,
                   relation: Optional[str] = None,
                   tail: Optional[str] = None) -> Iterator[Triple]:
        if head is not None:
            shard = self._route(head)
            if shard is not None:
                yield from shard.iter_match(head, relation, tail)
            return
        for shard in self._shards:
            yield from shard.iter_match(head, relation, tail)

    def count(self, head: Optional[str] = None, relation: Optional[str] = None,
              tail: Optional[str] = None) -> int:
        if head is not None:
            shard = self._route(head)
            return shard.count(head, relation, tail) if shard is not None else 0
        return sum(self._per_shard(
            lambda shard: shard.count(head, relation, tail)))

    def tails(self, head: str, relation: str) -> List[str]:
        shard = self._route(head)
        return shard.tails(head, relation) if shard is not None else []

    def heads(self, relation: str, tail: str) -> List[str]:
        parts = self._per_shard(lambda shard: shard.heads(relation, tail))
        return merge_triple_lists(parts, sort=True)

    def degree(self, node: str) -> int:
        return sum(self._per_shard(lambda shard: shard.degree(node)))

    def entities(self) -> List[str]:
        return merge_sorted_unique(
            self._per_shard(lambda shard: shard.entities()))

    def relations(self) -> List[str]:
        return merge_sorted_unique(
            self._per_shard(lambda shard: shard.relations()))

    def heads_only(self) -> List[str]:
        return merge_sorted_unique(
            self._per_shard(lambda shard: shard.heads_only()))

    def relation_frequencies(self) -> Dict[str, int]:
        return merge_frequency_dicts(
            self._per_shard(lambda shard: shard.relation_frequencies()))

    # ------------------------------------------------------------------ #
    # id-level query surface — global ids, shard-routed
    # ------------------------------------------------------------------ #
    def match_ids(self, head_id: Optional[int] = None,
                  relation_id: Optional[int] = None,
                  tail_id: Optional[int] = None) -> np.ndarray:
        """The (k, 3) id triples matching an id pattern.

        Ids are global (all shards share this object's interners), so a
        head-bound pattern reads exactly one shard; unbound patterns
        concatenate the per-shard blocks (each internally consistent,
        overall order shard-major).
        """
        if head_id is not None:
            return self._shards[self._shard_index(head_id)].match_ids(
                head_id, relation_id, tail_id)
        return concat_id_blocks(self._per_shard(
            lambda shard: shard.match_ids(head_id, relation_id, tail_id)))

    def count_ids(self, head_id: Optional[int] = None,
                  relation_id: Optional[int] = None,
                  tail_id: Optional[int] = None) -> int:
        """Number of triples matching an id pattern."""
        if head_id is not None:
            return self._shards[self._shard_index(head_id)].count_ids(
                head_id, relation_id, tail_id)
        return sum(self._per_shard(
            lambda shard: shard.count_ids(head_id, relation_id, tail_id)))

    def match_ids_many(self, patterns: Sequence[IdPattern]) -> List[np.ndarray]:
        """Batched :meth:`match_ids`: route head-bound id patterns to
        their owner shard, broadcast and concatenate the rest."""
        if self.n_shards == 1:
            return self._shards[0].match_ids_many(patterns)
        return self._routed_batch(
            patterns,
            classify=lambda pattern: _BROADCAST if pattern[0] is None
            else self._shard_index(pattern[0]),
            empty=lambda: np.zeros((0, 3), dtype=np.int64),
            shard_call=lambda shard, group: shard.match_ids_many(group),
            merge=concat_id_blocks)

    # ------------------------------------------------------------------ #
    # batched queries — route head-bound items, fan out the rest
    # ------------------------------------------------------------------ #
    def _classify_head(self, head: Optional[str]):
        """Owner shard of a string pattern head (None = wildcard)."""
        if head is None:
            return _BROADCAST
        head_id = self.entity_interner.lookup(head)
        return None if head_id is None else self._shard_index(head_id)

    def count_many(self, patterns: Sequence[Pattern]) -> List[int]:
        """Batched :meth:`count`: head-bound patterns hit one shard,
        the rest sum across shards — one pass per shard, not one per
        (pattern, shard) pair."""
        if self.n_shards == 1:
            return self._shards[0].count_many(patterns)
        return self._routed_batch(
            patterns,
            classify=lambda pattern: self._classify_head(pattern[0]),
            empty=lambda: 0,
            shard_call=lambda shard, group: shard.count_many(group),
            merge=sum)

    def match_many(self, patterns: Sequence[Pattern],
                   sort: bool = False) -> List[List[Triple]]:
        """Head-bound patterns go only to their owner shard; unbound ones
        fan out to every shard and merge.  Total work therefore does not
        grow with the shard count, and the per-shard groups run threaded
        for large batches."""
        if self.n_shards == 1:
            return self._shards[0].match_many(patterns, sort=sort)

        def merge(parts: List[List[Triple]]) -> List[Triple]:
            merged = [triple for part in parts for triple in part]
            if sort:
                merged.sort()
            return merged

        return self._routed_batch(
            patterns,
            classify=lambda pattern: self._classify_head(pattern[0]),
            empty=list,
            shard_call=lambda shard, group: shard.match_many(group, sort=sort),
            # Per-shard sorting would be thrown away by the merge.
            broadcast_call=lambda shard, group: shard.match_many(group,
                                                                 sort=False),
            merge=merge)

    def tails_many(self, pairs: Sequence[Tuple[str, str]]) -> List[List[str]]:
        """Every (head, relation) pair routes to the head's shard."""
        if self.n_shards == 1:
            return self._shards[0].tails_many(pairs)
        return self._routed_batch(
            pairs,
            classify=lambda pair: self._classify_head(pair[0]),
            empty=list,
            shard_call=lambda shard, group: shard.tails_many(group))

    def degree_many(self, nodes: Sequence[str]) -> List[int]:
        """Sum the per-shard vectorized degree-count arrays, then resolve
        every node with one lookup — the per-node Python work happens
        once, not once per shard."""
        if self.n_shards == 1:
            return self._shards[0].degree_many(nodes)
        counts = self._parallel(
            [(lambda shard=shard: shard._entity_degree_counts())
             for shard in self._shards],
            parallel=len(nodes) >= 32)
        totals = np.zeros(len(self.entity_interner), dtype=np.int64)
        for out_counts, in_counts in counts:
            totals[:len(out_counts)] += out_counts
            totals[:len(in_counts)] += in_counts
        lookup = self.entity_interner.lookup
        result: List[int] = []
        for node in nodes:
            node_id = lookup(node)
            result.append(int(totals[node_id])
                          if node_id is not None and node_id < len(totals) else 0)
        return result

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: str | Path) -> Path:
        """Persist as a sharded store directory; shards write in parallel."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        # Invalidate any existing global header first: a crash mid-save
        # must never leave an openable-but-inconsistent directory.
        (directory / HEADER_FILE).unlink(missing_ok=True)
        entity_blob_bytes = write_interner_files(
            self.entity_interner, directory, ENTITY_OFFSETS_FILE, ENTITY_BLOB_FILE)
        relation_blob_bytes = write_interner_files(
            self.relation_interner, directory,
            RELATION_OFFSETS_FILE, RELATION_BLOB_FILE)
        thunks = [
            (lambda shard=shard, path=directory / f"shard-{index}":
             write_backend_dir(shard, path, interners=INTERNERS_EXTERNAL))
            for index, shard in enumerate(self._shards)
        ]
        self._parallel(thunks)
        header = {
            "magic": SHARDED_MAGIC,
            "version": SHARDED_FORMAT_VERSION,
            "n_shards": self.n_shards,
            "num_entities": len(self.entity_interner),
            "num_relations": len(self.relation_interner),
            "entity_blob_bytes": entity_blob_bytes,
            "relation_blob_bytes": relation_blob_bytes,
        }
        header_tmp = directory / (HEADER_FILE + ".tmp")
        header_tmp.write_text(json.dumps(header, indent=1), encoding="utf-8")
        header_tmp.replace(directory / HEADER_FILE)
        return directory

    @classmethod
    def open(cls, directory: str | Path, *, delta_threshold: int = 1024,
             max_workers: Optional[int] = None) -> "ShardedBackend":
        """Open a sharded store directory written by :meth:`save`.

        The global interner tables load eagerly (every symbol lookup
        needs them); the per-shard column files attach lazily as
        read-only memmaps on first query.  Shard headers are validated
        in parallel.
        """
        directory = Path(directory)
        header = load_sharded_header(directory)
        backend = cls(header["n_shards"], delta_threshold=delta_threshold,
                      max_workers=max_workers)
        backend.entity_interner = read_interner_files(
            directory, ENTITY_OFFSETS_FILE, ENTITY_BLOB_FILE,
            header["num_entities"])
        backend.relation_interner = read_interner_files(
            directory, RELATION_OFFSETS_FILE, RELATION_BLOB_FILE,
            header["num_relations"])
        interners = (backend.entity_interner, backend.relation_interner)
        thunks = [
            (lambda path=directory / f"shard-{index}":
             MmapBackend(path, delta_threshold=delta_threshold,
                         interners=interners))
            for index in range(header["n_shards"])
        ]
        backend._shards = backend._parallel(thunks)
        return backend


BACKENDS[ShardedBackend.name] = ShardedBackend
