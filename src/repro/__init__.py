"""repro — a laptop-scale reproduction of OpenBG (ICDE 2023).

OpenBG is a billion-scale pre-trained multimodal business knowledge graph
built at Alibaba.  This package re-implements every subsystem the paper
describes — the ontology and KG substrate, the multi-source construction
pipeline, the benchmark sampling procedure, single-modal and multimodal KG
embedding models, a KG-enhanced vision-language pre-training stack built on
an in-package autograd engine, the five downstream tasks, and the online
application simulators — at a scale that runs on a single machine with no
dependencies beyond numpy / scipy / networkx.

Top-level convenience imports expose the most commonly used entry points::

    from repro import (
        KnowledgeGraph, Triple, build_core_ontology,
        SyntheticCatalogConfig, generate_catalog,
        OpenBGBuilder, BenchmarkBuilder,
        TransE, LinkPredictionEvaluator,
    )
"""

from repro.version import __version__
from repro.kg.triple import Triple
from repro.kg.graph import KnowledgeGraph
from repro.kg.store import TripleStore
from repro.ontology.core_ontology import build_core_ontology
from repro.datagen.catalog import SyntheticCatalogConfig, generate_catalog
from repro.construction.pipeline import OpenBGBuilder
from repro.benchmark.builders import BenchmarkBuilder
from repro.embedding.transe import TransE
from repro.embedding.evaluation import LinkPredictionEvaluator

__all__ = [
    "__version__",
    "Triple",
    "KnowledgeGraph",
    "TripleStore",
    "build_core_ontology",
    "SyntheticCatalogConfig",
    "generate_catalog",
    "OpenBGBuilder",
    "BenchmarkBuilder",
    "TransE",
    "LinkPredictionEvaluator",
]
