"""Word banks for the synthetic e-commerce text generator.

The vocabulary deliberately mirrors the domains the paper's examples come
from (rice and groceries, phones and electronics, clothing, footwear,
furniture, cosmetics) so the generated titles, reviews and concepts look
like the Figure 1 / Figure 3 / Section IV examples.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Top-level category domains with their sub-domains and example leaf nouns.
CATEGORY_DOMAINS: Dict[str, Dict[str, List[str]]] = {
    "Grains Oils and Condiments": {
        "Rice Flour Grains": ["rice", "northeast rice", "fragrant rice", "glutinous rice",
                              "black rice", "brown rice", "millet", "oat flakes"],
        "Noodles and Pasta": ["konjac noodles", "cold noodles", "egg noodles",
                              "rice noodles", "instant noodles", "buckwheat noodles"],
        "Condiments": ["soy sauce", "brewing vinegar", "sesame oil", "chili sauce",
                       "oyster sauce", "cooking wine"],
    },
    "Electronics": {
        "Mobile Phones": ["smartphone", "flagship phone", "gaming phone", "folding phone"],
        "Electronic Components": ["LED", "power supply", "battery pack", "charging cable",
                                  "bluetooth headset", "smart watch"],
        "Computers": ["laptop", "tablet", "mini pc", "mechanical keyboard"],
    },
    "Clothing": {
        "Dresses": ["floral dress", "beach skirt", "long skirt", "short-sleeved dress",
                    "word-neck dress"],
        "Outerwear": ["down jacket", "windbreaker", "wool coat", "denim jacket"],
        "Shirts": ["t-shirt", "polo shirt", "silk blouse", "linen shirt"],
    },
    "Footwear": {
        "Sports Shoes": ["running shoes", "lightweight sports shoes", "non-slip shoes",
                         "trendy sneakers", "basketball shoes"],
        "Casual Shoes": ["canvas shoes", "loafers", "sandals", "slippers"],
    },
    "Home and Furniture": {
        "Furniture": ["sofa", "dining table", "bookshelf", "wardrobe", "office chair"],
        "Home Textiles": ["cushion", "quilt", "pillow", "mattress protector", "curtain"],
        "Kitchenware": ["rice cooker", "frying pan", "thermos bottle", "lunch box"],
    },
    "Beauty and Care": {
        "Skin Care": ["face cream", "sunscreen", "facial cleanser", "essence lotion"],
        "Hair Care": ["shampoo", "conditioner", "hair mask"],
    },
    "Food and Snacks": {
        "Snacks": ["dried bamboo shoots", "mixed cured meat", "dried mango",
                   "nut gift box", "beef jerky"],
        "Instant Meals": ["self-heating hot pot", "bibimbap", "convenient vegetable pack",
                          "canned porridge"],
        "Beverages": ["green tea", "oolong tea", "instant coffee", "fruit juice"],
    },
    "Mother and Baby": {
        "Baby Food": ["milk powder", "rice cereal", "fruit puree"],
        "Baby Gear": ["stroller", "baby carrier", "feeding bottle"],
    },
}

#: Brand name fragments combined into synthetic brand labels per sector.
BRAND_PREFIXES: List[str] = [
    "Jinlongyu", "Songyuan", "Lagogo", "Hongxing", "Yunshan", "Baihe", "Tianyi",
    "Meiling", "Xinda", "Lanyu", "Guofeng", "Shengshi", "Haina", "Puji", "Ruixiang",
    "Zhenpin", "Chunfeng", "Huayang", "Jingxi", "Luming",
]
BRAND_SUFFIXES: List[str] = [
    "", " Selected", " Premium", " Farm", " Tech", " Living", " Studio", " Workshop",
    " Home", " Organic",
]

#: Brand sectors following the "guideline for declaration of goods" 45 classes,
#: abbreviated to a representative subset.
BRAND_SECTORS: List[str] = [
    "Food", "Clothes", "Furniture", "Vehicle", "Electronics", "Cosmetics",
    "Toys", "Sports Equipment", "Stationery", "Jewelry", "Household Chemicals",
    "Medical Supplies",
]

#: Place hierarchy: country → province → city → county (synthetic but realistic).
PLACE_HIERARCHY: Dict[str, Dict[str, List[str]]] = {
    "China": {
        "Heilongjiang": ["Harbin", "Qiqihar", "Mudanjiang"],
        "Jilin": ["Changchun", "Meihekou", "Jilin City"],
        "Zhejiang": ["Hangzhou", "Ningbo", "Wenzhou"],
        "Guangdong": ["Guangzhou", "Shenzhen", "Zhuhai"],
        "Sichuan": ["Chengdu", "Mianyang", "Leshan"],
        "Yunnan": ["Kunming", "Dali", "Lijiang"],
    },
    "America": {
        "California": ["Los Angeles", "San Francisco", "San Diego"],
        "Washington": ["Seattle", "Spokane"],
    },
    "Germany": {
        "Bavaria": ["Munich", "Nuremberg"],
        "Hesse": ["Frankfurt", "Wiesbaden"],
    },
    "Singapore": {
        "Central Region": ["Downtown Core", "Orchard"],
    },
    "Japan": {
        "Kanto": ["Tokyo", "Yokohama"],
        "Kansai": ["Osaka", "Kyoto"],
    },
}

#: Concept instances per core concept type (leaf-level examples).
CONCEPT_INSTANCES: Dict[str, List[str]] = {
    "Scene": ["cooking", "make sushi", "make rice balls", "eat porridge and rice",
              "giving gifts", "outdoor picnic", "office lunch", "running", "hiking",
              "camping", "wedding banquet", "afternoon tea", "late night snack",
              "home fitness", "business trip", "festival party"],
    "Crowd": ["the elderly", "students", "office workers", "new mothers", "children",
              "fitness enthusiasts", "novice cooks", "pet owners", "gamers",
              "outdoor lovers"],
    "Theme": ["low calorie", "zero fat", "organic living", "national trend",
              "minimalist style", "vintage style", "smart home", "eco friendly",
              "luxury gifting", "budget friendly"],
    "Time": ["spring", "summer", "autumn", "winter", "morning", "weekend",
             "chinese new year", "mid-autumn festival", "double eleven", "back to school"],
    "MarketSegment": ["premium market", "budget market", "mass market", "gift market",
                      "student market", "silver market", "mother and baby market",
                      "outdoor market", "office market", "fresh food market",
                      "health market", "beauty market"],
}

#: Adjectives used in titles and reviews.
POSITIVE_ADJECTIVES: List[str] = [
    "premium", "fragrant", "fresh", "lightweight", "durable", "convenient",
    "delicious", "soft", "crisp", "juicy", "nutritious", "portable", "stylish",
    "breathable", "non-slip", "smart", "high-quality", "selected", "authentic",
    "handmade",
]
NEGATIVE_ADJECTIVES: List[str] = [
    "stale", "flimsy", "bulky", "bland", "noisy", "rough", "overpriced", "slow",
]
REVIEW_ASPECTS: List[str] = [
    "quality", "size", "taste", "packaging", "logistics", "price", "color",
    "material", "battery life", "comfort",
]
REVIEW_OPINIONS_POSITIVE: List[str] = [
    "nice", "suitable", "excellent", "very good", "worth buying", "as described",
    "fast", "fresh", "comfortable", "exquisite",
]
REVIEW_OPINIONS_NEGATIVE: List[str] = [
    "poor", "too small", "disappointing", "damaged", "slow", "not fresh",
]

#: Attribute values keyed by data property.
ATTRIBUTE_VALUES: Dict[str, List[str]] = {
    "weight": ["206g", "450g", "500g", "1kg", "2kg", "5kg", "10kg", "250g"],
    "size": ["S", "M", "L", "XL", "6.1 inch", "6.7 inch", "40x60cm", "1.8m"],
    "color": ["white", "black", "red", "blue", "green", "beige", "silver", "pink"],
    "netContent": ["450g", "500ml", "1L", "250ml", "100g*3", "10kg"],
    "packingSpecification": ["bag", "box", "10kg", "100g*3 bags", "gift box", "vacuum pack"],
    "shelfLife": ["6 months", "12 months", "18 months", "24 months", "36 months"],
    "storageConditions": ["room temperature", "refrigerated", "cool and dry place",
                          "frozen"],
    "taste": ["original", "spicy", "sweet", "salty", "matcha", "five spice"],
    "material": ["cotton", "linen", "stainless steel", "bamboo fiber", "ceramic",
                 "solid wood", "polyester"],
    "ifOrganic": ["yes", "no"],
    "style": ["casual", "business", "sport", "vintage", "minimalist"],
    "powerSupply": ["battery", "usb-c", "wireless charging", "220V"],
    "screenSize": ["6.1 inch", "6.7 inch", "10.9 inch", "14 inch"],
    "batteryCapacity": ["3200mAh", "4500mAh", "5000mAh"],
    "memoryCapacity": ["128GB", "256GB", "512GB", "1TB"],
}

#: NER entity types used in the "NER for titles" downstream task, mapping to
#: the attribute-like slots titles contain.
TITLE_ENTITY_TYPES: List[str] = [
    "Brand", "Category", "Nutrients", "Ingredients", "PackingSpecification",
    "Style", "Color", "Crowd", "Scene", "Place",
]

#: Seller name fragments.
SELLER_NAMES: List[str] = [
    "flagship store", "official outlet", "selected shop", "global buy", "direct supply",
    "treasure shop", "specialty store",
]

#: Slogan fragments used by the shopping-guide application (Figure 7).
SLOGAN_TEMPLATES: List[str] = [
    "delicious soup and taste",
    "convenient and suitable for summer",
    "thin-skin, crisp and sweet",
    "melt in the mouth",
    "fresher flavor",
    "no-cook and ready to eat",
    "nutritious and delicious",
    "low-calorie and convenient",
    "meticulous craftsmanship",
    "freely match your style",
]


def all_leaf_category_names() -> List[Tuple[str, str, str]]:
    """Flatten CATEGORY_DOMAINS into (domain, subdomain, leaf) tuples."""
    rows: List[Tuple[str, str, str]] = []
    for domain, subdomains in CATEGORY_DOMAINS.items():
        for subdomain, leaves in subdomains.items():
            for leaf in leaves:
                rows.append((domain, subdomain, leaf))
    return rows
