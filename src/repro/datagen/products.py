"""Product and item records produced by the synthetic catalog generator.

The paper distinguishes *products* (standardized expressions, instances of
categories) from *items* (商品, concrete listings sold by retailers; an
instance of a product).  Both records carry the multimodal payload the
construction and pre-training pipelines need: structured attributes, a
title, a free-text description, user reviews, and an optional image feature
vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class ItemRecord:
    """A concrete listing of a product sold by one (synthetic) retailer."""

    item_id: str
    product_id: str
    title: str
    price: float
    seller: str
    reviews: List[str] = field(default_factory=list)

    def short_title(self, max_tokens: int = 6) -> str:
        """A truncated title used as the summarization target seed."""
        return " ".join(self.title.split()[:max_tokens])


@dataclass
class ProductRecord:
    """A standardized product with its multimodal facts.

    ``concept_links`` maps object-property names (``relatedScene``,
    ``forCrowd``, ``aboutTheme``, ``appliedTime``, ``inMarket_*``) to the
    linked concept identifiers.  ``attributes`` maps data-property names to
    literal values.  ``image`` is a dense feature vector standing in for the
    product photo (None for the non-multimodal fraction of the catalog).
    """

    product_id: str
    label: str
    category: str
    brand: Optional[str] = None
    place: Optional[str] = None
    attributes: Dict[str, str] = field(default_factory=dict)
    concept_links: Dict[str, List[str]] = field(default_factory=dict)
    title: str = ""
    description: str = ""
    image: Optional[np.ndarray] = None
    items: List[ItemRecord] = field(default_factory=list)

    @property
    def has_image(self) -> bool:
        """True when the product carries an image feature vector."""
        return self.image is not None

    def all_reviews(self) -> List[str]:
        """Reviews of every item of this product, flattened."""
        reviews: List[str] = []
        for item in self.items:
            reviews.extend(item.reviews)
        return reviews

    def linked_concepts(self) -> List[str]:
        """All concept identifiers linked through any object property."""
        concepts: List[str] = []
        for values in self.concept_links.values():
            concepts.extend(values)
        return concepts

    def attribute_phrases(self) -> List[str]:
        """Attribute key/value pairs rendered as short phrases for titles."""
        return [f"{key} {value}" for key, value in sorted(self.attributes.items())]
