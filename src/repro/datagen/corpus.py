"""Unsupervised e-commerce text corpus and supervised text-pair construction.

Section IV-A of the paper assembles two data sources for pre-training:

* ~100M *supervised* label-sample pairs (product-category, item-title,
  item-triple, short title-long title, item-review, triple-review, ...)
  rendered into unified text with discrete prompts, and
* ~140GB of *unsupervised* e-commerce text (reviews, descriptions).

:class:`CorpusGenerator` produces scaled-down versions of both from a
:class:`~repro.datagen.catalog.Catalog`, using the same prompt templates the
pre-training tokenizer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.datagen.catalog import Catalog
from repro.datagen.textgen import TextGenerator
from repro.utils.rng import derive_rng

#: Discrete prompt templates for each supervised pair kind.
PAIR_PROMPTS: Dict[str, str] = {
    "product-category": "predict category : {source}",
    "item-product": "align item : {source}",
    "item-title": "describe item : {source}",
    "item-triple": "state fact : {source}",
    "short-long-title": "summarize title : {source}",
    "item-review": "summarize review : {source}",
    "triple-review": "explain triple : {source}",
}


@dataclass(frozen=True)
class TextPair:
    """A supervised (source, target) text pair with its kind tag."""

    kind: str
    source: str
    target: str

    def prompted_source(self) -> str:
        """The source wrapped in its discrete prompt template."""
        template = PAIR_PROMPTS.get(self.kind, "{source}")
        return template.format(source=self.source)


class CorpusGenerator:
    """Builds supervised pairs and the unsupervised corpus from a catalog."""

    def __init__(self, catalog: Catalog, seed: int = 0) -> None:
        self.catalog = catalog
        self.seed = int(seed)
        self._text = TextGenerator(seed=seed + 1)

    # ------------------------------------------------------------------ #
    # supervised pairs (X_sup)
    # ------------------------------------------------------------------ #
    def supervised_pairs(self, max_pairs_per_kind: int | None = None) -> List[TextPair]:
        """All supervised pairs, optionally truncated per kind."""
        pairs: List[TextPair] = []
        collectors = (
            self._product_category_pairs,
            self._item_title_pairs,
            self._item_triple_pairs,
            self._title_summarization_pairs,
            self._item_review_pairs,
        )
        for collector in collectors:
            kind_pairs = list(collector())
            if max_pairs_per_kind is not None:
                kind_pairs = kind_pairs[:max_pairs_per_kind]
            pairs.extend(kind_pairs)
        return pairs

    def _product_category_pairs(self) -> Iterator[TextPair]:
        taxonomy = self.catalog.category_taxonomy
        for product in self.catalog.products:
            label = taxonomy.node(product.category).label
            yield TextPair("product-category", product.title, label)

    def _item_title_pairs(self) -> Iterator[TextPair]:
        for product in self.catalog.products:
            for item in product.items:
                yield TextPair("item-title", item.item_id, item.title)

    def _item_triple_pairs(self) -> Iterator[TextPair]:
        for product in self.catalog.products:
            for attribute, value in sorted(product.attributes.items()):
                source = f"{product.label} {attribute}"
                yield TextPair("item-triple", source, value)

    def _title_summarization_pairs(self) -> Iterator[TextPair]:
        for product in self.catalog.products:
            for item in product.items:
                short = item.short_title()
                yield TextPair("short-long-title", item.title, short)

    def _item_review_pairs(self) -> Iterator[TextPair]:
        rng = derive_rng(self.seed, "corpus", "reviews")
        for product in self.catalog.products:
            reviews = product.all_reviews()
            if not reviews:
                continue
            review = reviews[int(rng.integers(0, len(reviews)))]
            yield TextPair("item-review", review, self._text.slogan(product.product_id))

    # ------------------------------------------------------------------ #
    # unsupervised corpus (X_uns)
    # ------------------------------------------------------------------ #
    def unsupervised_corpus(self, max_sentences: int | None = None) -> List[str]:
        """Free e-commerce text: descriptions, reviews and search queries."""
        sentences: List[str] = []
        for product in self.catalog.products:
            sentences.append(product.description)
            sentences.extend(product.all_reviews())
            label = self.catalog.category_taxonomy.node(product.category).label
            scene_labels = [
                self.catalog.concept_taxonomies["Scene"].node(concept).label
                for concept in product.concept_links.get("relatedScene", [])
            ]
            sentences.append(self._text.search_query(label, scene_labels,
                                                     key=product.product_id))
        if max_sentences is not None:
            sentences = sentences[:max_sentences]
        return sentences

    # ------------------------------------------------------------------ #
    # combined pre-training stream
    # ------------------------------------------------------------------ #
    def pretraining_stream(self, max_pairs_per_kind: int | None = None,
                           max_unsupervised: int | None = None) -> List[Tuple[str, str]]:
        """(source, target) tuples mixing supervised pairs and denoising text.

        Unsupervised sentences become (sentence, sentence) pairs; the
        pre-trainer applies span corruption to the source side, mirroring the
        paper's span-denoising objective for unsupervised data.
        """
        stream: List[Tuple[str, str]] = []
        for pair in self.supervised_pairs(max_pairs_per_kind):
            stream.append((pair.prompted_source(), pair.target))
        for sentence in self.unsupervised_corpus(max_unsupervised):
            stream.append((sentence, sentence))
        return stream
