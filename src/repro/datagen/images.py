"""Synthetic image features.

The real OpenBG-IMG attaches product photos; the reproduction attaches dense
feature vectors with the structure a visual encoder would produce: every
category and brand has a latent prototype, and a product image is a noisy
mixture of its category and brand prototypes.  This preserves the property
the multimodal models exploit — images of same-category / same-brand
products are closer to each other than to unrelated products — without
shipping any image files.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.utils.rng import derive_rng


class ImageFeatureGenerator:
    """Produces deterministic pseudo-image feature vectors."""

    def __init__(self, dim: int = 32, seed: int = 0, noise_scale: float = 0.25) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = int(dim)
        self.seed = int(seed)
        self.noise_scale = float(noise_scale)
        self._prototypes: Dict[str, np.ndarray] = {}

    def prototype(self, key: str) -> np.ndarray:
        """The latent prototype vector for a category or brand identifier."""
        cached = self._prototypes.get(key)
        if cached is not None:
            return cached
        rng = derive_rng(self.seed, "image-prototype", key)
        vector = rng.normal(0.0, 1.0, size=self.dim).astype(np.float32)
        vector /= np.linalg.norm(vector) + 1e-8
        self._prototypes[key] = vector
        return vector

    def product_image(self, product_id: str, category: str,
                      brand: Optional[str] = None) -> np.ndarray:
        """A product's image feature: category + brand prototypes plus noise."""
        rng = derive_rng(self.seed, "image-product", product_id)
        vector = 0.7 * self.prototype(category)
        if brand:
            vector = vector + 0.3 * self.prototype(f"brand::{brand}")
        noise = rng.normal(0.0, self.noise_scale, size=self.dim).astype(np.float32)
        image = (vector + noise).astype(np.float32)
        norm = np.linalg.norm(image)
        if norm > 0:
            image = image / norm
        return image

    def batch(self, keys: Dict[str, tuple[str, Optional[str]]]) -> Dict[str, np.ndarray]:
        """Generate features for many products: {product_id: (category, brand)}."""
        return {
            product_id: self.product_image(product_id, category, brand)
            for product_id, (category, brand) in keys.items()
        }
