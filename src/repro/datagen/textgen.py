"""Generation of titles, descriptions, reviews and search queries.

Item titles in e-commerce pack brand, category, attributes and marketing
adjectives into one long string ("Lagogo 2018 Summer New Women's Word-neck
Short-sleeved Floral Skirt Dress Beach Skirt Long Skirt Tide"); reviews
mention aspect/opinion pairs; queries mix concepts with categories.  The
generator reproduces those shapes and, crucially, returns the gold
structured annotations alongside the surface text so the downstream tasks
(NER, IE, summarization) have labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datagen import wordbanks
from repro.utils.rng import derive_rng


@dataclass
class TitleAnnotation:
    """Gold property/value spans contained in a generated title."""

    title: str
    short_title: str
    spans: List[Tuple[str, str]] = field(default_factory=list)  # (entity_type, surface)


@dataclass
class ReviewAnnotation:
    """Gold (aspect, opinion) pairs contained in a generated review."""

    text: str
    subject: str
    pairs: List[Tuple[str, str]] = field(default_factory=list)  # (aspect, opinion)
    positive: bool = True


class TextGenerator:
    """Deterministic generator for titles, descriptions, reviews and queries."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _rng(self, *namespace: str) -> np.random.Generator:
        return derive_rng(self.seed, "textgen", *namespace)

    # ------------------------------------------------------------------ #
    # titles
    # ------------------------------------------------------------------ #
    def title(self, product_label: str, brand: Optional[str],
              attributes: Dict[str, str], concepts: List[str],
              key: str) -> TitleAnnotation:
        """Build an expatiatory item title plus its gold annotation.

        ``key`` namespaces the randomness so each product gets a stable but
        distinct title.
        """
        rng = self._rng("title", key)
        spans: List[Tuple[str, str]] = []
        parts: List[str] = []
        if brand:
            parts.append(brand)
            spans.append(("Brand", brand))
        adjectives = list(rng.choice(wordbanks.POSITIVE_ADJECTIVES,
                                     size=min(3, len(wordbanks.POSITIVE_ADJECTIVES)),
                                     replace=False))
        parts.extend(adjectives)
        parts.append(product_label)
        spans.append(("Category", product_label))
        attribute_keys = sorted(attributes)
        picked = attribute_keys[: int(rng.integers(1, min(4, len(attribute_keys)) + 1))] \
            if attribute_keys else []
        for attr_key in picked:
            value = attributes[attr_key]
            parts.append(value)
            entity_type = _attribute_to_entity_type(attr_key)
            spans.append((entity_type, value))
        if concepts:
            concept = concepts[int(rng.integers(0, len(concepts)))]
            parts.append(f"for {concept}")
            spans.append(("Scene", concept))
        # Redundant marketing tail, which summarization should remove.
        tail = list(rng.choice(wordbanks.POSITIVE_ADJECTIVES, size=2, replace=False))
        parts.extend(tail + ["new arrival", "hot sale"])
        title = " ".join(parts)
        short_parts = ([brand] if brand else []) + [adjectives[0], product_label]
        short_title = " ".join(short_parts)
        return TitleAnnotation(title=title, short_title=short_title, spans=spans)

    # ------------------------------------------------------------------ #
    # descriptions
    # ------------------------------------------------------------------ #
    def description(self, product_label: str, place: Optional[str],
                    attributes: Dict[str, str], key: str) -> str:
        """A product description paragraph (the ``rdfs:comment`` payload)."""
        rng = self._rng("description", key)
        adjective = wordbanks.POSITIVE_ADJECTIVES[
            int(rng.integers(0, len(wordbanks.POSITIVE_ADJECTIVES)))]
        sentences = [f"High-quality {adjective} {product_label}, carefully selected."]
        if place:
            sentences.append(f"Produced in {place} with strict quality control.")
        for attr_key, value in sorted(attributes.items())[:3]:
            sentences.append(f"The {attr_key} is {value}.")
        sentences.append("Suitable for daily use and as a thoughtful gift.")
        return " ".join(sentences)

    # ------------------------------------------------------------------ #
    # reviews
    # ------------------------------------------------------------------ #
    def review(self, product_label: str, key: str,
               positive: Optional[bool] = None) -> ReviewAnnotation:
        """A customer review with gold (aspect, opinion) pairs for the IE task."""
        rng = self._rng("review", key)
        if positive is None:
            positive = bool(rng.random() < 0.8)
        opinions = (wordbanks.REVIEW_OPINIONS_POSITIVE if positive
                    else wordbanks.REVIEW_OPINIONS_NEGATIVE)
        num_pairs = int(rng.integers(1, 4))
        aspects = list(rng.choice(wordbanks.REVIEW_ASPECTS, size=num_pairs, replace=False))
        pairs: List[Tuple[str, str]] = []
        clauses: List[str] = []
        for aspect in aspects:
            opinion = opinions[int(rng.integers(0, len(opinions)))]
            pairs.append((aspect, opinion))
            clauses.append(f"the {aspect} of the {product_label} is {opinion}")
        closer = "very satisfied overall" if positive else "would not buy again"
        text = ", ".join(clauses) + f", {closer}."
        return ReviewAnnotation(text=text, subject=product_label, pairs=pairs,
                                positive=positive)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def search_query(self, product_label: str, concepts: List[str], key: str) -> str:
        """A short user search query combining a concept and a category."""
        rng = self._rng("query", key)
        if concepts and rng.random() < 0.7:
            concept = concepts[int(rng.integers(0, len(concepts)))]
            return f"{concept} {product_label}"
        adjective = wordbanks.POSITIVE_ADJECTIVES[
            int(rng.integers(0, len(wordbanks.POSITIVE_ADJECTIVES)))]
        return f"{adjective} {product_label}"

    def slogan(self, key: str) -> str:
        """A short marketing slogan (used by the shopping-guide application)."""
        rng = self._rng("slogan", key)
        return wordbanks.SLOGAN_TEMPLATES[int(rng.integers(0, len(wordbanks.SLOGAN_TEMPLATES)))]


def _attribute_to_entity_type(attribute: str) -> str:
    """Map a data property to the NER entity-type label used in titles."""
    mapping = {
        "packingSpecification": "PackingSpecification",
        "netContent": "PackingSpecification",
        "weight": "PackingSpecification",
        "color": "Color",
        "style": "Style",
        "taste": "Ingredients",
        "material": "Ingredients",
        "ifOrganic": "Nutrients",
    }
    return mapping.get(attribute, "PackingSpecification")
