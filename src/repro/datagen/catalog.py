"""The synthetic e-commerce catalog generator.

:func:`generate_catalog` produces a :class:`Catalog` — taxonomies for
Category / Brand / Place, concept taxonomies for the five concept types,
and a list of :class:`~repro.datagen.products.ProductRecord` with titles,
descriptions, reviews, attributes, concept links and (for a configurable
fraction) image features.  The catalog is the stand-in for the raw Alibaba
data every other subsystem consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datagen import wordbanks
from repro.datagen.images import ImageFeatureGenerator
from repro.datagen.products import ItemRecord, ProductRecord
from repro.datagen.textgen import TextGenerator, TitleAnnotation
from repro.ontology.taxonomy import Taxonomy
from repro.utils.rng import derive_rng


@dataclass
class SyntheticCatalogConfig:
    """Scale and shape knobs for the synthetic catalog.

    Defaults produce a catalog that builds in well under a second; the
    benchmark harness scales ``num_products`` up for the larger experiments.
    """

    num_products: int = 400
    items_per_product: int = 2
    reviews_per_item: int = 2
    num_brands: int = 40
    image_fraction: float = 0.5
    image_dim: int = 32
    num_in_market_relations: int = 12
    concepts_per_product: int = 3
    attribute_count_range: tuple[int, int] = (3, 6)
    brand_coverage: float = 0.9
    place_coverage: float = 0.85
    seed: int = 0


@dataclass
class Catalog:
    """The full synthetic raw-data bundle."""

    config: SyntheticCatalogConfig
    category_taxonomy: Taxonomy
    brand_taxonomy: Taxonomy
    place_taxonomy: Taxonomy
    concept_taxonomies: Dict[str, Taxonomy]
    products: List[ProductRecord] = field(default_factory=list)
    in_market_relations: List[str] = field(default_factory=list)

    def leaf_categories(self) -> List[str]:
        """Leaf category identifiers products can be typed with."""
        return [node.identifier for node in self.category_taxonomy.leaves()]

    def brands(self) -> List[str]:
        """Leaf brand identifiers."""
        return [node.identifier for node in self.brand_taxonomy.leaves()]

    def places(self) -> List[str]:
        """All place identifiers below the root."""
        return [node.identifier for node in self.place_taxonomy.walk()
                if node.identifier != self.place_taxonomy.root_id]

    def concepts(self, concept_type: str) -> List[str]:
        """Leaf concept identifiers of one concept type."""
        taxonomy = self.concept_taxonomies[concept_type]
        return [node.identifier for node in taxonomy.leaves()]

    def multimodal_products(self) -> List[ProductRecord]:
        """Products that carry an image feature vector."""
        return [product for product in self.products if product.has_image]

    def describe(self) -> Dict[str, int]:
        """Size summary used in examples and logs."""
        return {
            "products": len(self.products),
            "items": sum(len(product.items) for product in self.products),
            "leaf_categories": len(self.leaf_categories()),
            "brands": len(self.brands()),
            "places": len(self.places()),
            "multimodal_products": len(self.multimodal_products()),
        }


# --------------------------------------------------------------------------- #
# taxonomy builders
# --------------------------------------------------------------------------- #
def _slug(text: str) -> str:
    """Turn a label into a stable identifier fragment."""
    return text.lower().replace(" ", "_").replace("/", "_").replace("-", "_")


def build_category_taxonomy() -> Taxonomy:
    """Top-down Category taxonomy from the domain → subdomain → leaf word bank."""
    taxonomy = Taxonomy("Category", "Category")
    for domain, subdomains in wordbanks.CATEGORY_DOMAINS.items():
        domain_id = f"cat:{_slug(domain)}"
        taxonomy.add_node(domain_id, "Category", label=domain)
        for subdomain, leaves in subdomains.items():
            subdomain_id = f"cat:{_slug(subdomain)}"
            taxonomy.add_node(subdomain_id, domain_id, label=subdomain)
            for leaf in leaves:
                leaf_id = f"cat:{_slug(leaf)}"
                if leaf_id not in taxonomy:
                    taxonomy.add_node(leaf_id, subdomain_id, label=leaf)
    return taxonomy


def build_brand_taxonomy(num_brands: int, seed: int) -> Taxonomy:
    """Brand taxonomy: sector level (the 45-class guideline) then brand leaves."""
    taxonomy = Taxonomy("Brand", "Brand")
    for sector in wordbanks.BRAND_SECTORS:
        taxonomy.add_node(f"brandsector:{_slug(sector)}", "Brand", label=sector)
    rng = derive_rng(seed, "brands")
    sectors = wordbanks.BRAND_SECTORS
    created = 0
    index = 0
    while created < num_brands:
        prefix = wordbanks.BRAND_PREFIXES[index % len(wordbanks.BRAND_PREFIXES)]
        suffix = wordbanks.BRAND_SUFFIXES[(index // len(wordbanks.BRAND_PREFIXES))
                                          % len(wordbanks.BRAND_SUFFIXES)]
        label = (prefix + suffix).strip()
        brand_id = f"brand:{_slug(label)}_{index}"
        sector = sectors[int(rng.integers(0, len(sectors)))]
        taxonomy.add_node(brand_id, f"brandsector:{_slug(sector)}", label=label)
        created += 1
        index += 1
    return taxonomy


def build_place_taxonomy() -> Taxonomy:
    """Place taxonomy: country → province → city from the word bank."""
    taxonomy = Taxonomy("Place", "Place")
    for country, provinces in wordbanks.PLACE_HIERARCHY.items():
        country_id = f"place:{_slug(country)}"
        taxonomy.add_node(country_id, "Place", label=country)
        for province, cities in provinces.items():
            province_id = f"place:{_slug(province)}"
            taxonomy.add_node(province_id, country_id, label=province)
            for city in cities:
                city_id = f"place:{_slug(city)}"
                if city_id not in taxonomy:
                    taxonomy.add_node(city_id, province_id, label=city)
    return taxonomy


def build_concept_taxonomies() -> Dict[str, Taxonomy]:
    """Concept taxonomies (bottom-up in the paper; here directly from banks).

    Each concept type gets a two-level tree: a handful of broader buckets
    and the leaf instances assigned round-robin, which yields the narrow →
    broader summarization structure the paper describes.
    """
    taxonomies: Dict[str, Taxonomy] = {}
    for concept_type, instances in wordbanks.CONCEPT_INSTANCES.items():
        taxonomy = Taxonomy(concept_type, concept_type)
        num_buckets = max(2, len(instances) // 5)
        bucket_ids = []
        for bucket_index in range(num_buckets):
            bucket_id = f"{concept_type.lower()}:group_{bucket_index}"
            taxonomy.add_node(bucket_id, concept_type,
                              label=f"{concept_type} group {bucket_index}")
            bucket_ids.append(bucket_id)
        for index, instance in enumerate(instances):
            leaf_id = f"{concept_type.lower()}:{_slug(instance)}"
            taxonomy.add_node(leaf_id, bucket_ids[index % num_buckets], label=instance)
        taxonomies[concept_type] = taxonomy
    return taxonomies


# --------------------------------------------------------------------------- #
# product generation
# --------------------------------------------------------------------------- #
def _pick_attributes(rng: np.random.Generator,
                     config: SyntheticCatalogConfig) -> Dict[str, str]:
    low, high = config.attribute_count_range
    count = int(rng.integers(low, high + 1))
    keys = list(wordbanks.ATTRIBUTE_VALUES)
    picked = rng.choice(len(keys), size=min(count, len(keys)), replace=False)
    attributes: Dict[str, str] = {}
    for key_index in picked:
        key = keys[int(key_index)]
        values = wordbanks.ATTRIBUTE_VALUES[key]
        attributes[key] = values[int(rng.integers(0, len(values)))]
    return attributes


def _pick_concepts(rng: np.random.Generator, catalog: Catalog,
                   config: SyntheticCatalogConfig) -> Dict[str, List[str]]:
    """Pick concept links for a product (long-tail over inMarket relations)."""
    links: Dict[str, List[str]] = {}
    relation_for_type = {
        "Scene": "relatedScene",
        "Crowd": "forCrowd",
        "Theme": "aboutTheme",
        "Time": "appliedTime",
    }
    concept_types = list(relation_for_type)
    chosen_types = rng.choice(len(concept_types),
                              size=min(config.concepts_per_product, len(concept_types)),
                              replace=False)
    for type_index in chosen_types:
        concept_type = concept_types[int(type_index)]
        leaves = catalog.concepts(concept_type)
        concept = leaves[int(rng.integers(0, len(leaves)))]
        links.setdefault(relation_for_type[concept_type], []).append(concept)
    # inMarket relations follow a geometric (long-tail) distribution over the
    # relation family, reproducing the Figure 5 shape.
    market_leaves = catalog.concepts("MarketSegment")
    if catalog.in_market_relations:
        weights = np.array([0.5 ** index for index in range(len(catalog.in_market_relations))])
        weights /= weights.sum()
        relation_index = int(rng.choice(len(catalog.in_market_relations), p=weights))
        relation = catalog.in_market_relations[relation_index]
        market = market_leaves[int(rng.integers(0, len(market_leaves)))]
        links.setdefault(relation, []).append(market)
    return links


def generate_catalog(config: Optional[SyntheticCatalogConfig] = None) -> Catalog:
    """Generate the full synthetic catalog described by ``config``."""
    config = config or SyntheticCatalogConfig()
    category_taxonomy = build_category_taxonomy()
    brand_taxonomy = build_brand_taxonomy(config.num_brands, config.seed)
    place_taxonomy = build_place_taxonomy()
    concept_taxonomies = build_concept_taxonomies()
    catalog = Catalog(
        config=config,
        category_taxonomy=category_taxonomy,
        brand_taxonomy=brand_taxonomy,
        place_taxonomy=place_taxonomy,
        concept_taxonomies=concept_taxonomies,
        in_market_relations=[f"inMarket_{index:03d}"
                             for index in range(config.num_in_market_relations)],
    )

    text_generator = TextGenerator(seed=config.seed)
    image_generator = ImageFeatureGenerator(dim=config.image_dim, seed=config.seed)
    rng = derive_rng(config.seed, "catalog", "products")
    leaf_categories = catalog.leaf_categories()
    brands = catalog.brands()
    cities = [node.identifier for node in place_taxonomy.walk() if node.level == 3]

    # Category popularity follows a Zipf-like distribution: a few categories
    # hold most products, the rest form the long tail.
    popularity = 1.0 / (np.arange(1, len(leaf_categories) + 1) ** 1.1)
    popularity /= popularity.sum()
    category_order = rng.permutation(len(leaf_categories))

    for product_index in range(config.num_products):
        category_pos = int(rng.choice(len(leaf_categories), p=popularity))
        category = leaf_categories[int(category_order[category_pos])]
        category_label = category_taxonomy.node(category).label
        brand = None
        if rng.random() < config.brand_coverage:
            brand = brands[int(rng.integers(0, len(brands)))]
        place = None
        if rng.random() < config.place_coverage:
            place = cities[int(rng.integers(0, len(cities)))]

        product_id = f"product:{product_index:06d}"
        attributes = _pick_attributes(rng, config)
        concept_links = _pick_concepts(rng, catalog, config)
        brand_label = brand_taxonomy.node(brand).label if brand else None
        place_label = place_taxonomy.node(place).label if place else None
        scene_like = [concept_taxonomies["Scene"].node(c).label
                      for c in concept_links.get("relatedScene", [])]
        annotation: TitleAnnotation = text_generator.title(
            category_label, brand_label, attributes, scene_like, key=product_id)
        description = text_generator.description(category_label, place_label,
                                                 attributes, key=product_id)
        label = f"{brand_label + ' ' if brand_label else ''}{category_label} #{product_index}"

        image = None
        if rng.random() < config.image_fraction:
            image = image_generator.product_image(product_id, category, brand)

        product = ProductRecord(
            product_id=product_id,
            label=label,
            category=category,
            brand=brand,
            place=place,
            attributes=attributes,
            concept_links=concept_links,
            title=annotation.title,
            description=description,
            image=image,
        )

        for item_index in range(config.items_per_product):
            item_id = f"item:{product_index:06d}_{item_index}"
            seller = wordbanks.SELLER_NAMES[int(rng.integers(0, len(wordbanks.SELLER_NAMES)))]
            price = float(np.round(rng.uniform(5.0, 500.0), 2))
            reviews = [
                text_generator.review(category_label, key=f"{item_id}_{review_index}").text
                for review_index in range(config.reviews_per_item)
            ]
            # Different retailers write slightly different titles for the same
            # product: drop some marketing words so that item titles of the
            # same product are similar but not identical (the item-alignment
            # application depends on this realism).
            title_tokens = annotation.title.split()
            kept_tokens = [token for position, token in enumerate(title_tokens)
                           if position < 2 or rng.random() > 0.2]
            item_title = " ".join(kept_tokens) if kept_tokens else annotation.title
            product.items.append(ItemRecord(
                item_id=item_id, product_id=product_id,
                title=item_title, price=price,
                seller=f"{brand_label or 'generic'} {seller}", reviews=reviews,
            ))
        catalog.products.append(product)
    return catalog
