"""Synthetic e-commerce data substrate.

The paper builds OpenBG from proprietary Alibaba raw data (product records,
titles, reviews, queries, images).  This package generates a deterministic
synthetic equivalent with the same record shapes and the same statistical
character (deep category taxonomy, long-tail relation/attribute usage,
partial multimodal coverage), so every downstream code path — construction,
benchmark sampling, embedding, pre-training, downstream tasks — is exercised
exactly as it would be on the real data.
"""

from repro.datagen.catalog import Catalog, SyntheticCatalogConfig, generate_catalog
from repro.datagen.products import ProductRecord, ItemRecord
from repro.datagen.textgen import TextGenerator
from repro.datagen.images import ImageFeatureGenerator
from repro.datagen.corpus import CorpusGenerator

__all__ = [
    "Catalog",
    "SyntheticCatalogConfig",
    "generate_catalog",
    "ProductRecord",
    "ItemRecord",
    "TextGenerator",
    "ImageFeatureGenerator",
    "CorpusGenerator",
]
