"""TransD (Ji et al., 2015): dynamic mapping matrices from projection vectors.

Each entity e and relation r carries a projection vector (e_p, r_p) in
addition to its embedding; the mapping matrix is M_re = r_p e_p^T + I, which
reduces (with equal entity/relation dims) to

    e_perp = e + r_p (e_p · e)

    score(h, r, t) = -||h_perp + r - t_perp||_2
"""

from __future__ import annotations

import numpy as np

from repro.embedding.base import KGEModel
from repro.utils.rng import derive_rng


class TransD(KGEModel):
    """Dynamic-mapping translational model."""

    name = "TransD"

    def __init__(self, num_entities: int, num_relations: int, dim: int = 32,
                 margin: float = 1.0, seed: int = 0) -> None:
        super().__init__(num_entities, num_relations, dim, margin, seed)
        rng = derive_rng(seed, "TransD", "projections")
        scale = 1.0 / np.sqrt(dim)
        self.entity_projections = rng.normal(0.0, scale, (num_entities, dim))
        self.relation_projections = rng.normal(0.0, scale, (num_relations, dim))

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def _project(self, vectors: np.ndarray, vector_projections: np.ndarray,
                 relation_projections: np.ndarray) -> np.ndarray:
        components = np.sum(vector_projections * vectors, axis=1, keepdims=True)
        return vectors + components * relation_projections

    def score_triples(self, heads: np.ndarray, relations: np.ndarray,
                      tails: np.ndarray) -> np.ndarray:
        relation_projection = self.relation_projections[relations]
        head_projected = self._project(self.entity_embeddings[heads],
                                       self.entity_projections[heads],
                                       relation_projection)
        tail_projected = self._project(self.entity_embeddings[tails],
                                       self.entity_projections[tails],
                                       relation_projection)
        difference = head_projected + self.relation_embeddings[relations] - tail_projected
        return -np.linalg.norm(difference, axis=1)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def train_step(self, positives: np.ndarray, negatives: np.ndarray,
                   learning_rate: float) -> float:
        positive_scores = self.score_triples(positives[:, 0], positives[:, 1],
                                             positives[:, 2])
        negative_scores = self.score_triples(negatives[:, 0], negatives[:, 1],
                                             negatives[:, 2])
        violations = self._margin_violations(positive_scores, negative_scores)
        loss = float(np.maximum(0.0, self.margin - positive_scores + negative_scores).mean())
        if not violations.any():
            return loss
        for index in np.nonzero(violations)[0]:
            self._apply_gradient(positives[index], learning_rate, sign=+1.0)
            self._apply_gradient(negatives[index], learning_rate, sign=-1.0)
        return loss

    def _apply_gradient(self, triple: np.ndarray, learning_rate: float,
                        sign: float) -> None:
        head, relation, tail = int(triple[0]), int(triple[1]), int(triple[2])
        head_vector = self.entity_embeddings[head]
        tail_vector = self.entity_embeddings[tail]
        head_projection = self.entity_projections[head]
        tail_projection = self.entity_projections[tail]
        relation_projection = self.relation_projections[relation]

        head_component = float(np.dot(head_projection, head_vector))
        tail_component = float(np.dot(tail_projection, tail_vector))
        difference = (head_vector + head_component * relation_projection
                      + self.relation_embeddings[relation]
                      - tail_vector - tail_component * relation_projection)
        norm = np.linalg.norm(difference)
        if norm < 1e-12:
            return
        gradient = sign * difference / norm
        rp_dot_gradient = float(np.dot(relation_projection, gradient))

        self.entity_embeddings[head] -= learning_rate * (
            gradient + rp_dot_gradient * head_projection)
        self.entity_projections[head] -= learning_rate * rp_dot_gradient * head_vector
        self.entity_embeddings[tail] -= learning_rate * (
            -gradient - rp_dot_gradient * tail_projection)
        self.entity_projections[tail] -= learning_rate * (-rp_dot_gradient * tail_vector)
        self.relation_embeddings[relation] -= learning_rate * gradient
        self.relation_projections[relation] -= learning_rate * (
            (head_component - tail_component) * gradient)

    def parameters(self) -> dict[str, np.ndarray]:
        params = super().parameters()
        params["entity_projections"] = self.entity_projections
        params["relation_projections"] = self.relation_projections
        return params
