"""Text feature extraction for text-enhanced KG embedding models.

The paper's KG-BERT / StAR / GenKGC baselines encode entity descriptions
with a pre-trained language model.  The reproduction replaces that encoder
with a hashed character-n-gram featurizer: every entity's label+description
text becomes a fixed-dimension dense vector via feature hashing, which keeps
the defining property the text models exploit (surface-similar entities get
similar vectors) without a neural text encoder.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.utils.textutils import normalize_label


def _hash_token(token: str, dim: int) -> int:
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") % dim


def text_feature_vector(text: str, dim: int = 64, ngram_sizes: Sequence[int] = (3, 4),
                        include_words: bool = True) -> np.ndarray:
    """Hashed character-n-gram (plus word) features, L2-normalized."""
    normalized = normalize_label(text)
    vector = np.zeros(dim, dtype=np.float64)
    padded = f"#{normalized}#"
    for size in ngram_sizes:
        for start in range(max(0, len(padded) - size + 1)):
            vector[_hash_token(padded[start:start + size], dim)] += 1.0
    if include_words:
        for word in normalized.split():
            vector[_hash_token(f"w:{word}", dim)] += 2.0
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector /= norm
    return vector


class TextFeatureTable:
    """Caches text feature vectors for a fixed entity vocabulary."""

    def __init__(self, dim: int = 64) -> None:
        self.dim = int(dim)
        self._cache: Dict[str, np.ndarray] = {}

    def features_for(self, identifier: str, text: str) -> np.ndarray:
        """Feature vector for an entity, computed once and cached."""
        cached = self._cache.get(identifier)
        if cached is not None:
            return cached
        vector = text_feature_vector(text, self.dim)
        self._cache[identifier] = vector
        return vector

    def matrix(self, identifiers: Iterable[str], texts: Dict[str, str]) -> np.ndarray:
        """Stacked feature matrix for a list of identifiers (vocab order)."""
        rows: List[np.ndarray] = []
        for identifier in identifiers:
            rows.append(self.features_for(identifier, texts.get(identifier, identifier)))
        if not rows:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.vstack(rows)


def entity_text_matrix(entity_vocab: Iterable[str], labels: Dict[str, str],
                       descriptions: Dict[str, str], dim: int = 64) -> np.ndarray:
    """Feature matrix over an entity vocabulary from labels + descriptions."""
    table = TextFeatureTable(dim)
    texts = {}
    for entity in entity_vocab:
        label = labels.get(entity, entity)
        description = descriptions.get(entity, "")
        texts[entity] = f"{label} {description}".strip()
    return table.matrix(entity_vocab, texts)
