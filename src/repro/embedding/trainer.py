"""Shared training loop for KG embedding models.

The trainer mirrors the paper's baseline training setup (mini-batch SGD or
AdaGrad-style scaling, margin ranking or cross-entropy losses depending on
the model, negative sampling per batch) scaled down to synthetic data sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.embedding.base import KGEModel
from repro.embedding.negative_sampling import NegativeSampler
from repro.errors import TrainingError
from repro.utils.rng import derive_rng


@dataclass
class TrainingConfig:
    """Hyper-parameters of a KG embedding training run."""

    epochs: int = 20
    batch_size: int = 256
    learning_rate: float = 0.05
    num_negatives: int = 1
    lr_decay: float = 1.0
    normalize_entities: bool = True
    negative_strategy: str = "uniform"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise TrainingError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")


@dataclass
class TrainingHistory:
    """Per-epoch losses recorded by the trainer."""

    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Loss of the last epoch (inf when training never ran)."""
        return self.losses[-1] if self.losses else float("inf")

    def improved(self) -> bool:
        """True when the last epoch loss is below the first epoch loss."""
        return len(self.losses) >= 2 and self.losses[-1] <= self.losses[0]


class KGETrainer:
    """Trains any :class:`KGEModel` on an (n, 3) id array."""

    def __init__(self, model: KGEModel, config: Optional[TrainingConfig] = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()

    def fit(self, train_triples: np.ndarray,
            dev_triples: Optional[np.ndarray] = None) -> TrainingHistory:
        """Run the configured number of epochs and return the loss history."""
        if train_triples.ndim != 2 or train_triples.shape[1] != 3:
            raise TrainingError("train_triples must have shape (n, 3)")
        if train_triples.shape[0] == 0:
            raise TrainingError("train_triples is empty")
        self.model.check_ids(train_triples)

        sampler = NegativeSampler(
            train_triples, self.model.num_entities,
            strategy=self.config.negative_strategy, seed=self.config.seed,
        )
        rng = derive_rng(self.config.seed, "trainer")
        history = TrainingHistory()
        learning_rate = self.config.learning_rate

        for _epoch in range(self.config.epochs):
            order = rng.permutation(train_triples.shape[0])
            shuffled = train_triples[order]
            epoch_loss = 0.0
            num_batches = 0
            for start in range(0, shuffled.shape[0], self.config.batch_size):
                batch = shuffled[start:start + self.config.batch_size]
                negatives = sampler.corrupt(batch, self.config.num_negatives)
                positives = np.repeat(batch, self.config.num_negatives, axis=0)
                loss = self.model.train_step(positives, negatives, learning_rate)
                epoch_loss += loss
                num_batches += 1
            if self.config.normalize_entities:
                self.model.normalize_entities()
            history.losses.append(epoch_loss / max(1, num_batches))
            learning_rate *= self.config.lr_decay
        return history


def train_model(model: KGEModel, train_triples: np.ndarray,
                config: Optional[TrainingConfig] = None) -> Dict[str, float]:
    """Convenience wrapper: train and return a small result dict."""
    trainer = KGETrainer(model, config)
    history = trainer.fit(train_triples)
    return {"final_loss": history.final_loss,
            "first_loss": history.losses[0] if history.losses else float("inf")}
