"""KG embedding models and link-prediction evaluation (Tables III and IV).

Single-modal structure models (TransE, TransH, TransD, DistMult, ComplEx,
TuckER), text-enhanced models (KG-BERT-sim, StAR-sim, GenKGC-sim), and
multimodal models (TransAE, RSME, MKGformer-lite), all implemented in numpy
with analytic gradients, plus negative sampling, a shared trainer, and the
filtered-ranking evaluator producing Hits@K / MR / MRR.
"""

from repro.embedding.base import KGEModel
from repro.embedding.negative_sampling import NegativeSampler
from repro.embedding.trainer import KGETrainer, TrainingConfig
from repro.embedding.transe import TransE
from repro.embedding.transh import TransH
from repro.embedding.transd import TransD
from repro.embedding.distmult import DistMult
from repro.embedding.complex_model import ComplEx
from repro.embedding.tucker import TuckER
from repro.embedding.text_models import KGBertSim, StARSim, GenKGCSim
from repro.embedding.multimodal import TransAE, RSME, MKGformerLite
from repro.embedding.evaluation import LinkPredictionEvaluator, RankingMetrics

__all__ = [
    "KGEModel",
    "NegativeSampler",
    "KGETrainer",
    "TrainingConfig",
    "TransE",
    "TransH",
    "TransD",
    "DistMult",
    "ComplEx",
    "TuckER",
    "KGBertSim",
    "StARSim",
    "GenKGCSim",
    "TransAE",
    "RSME",
    "MKGformerLite",
    "LinkPredictionEvaluator",
    "RankingMetrics",
]
