"""TransH (Wang et al., 2014): translation on relation-specific hyperplanes.

Entities are projected onto the hyperplane of relation r (normal vector
w_r) before translation by d_r:

    h_perp = h - (w_r · h) w_r,   t_perp = t - (w_r · t) w_r
    score(h, r, t) = -||h_perp + d_r - t_perp||_2

The normal vectors are kept unit-length after every update.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.base import KGEModel
from repro.utils.rng import derive_rng


class TransH(KGEModel):
    """Hyperplane-projection translational model."""

    name = "TransH"

    def __init__(self, num_entities: int, num_relations: int, dim: int = 32,
                 margin: float = 1.0, seed: int = 0) -> None:
        super().__init__(num_entities, num_relations, dim, margin, seed)
        rng = derive_rng(seed, "TransH", "normals")
        normals = rng.normal(0.0, 1.0, (num_relations, dim))
        self.normal_vectors = normals / (np.linalg.norm(normals, axis=1, keepdims=True) + 1e-12)

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def _project(self, vectors: np.ndarray, normals: np.ndarray) -> np.ndarray:
        components = np.sum(vectors * normals, axis=1, keepdims=True)
        return vectors - components * normals

    def score_triples(self, heads: np.ndarray, relations: np.ndarray,
                      tails: np.ndarray) -> np.ndarray:
        normals = self.normal_vectors[relations]
        head_projected = self._project(self.entity_embeddings[heads], normals)
        tail_projected = self._project(self.entity_embeddings[tails], normals)
        difference = head_projected + self.relation_embeddings[relations] - tail_projected
        return -np.linalg.norm(difference, axis=1)

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def train_step(self, positives: np.ndarray, negatives: np.ndarray,
                   learning_rate: float) -> float:
        positive_scores = self.score_triples(positives[:, 0], positives[:, 1],
                                             positives[:, 2])
        negative_scores = self.score_triples(negatives[:, 0], negatives[:, 1],
                                             negatives[:, 2])
        violations = self._margin_violations(positive_scores, negative_scores)
        loss = float(np.maximum(0.0, self.margin - positive_scores + negative_scores).mean())
        if not violations.any():
            return loss
        for index in np.nonzero(violations)[0]:
            self._apply_gradient(positives[index], learning_rate, sign=+1.0)
            self._apply_gradient(negatives[index], learning_rate, sign=-1.0)
        self._renormalize_normals(np.unique(np.concatenate([positives[:, 1],
                                                            negatives[:, 1]])))
        return loss

    def _apply_gradient(self, triple: np.ndarray, learning_rate: float,
                        sign: float) -> None:
        head, relation, tail = int(triple[0]), int(triple[1]), int(triple[2])
        normal = self.normal_vectors[relation]
        head_vector = self.entity_embeddings[head]
        tail_vector = self.entity_embeddings[tail]
        head_projected = head_vector - np.dot(normal, head_vector) * normal
        tail_projected = tail_vector - np.dot(normal, tail_vector) * normal
        difference = head_projected + self.relation_embeddings[relation] - tail_projected
        norm = np.linalg.norm(difference)
        if norm < 1e-12:
            return
        gradient = sign * difference / norm  # d(loss)/d(difference)

        # Chain rule through the projection: d(e_perp)/d(e) = I - w w^T.
        projector_gradient = gradient - np.dot(normal, gradient) * normal
        self.entity_embeddings[head] -= learning_rate * projector_gradient
        self.entity_embeddings[tail] += learning_rate * projector_gradient
        self.relation_embeddings[relation] -= learning_rate * gradient

        # Gradient w.r.t. the normal vector:
        # difference depends on w through -(w·h)w + (w·t)w
        delta = tail_vector - head_vector
        normal_gradient = (np.dot(normal, gradient) * delta
                           + np.dot(normal, delta) * gradient)
        self.normal_vectors[relation] -= learning_rate * normal_gradient

    def _renormalize_normals(self, relations: np.ndarray) -> None:
        norms = np.linalg.norm(self.normal_vectors[relations], axis=1, keepdims=True)
        self.normal_vectors[relations] /= (norms + 1e-12)

    def parameters(self) -> dict[str, np.ndarray]:
        params = super().parameters()
        params["normal_vectors"] = self.normal_vectors
        return params
