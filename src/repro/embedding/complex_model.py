"""ComplEx (Trouillon et al., 2016): complex-valued bilinear scoring.

Embeddings live in C^d, stored as two real arrays (real, imaginary).  The
score is Re(<h, r, conj(t)>), expanding to

    Σ  h_re r_re t_re + h_im r_re t_im + h_re r_im t_im − h_im r_im t_re

Trained with margin ranking and analytic gradients over the four parts.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.base import KGEModel
from repro.utils.rng import derive_rng


class ComplEx(KGEModel):
    """Complex-embedding bilinear model."""

    name = "ComplEx"

    def __init__(self, num_entities: int, num_relations: int, dim: int = 32,
                 margin: float = 1.0, seed: int = 0) -> None:
        super().__init__(num_entities, num_relations, dim, margin, seed)
        rng = derive_rng(seed, "ComplEx", "imaginary")
        bound = 6.0 / np.sqrt(dim)
        self.entity_imaginary = rng.uniform(-bound, bound, (num_entities, dim))
        self.relation_imaginary = rng.uniform(-bound, bound, (num_relations, dim))

    def score_triples(self, heads: np.ndarray, relations: np.ndarray,
                      tails: np.ndarray) -> np.ndarray:
        h_re, h_im = self.entity_embeddings[heads], self.entity_imaginary[heads]
        r_re, r_im = self.relation_embeddings[relations], self.relation_imaginary[relations]
        t_re, t_im = self.entity_embeddings[tails], self.entity_imaginary[tails]
        return np.sum(h_re * r_re * t_re + h_im * r_re * t_im
                      + h_re * r_im * t_im - h_im * r_im * t_re, axis=1)

    def score_candidate_tails(self, heads: np.ndarray,
                              relations: np.ndarray) -> np.ndarray:
        h_re, h_im = self.entity_embeddings[heads], self.entity_imaginary[heads]
        r_re, r_im = self.relation_embeddings[relations], self.relation_imaginary[relations]
        real_query = h_re * r_re - h_im * r_im
        imag_query = h_im * r_re + h_re * r_im
        return real_query @ self.entity_embeddings.T + imag_query @ self.entity_imaginary.T

    def train_step(self, positives: np.ndarray, negatives: np.ndarray,
                   learning_rate: float) -> float:
        positive_scores = self.score_triples(positives[:, 0], positives[:, 1],
                                             positives[:, 2])
        negative_scores = self.score_triples(negatives[:, 0], negatives[:, 1],
                                             negatives[:, 2])
        violations = self._margin_violations(positive_scores, negative_scores)
        loss = float(np.maximum(0.0, self.margin - positive_scores + negative_scores).mean())
        if not violations.any():
            return loss
        for index in np.nonzero(violations)[0]:
            self._apply_gradient(positives[index], learning_rate, sign=+1.0)
            self._apply_gradient(negatives[index], learning_rate, sign=-1.0)
        return loss

    def _apply_gradient(self, triple: np.ndarray, learning_rate: float,
                        sign: float) -> None:
        head, relation, tail = int(triple[0]), int(triple[1]), int(triple[2])
        h_re = self.entity_embeddings[head].copy()
        h_im = self.entity_imaginary[head].copy()
        r_re = self.relation_embeddings[relation].copy()
        r_im = self.relation_imaginary[relation].copy()
        t_re = self.entity_embeddings[tail].copy()
        t_im = self.entity_imaginary[tail].copy()
        step = learning_rate * sign

        self.entity_embeddings[head] += step * (r_re * t_re + r_im * t_im)
        self.entity_imaginary[head] += step * (r_re * t_im - r_im * t_re)
        self.relation_embeddings[relation] += step * (h_re * t_re + h_im * t_im)
        self.relation_imaginary[relation] += step * (h_re * t_im - h_im * t_re)
        self.entity_embeddings[tail] += step * (h_re * r_re - h_im * r_im)
        self.entity_imaginary[tail] += step * (h_im * r_re + h_re * r_im)

    def parameters(self) -> dict[str, np.ndarray]:
        params = super().parameters()
        params["entity_imaginary"] = self.entity_imaginary
        params["relation_imaginary"] = self.relation_imaginary
        return params
