"""TuckER (Balazevic et al., 2019): Tucker-decomposition scoring.

A shared core tensor W ∈ R^{d_e × d_r × d_e} mediates every triple:

    score(h, r, t) = Σ_{ijk} h_i W_{ijk} r_j t_k = h^T M_r t,
    with M_r = Σ_j r_j W[:, j, :]

Trained with margin ranking; gradients flow into h, r, t and the core W.
The paper observes TuckER achieves the best Hits@K / MRR on the OpenBG
benchmarks thanks to the expressive shared core, which this implementation
retains.
"""

from __future__ import annotations

import numpy as np

from repro.embedding.base import KGEModel
from repro.utils.rng import derive_rng


class TuckER(KGEModel):
    """Tucker-decomposition model with a shared core tensor."""

    name = "TuckER"

    def __init__(self, num_entities: int, num_relations: int, dim: int = 32,
                 relation_dim: int | None = None, margin: float = 1.0,
                 seed: int = 0, core_learning_scale: float = 0.5) -> None:
        super().__init__(num_entities, num_relations, dim, margin, seed)
        self.relation_dim = int(relation_dim or dim)
        rng = derive_rng(seed, "TuckER", "core")
        # Re-draw relation embeddings at the relation dimensionality.
        bound = 6.0 / np.sqrt(self.relation_dim)
        self.relation_embeddings = rng.uniform(
            -bound, bound, (num_relations, self.relation_dim)).astype(np.float64)
        # Initialize the core near the identity-like tensor so early training
        # behaves like a (noisy) DistMult and then specializes.
        self.core = rng.normal(0.0, 0.05, (self.dim, self.relation_dim, self.dim))
        for index in range(min(self.dim, self.relation_dim)):
            self.core[index, index, index % self.dim] += 1.0
        self.core_learning_scale = float(core_learning_scale)

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def _relation_matrices(self, relations: np.ndarray) -> np.ndarray:
        """M_r = Σ_j r_j W[:, j, :], batched: shape (batch, d_e, d_e)."""
        return np.einsum("bj,ijk->bik", self.relation_embeddings[relations], self.core)

    def score_triples(self, heads: np.ndarray, relations: np.ndarray,
                      tails: np.ndarray) -> np.ndarray:
        matrices = self._relation_matrices(relations)
        head_vectors = self.entity_embeddings[heads]
        tail_vectors = self.entity_embeddings[tails]
        return np.einsum("bi,bik,bk->b", head_vectors, matrices, tail_vectors)

    def score_candidate_tails(self, heads: np.ndarray,
                              relations: np.ndarray) -> np.ndarray:
        matrices = self._relation_matrices(relations)
        queries = np.einsum("bi,bik->bk", self.entity_embeddings[heads], matrices)
        return queries @ self.entity_embeddings.T

    def score_candidate_heads(self, relations: np.ndarray,
                              tails: np.ndarray) -> np.ndarray:
        matrices = self._relation_matrices(relations)
        queries = np.einsum("bik,bk->bi", matrices, self.entity_embeddings[tails])
        return queries @ self.entity_embeddings.T

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def train_step(self, positives: np.ndarray, negatives: np.ndarray,
                   learning_rate: float) -> float:
        positive_scores = self.score_triples(positives[:, 0], positives[:, 1],
                                             positives[:, 2])
        negative_scores = self.score_triples(negatives[:, 0], negatives[:, 1],
                                             negatives[:, 2])
        violations = self._margin_violations(positive_scores, negative_scores)
        loss = float(np.maximum(0.0, self.margin - positive_scores + negative_scores).mean())
        if not violations.any():
            return loss
        for index in np.nonzero(violations)[0]:
            self._apply_gradient(positives[index], learning_rate, sign=+1.0)
            self._apply_gradient(negatives[index], learning_rate, sign=-1.0)
        return loss

    def _apply_gradient(self, triple: np.ndarray, learning_rate: float,
                        sign: float) -> None:
        head, relation, tail = int(triple[0]), int(triple[1]), int(triple[2])
        head_vector = self.entity_embeddings[head].copy()
        relation_vector = self.relation_embeddings[relation].copy()
        tail_vector = self.entity_embeddings[tail].copy()
        matrix = np.einsum("j,ijk->ik", relation_vector, self.core)
        step = learning_rate * sign

        self.entity_embeddings[head] += step * (matrix @ tail_vector)
        self.entity_embeddings[tail] += step * (matrix.T @ head_vector)
        self.relation_embeddings[relation] += step * np.einsum(
            "i,ijk,k->j", head_vector, self.core, tail_vector)
        self.core += (step * self.core_learning_scale) * np.einsum(
            "i,j,k->ijk", head_vector, relation_vector, tail_vector)

    def parameters(self) -> dict[str, np.ndarray]:
        params = super().parameters()
        params["core"] = self.core
        return params
