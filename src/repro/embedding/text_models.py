"""Text-enhanced KG embedding baselines: KG-BERT, StAR and GenKGC analogues.

The original models fine-tune pre-trained language models over entity
descriptions; the reproductions keep each model's *architecture shape* while
replacing the PLM encoder with hashed text features
(:mod:`repro.embedding.features`):

* :class:`KGBertSim` — cross-encoder style: the score is a learned bilinear
  form over the concatenated (head-text, relation, tail-text) representation.
* :class:`StARSim` — siamese style: a structure-augmented score combining a
  learned projection similarity with a translational term.
* :class:`GenKGCSim` — generation style: tails are scored by how well their
  text continues the (head, relation) "prompt" under a learned token-affinity
  matrix.

Consistent with the paper's finding, these text-based baselines are not
competitive with structural models on the business KG, and the analogues
retain that behaviour.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.embedding.base import KGEModel
from repro.utils.rng import derive_rng


class _TextEnhancedModel(KGEModel):
    """Shared plumbing for text-feature-based models."""

    def __init__(self, num_entities: int, num_relations: int,
                 text_features: np.ndarray, dim: int = 32, margin: float = 1.0,
                 seed: int = 0) -> None:
        super().__init__(num_entities, num_relations, dim, margin, seed)
        if text_features.shape[0] != num_entities:
            raise ValueError("text_features must have one row per entity")
        self.text_features = np.asarray(text_features, dtype=np.float64)
        self.text_dim = self.text_features.shape[1]
        rng = derive_rng(seed, type(self).__name__, "projection")
        scale = 1.0 / np.sqrt(self.text_dim)
        self.text_projection = rng.normal(0.0, scale, (self.text_dim, self.dim))

    def _entity_representation(self, entities: np.ndarray) -> np.ndarray:
        """Structural embedding + projected text features."""
        return self.entity_embeddings[entities] + \
            self.text_features[entities] @ self.text_projection

    def parameters(self) -> Dict[str, np.ndarray]:
        params = super().parameters()
        params["text_projection"] = self.text_projection
        return params


class KGBertSim(_TextEnhancedModel):
    """Cross-encoder analogue of KG-BERT over hashed text features."""

    name = "KG-BERT"

    def score_triples(self, heads: np.ndarray, relations: np.ndarray,
                      tails: np.ndarray) -> np.ndarray:
        head_repr = self._entity_representation(heads)
        tail_repr = self._entity_representation(tails)
        relation_repr = self.relation_embeddings[relations]
        return np.sum(head_repr * relation_repr * tail_repr, axis=1) \
            - 0.1 * np.linalg.norm(head_repr + relation_repr - tail_repr, axis=1)

    def train_step(self, positives: np.ndarray, negatives: np.ndarray,
                   learning_rate: float) -> float:
        return _margin_text_step(self, positives, negatives, learning_rate)


class StARSim(_TextEnhancedModel):
    """Siamese structure-augmented text representation analogue of StAR."""

    name = "StAR"

    def score_triples(self, heads: np.ndarray, relations: np.ndarray,
                      tails: np.ndarray) -> np.ndarray:
        query = self._entity_representation(heads) + self.relation_embeddings[relations]
        tail_repr = self._entity_representation(tails)
        # Structure-augmented score: similarity term + distance term.
        similarity = np.sum(query * tail_repr, axis=1)
        distance = np.linalg.norm(query - tail_repr, axis=1)
        return similarity - distance

    def train_step(self, positives: np.ndarray, negatives: np.ndarray,
                   learning_rate: float) -> float:
        return _margin_text_step(self, positives, negatives, learning_rate)


class GenKGCSim(_TextEnhancedModel):
    """Generation-style analogue of GenKGC: prompt-to-tail text affinity."""

    name = "GenKGC"

    def __init__(self, num_entities: int, num_relations: int,
                 text_features: np.ndarray, dim: int = 32, margin: float = 1.0,
                 seed: int = 0) -> None:
        super().__init__(num_entities, num_relations, text_features, dim, margin, seed)
        rng = derive_rng(seed, "GenKGC", "affinity")
        self.token_affinity = np.eye(self.text_dim) + \
            rng.normal(0.0, 0.01, (self.text_dim, self.text_dim))

    def score_triples(self, heads: np.ndarray, relations: np.ndarray,
                      tails: np.ndarray) -> np.ndarray:
        prompt = self.text_features[heads] @ self.token_affinity \
            + self.relation_embeddings[relations] @ self.text_projection.T
        return np.sum(prompt * self.text_features[tails], axis=1)

    def train_step(self, positives: np.ndarray, negatives: np.ndarray,
                   learning_rate: float) -> float:
        positive_scores = self.score_triples(positives[:, 0], positives[:, 1],
                                             positives[:, 2])
        negative_scores = self.score_triples(negatives[:, 0], negatives[:, 1],
                                             negatives[:, 2])
        violations = self._margin_violations(positive_scores, negative_scores)
        loss = float(np.maximum(0.0, self.margin - positive_scores + negative_scores).mean())
        for index in np.nonzero(violations)[0]:
            for triples, sign in ((positives, +1.0), (negatives, -1.0)):
                head, relation, tail = (int(v) for v in triples[index])
                step = learning_rate * sign
                head_text = self.text_features[head]
                tail_text = self.text_features[tail]
                self.token_affinity += step * np.outer(head_text, tail_text)
                self.relation_embeddings[relation] += step * (
                    self.text_projection.T @ tail_text)
                self.text_projection += step * np.outer(
                    tail_text, self.relation_embeddings[relation])
        return loss

    def parameters(self) -> Dict[str, np.ndarray]:
        params = super().parameters()
        params["token_affinity"] = self.token_affinity
        return params


def _margin_text_step(model: _TextEnhancedModel, positives: np.ndarray,
                      negatives: np.ndarray, learning_rate: float) -> float:
    """Shared margin-ranking SGD step for the text-enhanced models.

    Gradients are taken w.r.t. the structural embeddings and the text
    projection; the hashed text features themselves are fixed (they stand in
    for a frozen PLM encoder).
    """
    positive_scores = model.score_triples(positives[:, 0], positives[:, 1], positives[:, 2])
    negative_scores = model.score_triples(negatives[:, 0], negatives[:, 1], negatives[:, 2])
    violations = model._margin_violations(positive_scores, negative_scores)
    loss = float(np.maximum(0.0, model.margin - positive_scores + negative_scores).mean())
    if not violations.any():
        return loss
    epsilon = 1e-3
    for index in np.nonzero(violations)[0]:
        for triples, sign in ((positives, +1.0), (negatives, -1.0)):
            head, relation, tail = (int(v) for v in triples[index])
            step = learning_rate * sign
            head_repr = model._entity_representation(np.array([head]))[0]
            tail_repr = model._entity_representation(np.array([tail]))[0]
            relation_vector = model.relation_embeddings[relation]
            # Multiplicative part gradient (dominant term for both models).
            model.entity_embeddings[head] += step * relation_vector * tail_repr
            model.entity_embeddings[tail] += step * relation_vector * head_repr
            model.relation_embeddings[relation] += step * head_repr * tail_repr
            # Text projection: nudge the projected text towards the update.
            model.text_projection += step * epsilon * np.outer(
                model.text_features[head], relation_vector * tail_repr)
            model.text_projection += step * epsilon * np.outer(
                model.text_features[tail], relation_vector * head_repr)
    return loss
