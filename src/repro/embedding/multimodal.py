"""Multimodal KG embedding models: TransAE, RSME and MKGformer analogues.

These models consume the per-entity image feature vectors OpenBG-IMG
provides (synthetic image features in the reproduction) in addition to the
graph structure:

* :class:`TransAE` — an auto-encoder maps the multimodal feature (image)
  into the entity embedding space; scoring is TransE over the fused
  representation and the encoder is trained jointly.
* :class:`RSME` — "Relation-Sensitive Multimodal Embedding": a per-relation
  *filter gate* decides how much visual information enters the score and a
  *forget gate* down-weights unreliable images, on top of a bilinear
  structural score.
* :class:`MKGformerLite` — a lightweight stand-in for the hybrid-transformer
  multi-level fusion: visual features are projected and fused with the
  structural embedding through a learned per-dimension attention vector,
  scored translationally (which gives it the strong MR behaviour the paper
  reports).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.embedding.base import KGEModel
from repro.utils.rng import derive_rng


def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-values))


class _MultimodalModel(KGEModel):
    """Shared plumbing: image feature matrix + learned visual projection."""

    def __init__(self, num_entities: int, num_relations: int,
                 image_features: np.ndarray, dim: int = 32, margin: float = 1.0,
                 seed: int = 0) -> None:
        super().__init__(num_entities, num_relations, dim, margin, seed)
        if image_features.shape[0] != num_entities:
            raise ValueError("image_features must have one row per entity")
        self.image_features = np.asarray(image_features, dtype=np.float64)
        self.image_dim = self.image_features.shape[1]
        rng = derive_rng(seed, type(self).__name__, "visual-projection")
        scale = 1.0 / np.sqrt(self.image_dim)
        self.visual_projection = rng.normal(0.0, scale, (self.image_dim, self.dim))
        #: per-entity flag: 1 when the entity actually has an image
        self.has_image = (np.linalg.norm(self.image_features, axis=1) > 1e-9).astype(np.float64)

    def _visual_embedding(self, entities: np.ndarray) -> np.ndarray:
        return self.image_features[entities] @ self.visual_projection

    def parameters(self) -> Dict[str, np.ndarray]:
        params = super().parameters()
        params["visual_projection"] = self.visual_projection
        return params


class TransAE(_MultimodalModel):
    """TransE over auto-encoded multimodal entity representations."""

    name = "TransAE"

    def _fused(self, entities: np.ndarray) -> np.ndarray:
        return self.entity_embeddings[entities] + self._visual_embedding(entities)

    def score_triples(self, heads: np.ndarray, relations: np.ndarray,
                      tails: np.ndarray) -> np.ndarray:
        difference = (self._fused(heads) + self.relation_embeddings[relations]
                      - self._fused(tails))
        return -np.linalg.norm(difference, axis=1)

    def train_step(self, positives: np.ndarray, negatives: np.ndarray,
                   learning_rate: float) -> float:
        positive_scores = self.score_triples(positives[:, 0], positives[:, 1], positives[:, 2])
        negative_scores = self.score_triples(negatives[:, 0], negatives[:, 1], negatives[:, 2])
        violations = self._margin_violations(positive_scores, negative_scores)
        loss = float(np.maximum(0.0, self.margin - positive_scores + negative_scores).mean())
        if not violations.any():
            return loss
        for index in np.nonzero(violations)[0]:
            for triples, sign in ((positives, +1.0), (negatives, -1.0)):
                head, relation, tail = (int(v) for v in triples[index])
                difference = (self.entity_embeddings[head] + self._visual_embedding(np.array([head]))[0]
                              + self.relation_embeddings[relation]
                              - self.entity_embeddings[tail]
                              - self._visual_embedding(np.array([tail]))[0])
                norm = np.linalg.norm(difference)
                if norm < 1e-12:
                    continue
                gradient = sign * difference / norm
                self.entity_embeddings[head] -= learning_rate * gradient
                self.relation_embeddings[relation] -= learning_rate * gradient
                self.entity_embeddings[tail] += learning_rate * gradient
                # Auto-encoder projection update (gradient through both ends).
                self.visual_projection -= learning_rate * np.outer(
                    self.image_features[head] - self.image_features[tail], gradient)
        return loss


class RSME(_MultimodalModel):
    """Relation-sensitive gated fusion of structural and visual scores."""

    name = "RSME"

    def __init__(self, num_entities: int, num_relations: int,
                 image_features: np.ndarray, dim: int = 32, margin: float = 1.0,
                 seed: int = 0) -> None:
        super().__init__(num_entities, num_relations, image_features, dim, margin, seed)
        rng = derive_rng(seed, "RSME", "gates")
        self.filter_gate = rng.normal(0.0, 0.1, num_relations)   # per-relation
        self.forget_gate = rng.normal(0.0, 0.1, num_entities)    # per-entity image trust

    def score_triples(self, heads: np.ndarray, relations: np.ndarray,
                      tails: np.ndarray) -> np.ndarray:
        structural = np.sum(self.entity_embeddings[heads]
                            * self.relation_embeddings[relations]
                            * self.entity_embeddings[tails], axis=1)
        visual_head = self._visual_embedding(heads)
        visual_tail = self._visual_embedding(tails)
        visual = np.sum(visual_head * self.relation_embeddings[relations] * visual_tail, axis=1)
        gate = _sigmoid(self.filter_gate[relations])
        trust = _sigmoid(self.forget_gate[heads]) * _sigmoid(self.forget_gate[tails]) \
            * self.has_image[heads] * self.has_image[tails]
        return structural + gate * trust * visual

    def train_step(self, positives: np.ndarray, negatives: np.ndarray,
                   learning_rate: float) -> float:
        positive_scores = self.score_triples(positives[:, 0], positives[:, 1], positives[:, 2])
        negative_scores = self.score_triples(negatives[:, 0], negatives[:, 1], negatives[:, 2])
        violations = self._margin_violations(positive_scores, negative_scores)
        loss = float(np.maximum(0.0, self.margin - positive_scores + negative_scores).mean())
        if not violations.any():
            return loss
        for index in np.nonzero(violations)[0]:
            for triples, sign in ((positives, +1.0), (negatives, -1.0)):
                head, relation, tail = (int(v) for v in triples[index])
                step = learning_rate * sign
                head_vec = self.entity_embeddings[head].copy()
                tail_vec = self.entity_embeddings[tail].copy()
                rel_vec = self.relation_embeddings[relation].copy()
                visual_head = self.image_features[head] @ self.visual_projection
                visual_tail = self.image_features[tail] @ self.visual_projection
                gate = float(_sigmoid(self.filter_gate[relation]))
                trust = float(_sigmoid(self.forget_gate[head])
                              * _sigmoid(self.forget_gate[tail])
                              * self.has_image[head] * self.has_image[tail])
                # Structural gradients (DistMult part).
                self.entity_embeddings[head] += step * rel_vec * tail_vec
                self.entity_embeddings[tail] += step * rel_vec * head_vec
                self.relation_embeddings[relation] += step * (
                    head_vec * tail_vec + gate * trust * visual_head * visual_tail)
                # Gate gradients.
                visual_score = float(np.sum(visual_head * rel_vec * visual_tail))
                gate_gradient = visual_score * trust * gate * (1.0 - gate)
                self.filter_gate[relation] += step * gate_gradient
                # Visual projection gradient (through both visual embeddings).
                self.visual_projection += step * gate * trust * (
                    np.outer(self.image_features[head], rel_vec * visual_tail)
                    + np.outer(self.image_features[tail], rel_vec * visual_head))
        return loss

    def parameters(self) -> Dict[str, np.ndarray]:
        params = super().parameters()
        params["filter_gate"] = self.filter_gate
        params["forget_gate"] = self.forget_gate
        return params


class MKGformerLite(_MultimodalModel):
    """Attention-style multi-level fusion scored translationally."""

    name = "MKGformer"

    def __init__(self, num_entities: int, num_relations: int,
                 image_features: np.ndarray, dim: int = 32, margin: float = 1.0,
                 seed: int = 0) -> None:
        super().__init__(num_entities, num_relations, image_features, dim, margin, seed)
        rng = derive_rng(seed, "MKGformer", "fusion")
        self.fusion_attention = rng.normal(0.0, 0.1, dim)

    def _fused(self, entities: np.ndarray) -> np.ndarray:
        attention = _sigmoid(self.fusion_attention)
        visual = self._visual_embedding(entities)
        mask = self.has_image[entities][:, None]
        return self.entity_embeddings[entities] + mask * attention[None, :] * visual

    def score_triples(self, heads: np.ndarray, relations: np.ndarray,
                      tails: np.ndarray) -> np.ndarray:
        difference = (self._fused(heads) + self.relation_embeddings[relations]
                      - self._fused(tails))
        return -np.linalg.norm(difference, axis=1)

    def train_step(self, positives: np.ndarray, negatives: np.ndarray,
                   learning_rate: float) -> float:
        positive_scores = self.score_triples(positives[:, 0], positives[:, 1], positives[:, 2])
        negative_scores = self.score_triples(negatives[:, 0], negatives[:, 1], negatives[:, 2])
        violations = self._margin_violations(positive_scores, negative_scores)
        loss = float(np.maximum(0.0, self.margin - positive_scores + negative_scores).mean())
        if not violations.any():
            return loss
        attention = _sigmoid(self.fusion_attention)
        for index in np.nonzero(violations)[0]:
            for triples, sign in ((positives, +1.0), (negatives, -1.0)):
                head, relation, tail = (int(v) for v in triples[index])
                fused_head = self._fused(np.array([head]))[0]
                fused_tail = self._fused(np.array([tail]))[0]
                difference = fused_head + self.relation_embeddings[relation] - fused_tail
                norm = np.linalg.norm(difference)
                if norm < 1e-12:
                    continue
                gradient = sign * difference / norm
                self.entity_embeddings[head] -= learning_rate * gradient
                self.relation_embeddings[relation] -= learning_rate * gradient
                self.entity_embeddings[tail] += learning_rate * gradient
                visual_head = self.image_features[head] @ self.visual_projection
                visual_tail = self.image_features[tail] @ self.visual_projection
                visual_delta = (self.has_image[head] * visual_head
                                - self.has_image[tail] * visual_tail)
                attention_gradient = gradient * visual_delta * attention * (1.0 - attention)
                self.fusion_attention -= learning_rate * attention_gradient
                self.visual_projection -= learning_rate * np.outer(
                    self.has_image[head] * self.image_features[head]
                    - self.has_image[tail] * self.image_features[tail],
                    gradient * attention)
        return loss

    def parameters(self) -> Dict[str, np.ndarray]:
        params = super().parameters()
        params["fusion_attention"] = self.fusion_attention
        return params
